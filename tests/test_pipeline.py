"""Integration tests for the Jrpm pipeline, reports, runtime patching,
the software profiler, and the extended device."""

import pytest

from repro.errors import PipelineError
from repro.hydra import HydraConfig
from repro.jit import AnnotationLevel
from repro.jrpm import (
    Jrpm,
    render_characteristics_row,
    render_predicted_vs_actual,
    render_selection,
    render_summary,
    run_pipeline,
)
from repro.lang import compile_source
from repro.runtime import run_program
from repro.tracer import SoftwareProfiler

from tests.conftest import HUFFMAN_SOURCE, NEST_SOURCE


class TestPipeline:
    def test_constructor_validation(self):
        with pytest.raises(PipelineError):
            Jrpm()
        with pytest.raises(PipelineError):
            Jrpm(source="func main() { }",
                 program=compile_source("func main() { }"))

    def test_full_run_products(self, huffman_report):
        rep = huffman_report
        assert rep.program is not None
        assert rep.candidates.loop_count == 4
        assert rep.sequential_cycles > 0
        assert rep.profiled.cycles > rep.sequential.cycles
        assert rep.selection is not None
        assert rep.outcome is not None

    def test_semantics_preserved_through_pipeline(self, huffman_report):
        assert huffman_report.sequential.return_value \
            == huffman_report.profiled.return_value

    def test_outer_huffman_loop_chosen_over_inner(self, huffman_report):
        # Table 3's shape: the symbol loop beats the bit-chasing loop
        table = huffman_report.candidates
        chosen = huffman_report.selection.selected_ids()
        depths = {lid: table.by_id[lid].depth for lid in chosen}
        # the decode nest's outer loop (depth 1) is in the selection and
        # its inner (depth 2) is not
        decode_outer = [lid for lid in chosen
                        if table.by_id[lid].child_ids]
        assert decode_outer, "no outer loop selected: %r" % depths
        for lid in decode_outer:
            for child in table.by_id[lid].child_ids:
                assert child not in chosen

    def test_prediction_tracks_actual(self, huffman_report):
        pred = huffman_report.predicted_speedup
        act = huffman_report.actual_speedup
        assert pred == pytest.approx(act, rel=0.5)

    def test_coverage_bounded(self, huffman_report):
        assert 0.0 <= huffman_report.coverage <= 1.0

    def test_slowdown_in_plausible_band(self, huffman_report):
        # the paper reports 3-25%; allow modest overshoot for the
        # tightest loops
        assert 1.0 < huffman_report.profiling_slowdown < 1.45

    def test_no_tls_mode(self):
        rep = Jrpm(source=NEST_SOURCE).run(simulate_tls=False)
        assert rep.outcome is None
        assert rep.selection is not None

    def test_program_input_instead_of_source(self):
        program = compile_source(NEST_SOURCE)
        rep = Jrpm(program=program, name="nest").run()
        assert rep.sequential.return_value \
            == run_program(compile_source(NEST_SOURCE)).return_value

    def test_base_level_slower_than_optimized(self):
        jrpm = Jrpm(source=HUFFMAN_SOURCE)
        base = jrpm.measure_slowdown(AnnotationLevel.BASE)
        opt = jrpm.measure_slowdown(AnnotationLevel.OPTIMIZED)
        assert base.slowdown > opt.slowdown > 1.0

    def test_slowdown_components_sum(self):
        jrpm = Jrpm(source=HUFFMAN_SOURCE)
        bd = jrpm.measure_slowdown(AnnotationLevel.OPTIMIZED)
        total = (bd.read_counters_cycles + bd.locals_cycles
                 + bd.annotations_cycles)
        assert total == bd.extra_cycles
        assert bd.annotations_cycles >= 0

    def test_custom_config_flows_through(self):
        # each iteration writes 4 widely spaced lines; a 2-line store
        # buffer must overflow on (nearly) every thread
        src = """
        func main() {
          var a = array(1024);
          var s = 0;
          for (var i = 0; i < 64; i = i + 1) {
            a[i] = i;
            a[i + 256] = i;
            a[i + 512] = i;
            a[i + 768] = i;
            s = s + a[i];
          }
          return s;
        }
        """
        tiny = HydraConfig(store_buffer_lines=2)
        rep = Jrpm(source=src, config=tiny).run()
        flagged = [st for st in rep.device.stats.values()
                   if st.overflow_threads > 0]
        assert flagged
        # and the estimator punishes the overflowing loop
        st = flagged[0]
        assert st.overflow_freq > 0.9
        from repro.tracer import estimate_speedup
        assert estimate_speedup(st, tiny).speedup < 1.3


class TestRenderers:
    def test_summary(self, huffman_report):
        text = render_summary(huffman_report)
        assert "huffman-nest" in text
        assert "predicted speedup" in text
        assert "actual speedup" in text

    def test_selection_table(self, huffman_report):
        text = render_selection(huffman_report)
        assert "serial" in text
        assert "L" in text

    def test_predicted_vs_actual(self, huffman_report):
        text = render_predicted_vs_actual(huffman_report)
        assert "predicted" in text
        assert "actual" in text

    def test_characteristics_row(self, huffman_report):
        row = render_characteristics_row(huffman_report)
        assert "loops=4" in row


class TestExtendedDevice:
    def test_per_pc_binning(self):
        rep = Jrpm(source=HUFFMAN_SOURCE, extended=True,
                   convergence_threshold=None).run(simulate_tls=False)
        dev = rep.device
        # the inner bit-chase loop carries in_p arcs: its profile must
        # name at least one load site
        profiles = [p for p in dev.profiles.values() if p.bins]
        assert profiles
        hottest = profiles[0].hottest(limit=1)[0]
        assert hottest.count > 0
        assert hottest.avg_length > 0
        assert hottest.fn == "main"

    def test_report_text(self):
        rep = Jrpm(source=HUFFMAN_SOURCE, extended=True,
                   convergence_threshold=None).run(simulate_tls=False)
        lid = next(iter(rep.device.profiles))
        text = rep.device.report(lid)
        assert "Dependency profile" in text

    def test_limiting_sites_filter(self):
        rep = Jrpm(source=HUFFMAN_SOURCE, extended=True,
                   convergence_threshold=None).run(simulate_tls=False)
        dev = rep.device
        for lid, profile in dev.profiles.items():
            st = dev.stats[lid]
            limiting = profile.limiting(st.avg_thread_size)
            for site in limiting:
                assert site.avg_length < 0.5 * st.avg_thread_size


class TestSoftwareProfiler:
    def test_slowdown_orders_of_magnitude_above_hardware(self):
        from repro.cfg import find_candidates
        from repro.jit import annotate_program

        program = compile_source(HUFFMAN_SOURCE)
        table = find_candidates(program)
        ann = annotate_program(program, table, AnnotationLevel.BASE)
        profiler = SoftwareProfiler()
        for lid, cand in ann.annotated_loops.items():
            profiler.register_loop_locals(lid, cand.tracked_locals)
        base = run_program(program)
        run_program(ann.program, listener=profiler)
        profiler.finish()
        software = profiler.slowdown(base.cycles)
        # hardware: ~1.1-1.3x; software: tens of x
        assert software > 10.0

    def test_analysis_identical_to_hardware(self):
        from repro.cfg import find_candidates
        from repro.jit import annotate_program
        from repro.tracer import TestDevice

        program = compile_source(NEST_SOURCE)
        table = find_candidates(program)
        ann = annotate_program(program, table)
        hard = TestDevice()
        soft = SoftwareProfiler()
        for lid, cand in ann.annotated_loops.items():
            hard.register_loop_locals(lid, cand.tracked_locals)
            soft.register_loop_locals(lid, cand.tracked_locals)
        run_program(ann.program, listener=hard)
        run_program(ann.program, listener=soft)
        for lid in hard.stats:
            h, s = hard.stats[lid], soft.stats[lid]
            assert (h.threads, h.arcs_prev, h.arc_len_prev,
                    h.overflow_threads) \
                == (s.threads, s.arcs_prev, s.arc_len_prev,
                    s.overflow_threads)
