"""Unit tests for the bytecode layer: builder, verifier, disassembler."""

import pytest

from repro.bytecode import (
    BinOp,
    Function,
    FunctionBuilder,
    Instr,
    Op,
    Program,
    UnOp,
    disassemble,
    disassemble_function,
    find_unreachable,
    verify_function,
    verify_program,
)
from repro.errors import BytecodeError, CodegenError
from repro.runtime import run_program


def count_to_ten():
    b = FunctionBuilder("main")
    i = b.named_local("i")
    b.const(i, 0)
    top = b.label()
    body = b.label()
    done = b.label()
    b.mark(top)
    limit = b.temp()
    b.const(limit, 10)
    cond = b.temp()
    b.binop(BinOp.LT, cond, i, limit)
    b.br(cond, body, done)
    b.mark(body)
    one = b.temp()
    b.const(one, 1)
    b.binop(BinOp.ADD, i, i, one)
    b.jmp(top)
    b.mark(done)
    b.ret(i)
    return b.build()


class TestBuilder:
    def test_forward_label_fixups(self):
        fn = count_to_ten()
        program = Program()
        program.add(fn)
        verify_program(program)
        assert run_program(program).return_value == 10

    def test_unmarked_label_rejected(self):
        b = FunctionBuilder("f")
        lab = b.label()
        b.jmp(lab)
        with pytest.raises(CodegenError):
            b.build()

    def test_label_marked_twice_rejected(self):
        b = FunctionBuilder("f")
        lab = b.label()
        b.mark(lab)
        with pytest.raises(CodegenError):
            b.mark(lab)

    def test_named_local_after_temp_rejected(self):
        b = FunctionBuilder("f")
        b.temp()
        with pytest.raises(CodegenError):
            b.named_local("x")

    def test_named_local_idempotent(self):
        b = FunctionBuilder("f")
        assert b.named_local("x") == b.named_local("x")

    def test_params_are_named_locals(self):
        b = FunctionBuilder("f", ("a", "b"))
        assert b.lookup("a") == 0
        assert b.lookup("b") == 1

    def test_unknown_local_lookup(self):
        b = FunctionBuilder("f")
        with pytest.raises(CodegenError):
            b.lookup("nope")

    def test_build_twice_rejected(self):
        b = FunctionBuilder("f")
        b.ret()
        b.build()
        with pytest.raises(CodegenError):
            b.build()

    def test_unknown_intrinsic_rejected(self):
        b = FunctionBuilder("f")
        with pytest.raises(CodegenError):
            b.intrin(0, "frobnicate", (1,))


class TestVerifier:
    def _fn(self, *instrs):
        fn = Function("f")
        fn.code = list(instrs)
        return fn

    def test_empty_function_rejected(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn())

    def test_fallthrough_end_rejected(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(Instr(Op.NOP)))

    def test_branch_target_out_of_range(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(Instr(Op.JMP, a=5)))

    def test_negative_slot_rejected(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(
                Instr(Op.MOV, a=-1, b=0), Instr(Op.RET)))

    def test_bad_bin_subopcode(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(
                Instr(Op.BIN, sub=99, a=0, b=0, c=0), Instr(Op.RET)))

    def test_const_immediate_must_be_number(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(
                Instr(Op.CONST, a=0, imm="hello"), Instr(Op.RET)))

    def test_lwl_on_temporary_rejected(self):
        fn = self._fn(Instr(Op.LWL, a=3), Instr(Op.RET))
        fn.n_named = 1
        with pytest.raises(BytecodeError):
            verify_function(fn)

    def test_eoi_without_sloop_rejected(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(Instr(Op.EOI, a=0), Instr(Op.RET)))

    def test_call_arity_checked_against_program(self):
        program = Program()
        callee = Function("g", n_params=2)
        callee.code = [Instr(Op.RET)]
        program.functions["g"] = callee
        fn = self._fn(Instr(Op.CALL, a=-1, name="g", args=(0,)),
                      Instr(Op.RET))
        with pytest.raises(BytecodeError):
            verify_function(fn, program)

    def test_missing_entry(self):
        with pytest.raises(BytecodeError):
            verify_program(Program(entry="nope"))

    def test_entry_with_params_rejected(self):
        program = Program()
        fn = Function("main", n_params=1)
        fn.code = [Instr(Op.RET)]
        program.add(fn)
        with pytest.raises(BytecodeError):
            verify_program(program)


class TestProgramAndDisasm:
    def test_duplicate_function_rejected(self):
        program = Program()
        program.add(Function("f"))
        with pytest.raises(BytecodeError):
            program.add(Function("f"))

    def test_unknown_function_lookup(self):
        with pytest.raises(BytecodeError):
            Program().function("f")

    def test_n_slots_covers_all_operands(self):
        fn = count_to_ten()
        assert fn.n_slots >= 4

    def test_disassembly_mentions_names_and_targets(self):
        fn = count_to_ten()
        text = disassemble_function(fn)
        assert "i(s0)" in text
        assert "br" in text and "jmp" in text
        assert ">" in text  # branch-target markers

    def test_disassemble_program_entry_first(self, nest_program):
        text = disassemble(nest_program)
        assert text.startswith("func main")

    def test_every_opcode_renders(self):
        ins = [
            Instr(Op.CONST, a=0, imm=1),
            Instr(Op.MOV, a=0, b=1),
            Instr(Op.BIN, sub=int(BinOp.ADD), a=0, b=1, c=2),
            Instr(Op.UN, sub=int(UnOp.NEG), a=0, b=1),
            Instr(Op.NEWARR, a=0, b=1),
            Instr(Op.ALOAD, a=0, b=1, c=2),
            Instr(Op.ASTORE, a=0, b=1, c=2),
            Instr(Op.LEN, a=0, b=1),
            Instr(Op.JMP, a=0),
            Instr(Op.BR, a=0, b=1, c=2),
            Instr(Op.CALL, a=0, name="f", args=(1,)),
            Instr(Op.RET, a=0),
            Instr(Op.INTRIN, a=0, name="sqrt", args=(1,)),
            Instr(Op.SLOOP, a=0, b=1),
            Instr(Op.EOI, a=0),
            Instr(Op.ELOOP, a=0),
            Instr(Op.LWL, a=0),
            Instr(Op.SWL, a=0),
            Instr(Op.READSTATS, a=0),
            Instr(Op.PRINT, a=0),
            Instr(Op.NOP),
        ]
        for i in ins:
            assert i.render()

    def test_instr_copy_is_independent(self):
        a = Instr(Op.JMP, a=3)
        b = a.copy()
        b.a = 7
        assert a.a == 3


class TestVerifierOperands:
    """Malformed-operand paths not covered by TestVerifier."""

    def _fn(self, *instrs):
        fn = Function("f")
        fn.code = list(instrs)
        return fn

    def test_bad_un_subopcode(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(
                Instr(Op.UN, sub=99, a=0, b=0), Instr(Op.RET)))

    def test_astore_negative_index_slot(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(
                Instr(Op.ASTORE, a=0, b=-1, c=0), Instr(Op.RET)))

    def test_call_to_unknown_function(self):
        program = Program()
        fn = self._fn(Instr(Op.CALL, a=-1, name="nope", args=()),
                      Instr(Op.RET))
        with pytest.raises(BytecodeError):
            verify_function(fn, program)

    def test_unknown_intrinsic_name(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(
                Instr(Op.INTRIN, a=0, name="nope", args=()),
                Instr(Op.RET)))

    def test_annotation_negative_loop_id(self):
        with pytest.raises(BytecodeError):
            verify_function(self._fn(
                Instr(Op.SLOOP, a=-1), Instr(Op.RET)))


class TestUnreachable:
    """Dead-code detection: rewriting passes must never orphan live
    code, while codegen's legal dead padding stays tolerated."""

    def _fn(self, *instrs):
        fn = Function("f")
        fn.code = list(instrs)
        return fn

    def test_fully_reachable_function(self):
        assert find_unreachable(count_to_ten()) == []

    def test_reports_skipped_pcs(self):
        fn = self._fn(Instr(Op.JMP, a=2), Instr(Op.NOP),
                      Instr(Op.RET))
        assert find_unreachable(fn) == [1]

    def test_ret_stops_the_walk(self):
        fn = self._fn(Instr(Op.RET), Instr(Op.NOP), Instr(Op.RET))
        assert find_unreachable(fn) == [1, 2]

    def test_live_dead_block_rejected_when_strict(self):
        fn = self._fn(
            Instr(Op.CONST, a=0, imm=1),
            Instr(Op.RET, a=0),
            Instr(Op.BIN, sub=BinOp.ADD, a=0, b=0, c=0),  # stranded
            Instr(Op.RET, a=0))
        verify_function(fn)  # tolerant by default
        with pytest.raises(BytecodeError) as exc:
            verify_function(fn, reject_unreachable=True)
        assert "unreachable block of live code" in str(exc.value)
        assert "pc(s) 2" in str(exc.value)

    def test_dead_nop_and_ret_padding_tolerated(self):
        fn = self._fn(Instr(Op.JMP, a=2), Instr(Op.NOP),
                      Instr(Op.RET), Instr(Op.RET))
        verify_function(fn, reject_unreachable=True)

    def test_implicit_return_epilogue_tolerated(self):
        # codegen's implicit `return 0` after exhaustive source returns
        fn = self._fn(
            Instr(Op.CONST, a=0, imm=7),
            Instr(Op.RET, a=0),
            Instr(Op.CONST, a=1, imm=0),
            Instr(Op.RET, a=1))
        verify_function(fn, reject_unreachable=True)

    def test_dead_const_outside_the_epilogue_rejected(self):
        # the CONST tolerance is trailing-suffix only
        fn = self._fn(
            Instr(Op.JMP, a=2),
            Instr(Op.CONST, a=0, imm=1),  # stranded mid-function
            Instr(Op.CONST, a=0, imm=0),
            Instr(Op.RET, a=0))
        with pytest.raises(BytecodeError):
            verify_function(fn, reject_unreachable=True)

    def test_codegen_output_passes_strict_program_verify(self):
        from repro.lang import compile_source

        program = compile_source(
            "func main() {"
            "  if (1 < 2) { return 1; } else { return 2; }"
            "}")
        verify_program(program, reject_unreachable=True)
