"""Unit tests for the minijava parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


def parse_expr(text):
    """Parse an expression by wrapping it in a function."""
    module = parse("func main() { return %s; }" % text)
    stmt = module.functions[0].body[0]
    assert isinstance(stmt, ast.Return)
    return stmt.value


def parse_stmts(text):
    module = parse("func main() { %s }" % text)
    return module.functions[0].body


class TestDeclarations:
    def test_empty_function(self):
        module = parse("func main() { }")
        assert len(module.functions) == 1
        assert module.functions[0].name == "main"
        assert module.functions[0].params == ()

    def test_parameters(self):
        module = parse("func f(a, b, c) { }")
        assert module.functions[0].params == ("a", "b", "c")

    def test_multiple_functions(self):
        module = parse("func a() { } func b() { }")
        assert [f.name for f in module.functions] == ["a", "b"]

    def test_missing_brace_is_error(self):
        with pytest.raises(ParseError):
            parse("func main() {")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse("vor x = 3;")


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_comparison_binds_looser_than_shift(self):
        expr = parse_expr("a << 2 < b")
        assert expr.op == "<"
        assert isinstance(expr.lhs, ast.Binary) and expr.lhs.op == "<<"

    def test_equality_binds_tighter_than_bitand(self):
        # C-style: a & b == c  parses as  a & (b == c)
        expr = parse_expr("a & b == c")
        assert expr.op == "&"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "=="

    def test_logical_or_looser_than_and(self):
        expr = parse_expr("a && b || c")
        assert isinstance(expr, ast.Logical) and expr.op == "||"
        assert isinstance(expr.lhs, ast.Logical) and expr.lhs.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.lhs, ast.Binary)
        assert isinstance(expr.lhs.lhs, ast.Name)
        assert expr.lhs.lhs.ident == "a"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.lhs, ast.Binary) and expr.lhs.op == "+"

    def test_unary_chains(self):
        expr = parse_expr("--x")
        assert isinstance(expr, ast.Unary)
        assert isinstance(expr.operand, ast.Unary)


class TestPostfix:
    def test_indexing(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.index, ast.Binary)

    def test_chained_indexing(self):
        expr = parse_expr("a[0][1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_call_with_args(self):
        expr = parse_expr("f(1, x, g())")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], ast.Call)


class TestStatements:
    def test_var_decl(self):
        (stmt,) = parse_stmts("var x = 3;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"

    def test_assignment(self):
        (stmt,) = parse_stmts("x = 3;")
        assert isinstance(stmt, ast.Assign)

    def test_indexed_store(self):
        (stmt,) = parse_stmts("a[i] = 3;")
        assert isinstance(stmt, ast.StoreIndex)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_stmts("1 + 2 = 3;")

    def test_expression_statement_must_be_call(self):
        with pytest.raises(ParseError):
            parse_stmts("x + 1;")
        (stmt,) = parse_stmts("f();")
        assert isinstance(stmt, ast.ExprStmt)

    def test_if_else_chain(self):
        (stmt,) = parse_stmts(
            "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.orelse[0], ast.If)
        assert stmt.orelse[0].orelse  # final else

    def test_while(self):
        (stmt,) = parse_stmts("while (x < 3) { x = x + 1; }")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        (stmt,) = parse_stmts(
            "for (var i = 0; i < 3; i = i + 1) { f(); }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_without_init_and_step(self):
        (stmt,) = parse_stmts("for (; x < 3;) { x = x + 1; }")
        assert stmt.init is None
        assert stmt.step is None

    def test_break_continue_return(self):
        stmts = parse_stmts(
            "while (1) { break; } while (1) { continue; } return;")
        assert isinstance(stmts[0].body[0], ast.Break)
        assert isinstance(stmts[1].body[0], ast.Continue)
        assert isinstance(stmts[2], ast.Return)
        assert stmts[2].value is None

    def test_print(self):
        (stmt,) = parse_stmts("print x + 1;")
        assert isinstance(stmt, ast.Print)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmts("x = 1")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("func main() { while (1) { ")
