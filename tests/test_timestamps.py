"""Unit tests for the TEST timestamp stores (Section 5.3)."""

import pytest

from repro.tracer import (
    LineTimestampTable,
    LocalTimestampTable,
    StoreTimestampFIFO,
)


class TestStoreTimestampFIFO:
    def test_record_and_lookup(self):
        fifo = StoreTimestampFIFO(4)
        fifo.record(0x100, 10)
        assert fifo.lookup(0x100) == 10
        assert fifo.lookup(0x104) is None

    def test_newest_wins(self):
        fifo = StoreTimestampFIFO(4)
        fifo.record(0x100, 10)
        fifo.record(0x100, 20)
        assert fifo.lookup(0x100) == 20
        assert len(fifo) == 1

    def test_fifo_eviction_order(self):
        fifo = StoreTimestampFIFO(2)
        fifo.record(1, 10)
        fifo.record(2, 20)
        fifo.record(3, 30)   # evicts address 1
        assert fifo.lookup(1) is None
        assert fifo.lookup(2) == 20
        assert fifo.lookup(3) == 30
        assert fifo.evictions == 1

    def test_refresh_protects_from_eviction(self):
        fifo = StoreTimestampFIFO(2)
        fifo.record(1, 10)
        fifo.record(2, 20)
        fifo.record(1, 30)   # refresh 1: now 2 is oldest
        fifo.record(3, 40)   # evicts 2
        assert fifo.lookup(1) == 30
        assert fifo.lookup(2) is None

    def test_limited_history_models_paper_imprecision(self):
        # a dependency whose producer fell out of the 6kB window is
        # simply missed (Section 6.2)
        fifo = StoreTimestampFIFO(8)
        fifo.record(0xAAAA, 1)
        for i in range(8):
            fifo.record(i * 4, 100 + i)
        assert fifo.lookup(0xAAAA) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StoreTimestampFIFO(0)


class TestLineTimestampTable:
    def test_direct_mapped_hit(self):
        table = LineTimestampTable(64)
        table.record(5, 100)
        assert table.lookup(5) == 100

    def test_tag_mismatch_is_miss(self):
        table = LineTimestampTable(64)
        table.record(5, 100)
        # line 5 + 64 maps to the same index with a different tag
        assert table.lookup(5 + 64) is None

    def test_conflict_overwrites(self):
        table = LineTimestampTable(64)
        table.record(5, 100)
        table.record(5 + 64, 200)
        assert table.lookup(5 + 64) == 200
        assert table.lookup(5) is None
        assert table.conflicts == 1

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            LineTimestampTable(48)

    def test_independent_indices(self):
        table = LineTimestampTable(8)
        for line in range(8):
            table.record(line, line * 10)
        for line in range(8):
            assert table.lookup(line) == line * 10


class TestLocalTimestampTable:
    def test_keyed_by_frame_and_slot(self):
        table = LocalTimestampTable(8)
        table.record(1, 0, 10)
        table.record(2, 0, 20)
        assert table.lookup(1, 0) == 10
        assert table.lookup(2, 0) == 20
        assert table.lookup(1, 1) is None

    def test_fifo_eviction(self):
        table = LocalTimestampTable(2)
        table.record(0, 0, 1)
        table.record(0, 1, 2)
        table.record(0, 2, 3)
        assert table.lookup(0, 0) is None
        assert table.evictions == 1

    def test_refresh(self):
        table = LocalTimestampTable(8)
        table.record(0, 0, 1)
        table.record(0, 0, 9)
        assert table.lookup(0, 0) == 9
        assert len(table) == 1
