"""Unit tests for the Equation 1 speedup estimator."""

import pytest

from repro.hydra import HydraConfig
from repro.tracer import (
    STLStats,
    arc_limited_speedup,
    base_speedup,
    estimate_speedup,
)


def make_stats(cycles=100_000, threads=1000, entries=1,
               arcs_prev=0, arc_len_prev=0,
               arcs_earlier=0, arc_len_earlier=0,
               overflow_threads=0, local_arcs=0):
    st = STLStats(0)
    st.cycles = cycles
    st.threads = threads
    st.entries = entries
    st.profiled_threads = threads
    st.profiled_entries = entries
    st.arcs_prev = arcs_prev
    st.arc_len_prev = arc_len_prev
    st.arcs_earlier = arcs_earlier
    st.arc_len_earlier = arc_len_earlier
    st.overflow_threads = overflow_threads
    st.local_arcs = local_arcs
    return st


class TestArcLimitedSpeedup:
    def test_saturates_at_three_quarters_thread_size(self):
        # the paper: maximal speedup when A >= (3/4) T with p = 4
        assert arc_limited_speedup(100, 75, span=1, n_cpus=4) == 4.0
        assert arc_limited_speedup(100, 76, span=1, n_cpus=4) == 4.0

    def test_short_arc_serializes(self):
        s = arc_limited_speedup(100, 1, span=1, n_cpus=4)
        assert s == pytest.approx(100 / 99, rel=1e-6)

    def test_monotonic_in_arc_length(self):
        values = [arc_limited_speedup(100, a, span=1, n_cpus=4)
                  for a in range(0, 101, 5)]
        assert values == sorted(values)

    def test_span_two_measures_across_two_threads(self):
        # an earlier-thread arc of length T + x leaves x cycles of
        # slack per hop, like a previous-thread arc of length T - ...;
        # at equal *length* a span-2 arc is tighter (the same slack is
        # spread over two thread hops)
        assert arc_limited_speedup(100, 120, span=2, n_cpus=4) \
            == pytest.approx(200 / 80)
        tight = arc_limited_speedup(100, 90, span=2, n_cpus=4)
        loose = arc_limited_speedup(100, 190, span=2, n_cpus=4)
        assert loose > tight

    def test_bounds(self):
        for arc in (0, 10, 99, 100, 1000):
            s = arc_limited_speedup(100, arc, span=1, n_cpus=4)
            assert 1.0 <= s <= 4.0

    def test_zero_thread_size(self):
        assert arc_limited_speedup(0, 0, span=1, n_cpus=4) == 4.0


class TestBaseSpeedup:
    def test_no_arcs_gives_full_parallelism(self):
        st = make_stats()
        assert base_speedup(st, 4) == 4.0

    def test_every_thread_short_arc_near_serial(self):
        st = make_stats(arcs_prev=999, arc_len_prev=999 * 2)
        assert base_speedup(st, 4) < 1.3

    def test_mix_weighted_by_frequency(self):
        half = make_stats(arcs_prev=500, arc_len_prev=500 * 2)
        full = make_stats(arcs_prev=999, arc_len_prev=999 * 2)
        assert base_speedup(half, 4) > base_speedup(full, 4)


class TestEstimate:
    def test_ideal_loop_near_max(self):
        # big arc-free threads: only EOI overhead separates us from 4x
        st = make_stats(cycles=1_000_000)
        est = estimate_speedup(st)
        assert est.speedup > 3.8
        assert est.base_speedup == 4.0

    def test_eoi_overhead_limits_small_threads(self):
        # 100-cycle threads pay 5 EOI cycles each: ~3.3x ceiling
        est = estimate_speedup(make_stats(cycles=100_000))
        assert 3.0 < est.speedup < 3.6

    def test_empty_stats_neutral(self):
        st = STLStats(0)
        est = estimate_speedup(st)
        assert est.speedup == 1.0

    def test_overflow_serializes(self):
        clean = estimate_speedup(make_stats())
        dirty = estimate_speedup(make_stats(overflow_threads=1000))
        assert dirty.speedup < 1.1
        assert clean.speedup > dirty.speedup

    def test_partial_overflow_interpolates(self):
        half = estimate_speedup(make_stats(overflow_threads=500))
        none = estimate_speedup(make_stats())
        full = estimate_speedup(make_stats(overflow_threads=1000))
        assert full.speedup < half.speedup < none.speedup

    def test_overheads_hurt_small_threads(self):
        # same arc profile, tiny threads: per-thread EOI overhead bites
        big = estimate_speedup(make_stats(cycles=1_000_000))
        small = estimate_speedup(make_stats(cycles=10_000))
        assert big.speedup > small.speedup

    def test_entry_overhead_hurts_many_entries(self):
        few = estimate_speedup(make_stats(entries=1))
        many = estimate_speedup(make_stats(entries=500))
        assert few.speedup > many.speedup

    def test_local_arcs_add_communication(self):
        no_comm = estimate_speedup(make_stats(
            arcs_prev=999, arc_len_prev=999 * 90))
        comm = estimate_speedup(make_stats(
            arcs_prev=999, arc_len_prev=999 * 90, local_arcs=999))
        assert no_comm.speedup > comm.speedup

    def test_speedup_capped_at_cpu_count(self):
        est = estimate_speedup(make_stats(cycles=10_000_000))
        assert est.speedup <= 4.0
        est8 = estimate_speedup(make_stats(cycles=10_000_000),
                                HydraConfig(n_cpus=8))
        assert est8.speedup <= 8.0

    def test_few_iterations_per_entry_caps_speedup(self):
        st = make_stats(threads=2, entries=1, cycles=100_000)
        est = estimate_speedup(st)
        assert est.speedup <= 2.0

    def test_unprofiled_loop_neutral(self):
        st = make_stats()
        st.profiled_threads = 0
        assert estimate_speedup(st).speedup == 1.0

    def test_estimate_exposes_terms(self):
        est = estimate_speedup(make_stats())
        assert est.orig_time == 100_000
        assert est.spec_time > 0
        assert est.overflow_freq == 0.0
