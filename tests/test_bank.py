"""Unit tests for the comparator bank (Figures 3, 4, 7)."""

import pytest

from repro.hydra import HydraConfig
from repro.tracer import ComparatorBank, STLStats


def make_bank(**config_kwargs):
    config = HydraConfig(**config_kwargs)
    stats = STLStats(0)
    return ComparatorBank(config, stats), stats


class TestDependencyArcs:
    def test_same_thread_store_is_not_an_arc(self):
        bank, stats = make_bank()
        bank.start_entry(100)
        bank.observe_load(store_ts=150, cycle=160, is_local=False)
        bank.end_iteration(200)
        bank.end_entry(210)
        assert stats.arcs_prev == 0
        assert stats.arcs_earlier == 0

    def test_store_before_entry_ignored(self):
        bank, stats = make_bank()
        bank.start_entry(100)
        bank.end_iteration(200)
        bank.observe_load(store_ts=50, cycle=250, is_local=False)
        bank.end_iteration(300)
        bank.end_entry(310)
        assert stats.arcs_prev == 0
        assert stats.arcs_earlier == 0

    def test_previous_thread_arc(self):
        bank, stats = make_bank()
        bank.start_entry(100)    # thread 0: [100, 200)
        bank.end_iteration(200)  # thread 1: [200, ...)
        bank.observe_load(store_ts=180, cycle=220, is_local=False)
        bank.end_iteration(300)
        bank.end_entry(310)
        assert stats.arcs_prev == 1
        assert stats.arc_len_prev == 40   # 220 - 180
        assert stats.arcs_earlier == 0

    def test_earlier_thread_arc(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.end_iteration(100)  # thread 1 starts
        bank.end_iteration(200)  # thread 2 starts
        # store at 50 is in thread 0 = two threads back
        bank.observe_load(store_ts=50, cycle=250, is_local=False)
        bank.end_iteration(300)
        bank.end_entry(310)
        assert stats.arcs_earlier == 1
        assert stats.arc_len_earlier == 200
        assert stats.arcs_prev == 0

    def test_critical_arc_is_shortest(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.end_iteration(100)
        bank.observe_load(store_ts=20, cycle=150, is_local=False)  # 130
        bank.observe_load(store_ts=90, cycle=160, is_local=False)  # 70
        bank.observe_load(store_ts=10, cycle=170, is_local=False)  # 160
        bank.end_iteration(200)
        bank.end_entry(210)
        assert stats.arcs_prev == 1
        assert stats.arc_len_prev == 70

    def test_local_arc_flag(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.end_iteration(100)
        bank.observe_load(store_ts=50, cycle=150, is_local=True)
        bank.end_iteration(200)
        bank.end_entry(210)
        assert stats.local_arcs == 1

    def test_arc_sink_receives_critical_arcs(self):
        received = []
        config = HydraConfig()
        stats = STLStats(7)
        bank = ComparatorBank(
            config, stats,
            arc_sink=lambda lid, kind, ln, fn, pc: received.append(
                (lid, kind, ln, fn, pc)))
        bank.start_entry(0)
        bank.end_iteration(100)
        bank.observe_load(store_ts=80, cycle=150, is_local=False,
                          fn="main", pc=42)
        bank.end_iteration(200)
        bank.end_entry(210)
        assert received == [(7, "prev", 70, "main", 42)]


class TestThreadAccounting:
    def test_threads_and_entries(self):
        bank, stats = make_bank()
        for entry in range(3):
            base = entry * 1000
            bank.start_entry(base)
            bank.end_iteration(base + 100)
            bank.end_iteration(base + 200)
            bank.end_entry(base + 210)
        assert stats.entries == 3
        assert stats.threads == 6
        assert stats.profiled_threads == 6
        assert stats.avg_iters_per_entry == 2.0

    def test_cycles_accumulate_across_entries(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.end_iteration(100)
        bank.end_entry(110)
        bank.start_entry(500)
        bank.end_iteration(550)
        bank.end_entry(560)
        assert stats.cycles == 110 + 60

    def test_zero_trip_entry_counts_one_thread(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.end_entry(10)  # no eoi at all
        assert stats.threads == 1
        assert stats.entries == 1

    def test_tail_segment_not_an_extra_thread(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.end_iteration(100)
        bank.end_entry(104)  # tiny exit-check tail
        assert stats.threads == 1


class TestOverflowAnalysis:
    def test_new_lines_counted_per_thread(self):
        bank, stats = make_bank(store_buffer_lines=4)
        bank.start_entry(0)
        for i in range(3):
            bank.observe_line_load(None)
        bank.end_iteration(100)
        bank.end_entry(110)
        assert stats.load_lines_total == 3
        assert stats.max_load_lines == 3
        assert stats.overflow_threads == 0

    def test_line_touched_this_thread_not_recounted(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.observe_line_load(None)   # first touch
        bank.observe_line_load(50)     # ts 50 >= thread start 0: ours
        bank.end_iteration(100)
        bank.end_entry(110)
        assert stats.load_lines_total == 1

    def test_line_from_previous_thread_recounted(self):
        bank, stats = make_bank()
        bank.start_entry(0)
        bank.observe_line_load(None)
        bank.end_iteration(100)
        bank.observe_line_load(50)    # touched in thread 0 -> new here
        bank.end_iteration(200)
        bank.end_entry(210)
        assert stats.load_lines_total == 2

    def test_store_overflow_flags_thread(self):
        bank, stats = make_bank(store_buffer_lines=2)
        bank.start_entry(0)
        for _ in range(3):
            bank.observe_line_store(None)
        bank.end_iteration(100)
        bank.end_entry(110)
        assert stats.overflow_threads == 1
        assert stats.overflow_freq == 1.0

    def test_load_overflow_uses_load_limit(self):
        bank, stats = make_bank(load_buffer_lines=2, load_buffer_assoc=2)
        bank.start_entry(0)
        for _ in range(3):
            bank.observe_line_load(None)
        bank.end_iteration(100)
        bank.end_entry(110)
        assert stats.overflow_threads == 1

    def test_consistently_overflowing_policy(self):
        bank, stats = make_bank(store_buffer_lines=1)
        bank.start_entry(0)
        for t in range(20):
            bank.observe_line_store(None)
            bank.observe_line_store(None)
            bank.end_iteration((t + 1) * 100)
        assert bank.consistently_overflowing()
