"""Unit tests for the microJIT scalar optimizer."""

import pytest

from repro.bytecode import Op, verify_program
from repro.jit import optimize_program
from repro.lang import compile_source
from repro.runtime import run_program


def optimized(source):
    program = compile_source(source)
    clone = program.copy()
    stats = optimize_program(clone)
    return program, clone, stats


class TestSemanticsPreserved:
    CASES = [
        "func main() { return 2 + 3 * 4; }",
        "func main() { var a = array(8); a[3] = 5; return a[3]; }",
        """func main() {
             var s = 0;
             for (var i = 0; i < 10; i = i + 1) { s = s + i * 2; }
             return s;
           }""",
        """func f(x) { return x * x; }
           func main() { return f(3) + f(4); }""",
        """func main() {
             var x = 1;
             if (x > 0) { x = x + 41; } else { x = -1; }
             return x;
           }""",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_same_result_fewer_or_equal_instructions(self, source):
        program, clone, _ = optimized(source)
        base = run_program(program)
        opt = run_program(clone)
        assert base.return_value == opt.return_value
        assert opt.instructions <= base.instructions

    def test_all_workloads_preserved(self, goldens):
        from repro.workloads import all_workloads
        for w in all_workloads():
            program = w.compile()
            clone = program.copy()
            optimize_program(clone)
            res = run_program(clone)
            assert res.return_value \
                == goldens[w.name]["return_value"], w.name


class TestTransformations:
    def test_constant_folding(self):
        _, clone, stats = optimized(
            "func main() { return (2 + 3) * (4 - 1); }")
        assert stats.folded >= 2
        # the whole expression collapses to one constant
        consts = [i for i in clone.main.code if i.op == Op.CONST]
        assert any(i.imm == 15 for i in consts)

    def test_dead_temp_elimination(self):
        program, clone, stats = optimized(
            "func main() { var x = 5; return x; }")
        # folding replaces computations; dead CONSTs disappear
        assert clone.main.n_slots <= program.main.n_slots
        assert stats.total >= 0
        verify_program(clone)

    def test_faulting_ops_never_removed(self):
        # the division faults at runtime and must keep doing so even
        # though its result is unused
        source = """
        func main() {
          var zero = 0;
          var unused = 1 / zero;
          return 7;
        }
        """
        program, clone, _ = optimized(source)
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            run_program(clone)

    def test_dead_named_locals_removed(self):
        # liveness-driven global DCE (unlike the old temp-only sweep)
        # proves the named local dead and drops its definition
        source = """
        func main() {
          var dead = 123;
          return 5;
        }
        """
        program, clone, stats = optimized(source)
        assert not any(i.op == Op.CONST and i.imm == 123
                       for i in clone.main.code)
        assert stats.dead_removed >= 1
        from repro.runtime import run_program
        assert run_program(clone).return_value == 5

    def test_live_named_locals_kept(self):
        source = """
        func main() {
          var kept = 123;
          print(kept);
          return kept;
        }
        """
        program, clone, _ = optimized(source)
        from repro.runtime import run_program
        res = run_program(clone)
        assert res.return_value == 123
        assert res.printed == run_program(program).printed

    def test_branch_targets_remapped(self):
        source = """
        func main() {
          var s = 0;
          for (var i = 0; i < 6; i = i + 1) {
            var dead = 17;
            s = s + (1 + 1);
          }
          return s;
        }
        """
        _, clone, stats = optimized(source)
        verify_program(clone)
        assert run_program(clone).return_value == 12

    def test_copy_propagation_through_temps(self):
        # our codegen rarely emits MOVs into temps, so build the chain
        # by hand: t1 = const, t2 = t1, t3 = t2, return uses t3
        from repro.bytecode import FunctionBuilder, Program
        from repro.jit import optimize_function
        b = FunctionBuilder("main")
        t1, t2, t3 = b.temp(), b.temp(), b.temp()
        b.const(t1, 42)
        b.mov(t2, t1)
        b.mov(t3, t2)
        b.ret(t3)
        fn = b.build()
        stats = optimize_function(fn)
        assert stats.copies_propagated >= 1
        program = Program()
        program.add(fn)
        verify_program(program)
        assert run_program(program).return_value == 42
        # the chain collapses: at most a const + ret remain
        assert len(fn.code) <= 3


class TestPipelineIntegration:
    def test_optimize_flag(self):
        from repro.jrpm import Jrpm
        src = ("func main() { var s = 0; "
               "for (var i = 0; i < 40; i = i + 1) "
               "{ s = s + i * (2 + 3); } return s; }")
        plain = Jrpm(source=src).run(simulate_tls=False)
        opt = Jrpm(source=src, optimize=True).run(simulate_tls=False)
        assert plain.sequential.return_value \
            == opt.sequential.return_value
        assert opt.sequential.cycles <= plain.sequential.cycles

    def test_user_program_not_mutated(self):
        from repro.jrpm import Jrpm
        program = compile_source(
            "func main() { return (1 + 2) * 3; }")
        before = [i.render() for i in program.main.code]
        Jrpm(program=program, optimize=True).run(simulate_tls=False)
        after = [i.render() for i in program.main.code]
        assert before == after
