"""Unit tests for the Hydra machine model (config, caches, transistors)."""

import pytest

from repro.errors import SimulationError
from repro.hydra import (
    DEFAULT_HYDRA,
    FullyAssocBuffer,
    HydraConfig,
    SetAssocCache,
    TransistorBudget,
)


class TestConfig:
    def test_paper_table1_values(self):
        cfg = DEFAULT_HYDRA
        assert cfg.load_buffer_bytes == 16 * 1024
        assert cfg.load_buffer_lines == 512
        assert cfg.load_buffer_assoc == 4
        assert cfg.store_buffer_bytes == 2 * 1024
        assert cfg.store_buffer_lines == 64
        assert cfg.line_size == 32

    def test_paper_table2_values(self):
        cfg = DEFAULT_HYDRA
        assert cfg.startup_overhead == 25
        assert cfg.shutdown_overhead == 25
        assert cfg.eoi_overhead == 5
        assert cfg.violation_restart_overhead == 5
        assert cfg.store_load_comm_overhead == 10

    def test_paper_section53_values(self):
        cfg = DEFAULT_HYDRA
        assert cfg.heap_ts_history_bytes == 6 * 1024
        assert cfg.heap_ts_fifo_lines == 192
        assert cfg.n_comparator_banks == 8

    def test_tables_render(self):
        rows = DEFAULT_HYDRA.buffer_limits_table()
        assert rows[0][0] == "Load buffer"
        assert "16kB" in rows[0][1]
        rows = DEFAULT_HYDRA.overheads_table()
        assert ("Loop startup", 25) == rows[0][:2]

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            HydraConfig(n_cpus=1)
        with pytest.raises(ValueError):
            HydraConfig(line_size=48)

    def test_custom_config(self):
        cfg = HydraConfig(n_cpus=8, store_buffer_lines=128)
        assert cfg.n_cpus == 8
        assert cfg.store_buffer_bytes == 128 * 32


class TestSetAssocCache:
    def test_hit_does_not_overflow(self):
        cache = SetAssocCache(8, 4)
        assert cache.touch(0) is False
        assert cache.touch(0) is False
        assert cache.resident_lines == 1

    def test_set_conflict_overflows(self):
        cache = SetAssocCache(8, 2)  # 4 sets, 2 ways
        # lines 0, 4, 8 all map to set 0
        assert cache.touch(0) is False
        assert cache.touch(4) is False
        assert cache.touch(8) is True

    def test_distinct_sets_independent(self):
        cache = SetAssocCache(8, 2)
        for line in range(8):
            assert cache.touch(line) is False

    def test_reset(self):
        cache = SetAssocCache(8, 2)
        cache.touch(0)
        cache.reset()
        assert cache.resident_lines == 0

    def test_invalid_geometry(self):
        with pytest.raises(SimulationError):
            SetAssocCache(10, 4)
        with pytest.raises(SimulationError):
            SetAssocCache(0, 1)


class TestFullyAssocBuffer:
    def test_fills_then_overflows(self):
        buf = FullyAssocBuffer(2)
        assert buf.touch(10) is False
        assert buf.touch(20) is False
        assert buf.touch(10) is False  # already resident
        assert buf.touch(30) is True

    def test_reset(self):
        buf = FullyAssocBuffer(2)
        buf.touch(1)
        buf.reset()
        assert buf.resident_lines == 0
        assert buf.touch(2) is False


class TestTransistors:
    def test_test_hardware_below_one_percent(self):
        budget = TransistorBudget()
        assert budget.test_fraction < 0.01

    def test_l2_dominates(self):
        budget = TransistorBudget()
        assert budget.fraction("2MB L2 cache") > 0.5

    def test_row_shape_matches_table5(self):
        budget = TransistorBudget()
        names = [r.structure for r in budget.rows]
        assert names == ["CPU + FP core", "16kB I / 16kB D Cache",
                         "2MB L2 cache", "Write buffer",
                         "Comparator bank"]
        counts = [r.count for r in budget.rows]
        assert counts == [4, 4, 1, 5, 8]

    def test_comparator_bank_in_tens_of_thousands(self):
        # the paper estimates 39K transistors per bank
        budget = TransistorBudget()
        bank = [r for r in budget.rows
                if r.structure == "Comparator bank"][0]
        assert 15_000 < bank.each < 80_000

    def test_totals_consistent(self):
        budget = TransistorBudget()
        assert budget.total == sum(r.total for r in budget.rows)
        for row in budget.rows:
            assert row.total == row.count * row.each

    def test_render(self):
        text = TransistorBudget().render()
        assert "Comparator bank" in text
        assert "Total" in text

    def test_unknown_structure(self):
        with pytest.raises(KeyError):
            TransistorBudget().fraction("GPU")
