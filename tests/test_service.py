"""Tests for the analysis service: protocol, metrics, scheduler
(coalescing / batching / backpressure / shutdown), the HTTP daemon end
to end, and the ``jrpm serve`` process (SIGTERM drain)."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.jrpm.report import (
    REPORT_SCHEMA_VERSION,
    dumps_canonical,
    validate_report_dict,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import (
    AnalyzeRequest,
    ProtocolError,
    parse_analyze_request,
)
from repro.service.scheduler import (
    QueueFullError,
    RequestScheduler,
    SchedulerClosedError,
)
from repro.service.server import AnalysisService


def _body(**kwargs) -> bytes:
    return json.dumps(kwargs).encode()


def _fake_report(name):
    """Minimal dict satisfying REPORT_SCHEMA (the HTTP handler
    validates every 200 response against it)."""
    return {"schema_version": REPORT_SCHEMA_VERSION, "name": name,
            "sequential_cycles": 1, "profiled_cycles": 1,
            "profiling_slowdown": 1.0, "loops_profiled": 0,
            "coverage": 0.0, "predicted_speedup": 1.0,
            "actual_speedup": None,
            "selection": {"total_cycles": 1, "serial_cycles": 1,
                          "selected": []},
            "predicted_vs_actual": None, "engine": None,
            "trace_jit": None, "optimize_stats": None,
            "models": None}


def _request(port: int, method: str, path: str, body=None,
             headers=None, host: str = "127.0.0.1"):
    """One HTTP exchange; returns (status, parsed_json, headers)."""
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        try:
            parsed = json.loads(raw)
        except ValueError:
            parsed = raw.decode("utf-8", "replace")
        return resp.status, parsed, dict(resp.getheaders())
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_minimal_request(self):
        req = parse_analyze_request(_body(workload="Huffman"))
        assert req.workload.name == "Huffman"
        assert req.simulate_tls is True
        assert req.config_overrides == {}
        assert not req.fresh

    def test_full_request(self):
        req = parse_analyze_request(_body(
            workload="IDEA", config={"n_cpus": 8},
            stages=["profile"], level="base", fresh=True))
        assert req.config.n_cpus == 8
        assert req.simulate_tls is False
        assert req.level.value == "base"
        assert req.fresh

    def test_key_is_content_addressed(self):
        a = parse_analyze_request(_body(workload="Huffman"))
        b = parse_analyze_request(_body(workload="Huffman",
                                        config={}, stages=["profile",
                                                           "tls"]))
        c = parse_analyze_request(_body(workload="Huffman",
                                        config={"n_cpus": 8}))
        assert a.key == b.key       # defaults spelled out == omitted
        assert a.key != c.key       # config participates in identity
        # fresh does not change identity (it only bypasses the result
        # cache), so fresh requests still coalesce with others
        d = parse_analyze_request(_body(workload="Huffman", fresh=True))
        assert a.key == d.key

    def test_profile_key_groups_compatible_requests(self):
        a = parse_analyze_request(_body(workload="Huffman"))
        b = parse_analyze_request(_body(workload="IDEA"))
        c = parse_analyze_request(_body(workload="IDEA",
                                        config={"n_cpus": 8}))
        assert a.profile_key == b.profile_key
        assert b.profile_key != c.profile_key

    @pytest.mark.parametrize("body,fragment", [
        (b"not json", "not valid JSON"),
        (b"[1, 2]", "JSON object"),
        (_body(), "'workload' is required"),
        (_body(workload="zzz"), "unknown workload"),
        (_body(workload="Huffman", zzz=1), "unknown request key"),
        (_body(workload="Huffman", config={"bogus": 1}),
         "unknown config field"),
        (_body(workload="Huffman", config={"n_cpus": "four"}),
         "must be a number"),
        (_body(workload="Huffman", config={"n_cpus": 1}),
         "invalid config"),
        (_body(workload="Huffman", stages=["zzz"]), "unknown stage"),
        (_body(workload="Huffman", stages="tls"), "list"),
        (_body(workload="Huffman", level="zzz"), "unknown level"),
        (_body(workload="Huffman", fresh="yes"), "boolean"),
    ])
    def test_rejects_malformed(self, body, fragment):
        with pytest.raises(ProtocolError) as exc:
            parse_analyze_request(body)
        assert fragment in str(exc.value)
        assert exc.value.status == 400


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_histogram_buckets_and_quantiles(self):
        hist = LatencyHistogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.counts == [2, 1, 1, 0]
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(0.99) == 10.0
        hist.observe(100.0)  # lands in +Inf; quantile caps at last bound
        assert hist.quantile(1.0) == 10.0

    def test_registry_roundtrip(self):
        metrics = ServiceMetrics()
        metrics.observe_request("analyze", 200, 0.2)
        metrics.observe_request("analyze", 429, 0.001)
        metrics.inc("coalesced", 3)
        metrics.set_gauge("queue_depth", 7)
        metrics.merge_cache({"profile": {"hits": 2, "misses": 1,
                                         "corrupt": 0}})
        metrics.merge_faults({"retries": 1, "timeouts": 0, "crashes": 2})
        snap = metrics.to_dict()
        assert snap["requests"]["analyze_200"] == 1
        assert snap["requests"]["analyze_429"] == 1
        assert snap["counters"]["coalesced"] == 3
        assert snap["gauges"]["queue_depth"] == 7
        assert snap["cache"]["profile"]["hits"] == 2
        assert snap["faults"] == {"retries": 1, "timeouts": 0,
                                  "crashes": 2}
        text = metrics.render_prometheus()
        assert ('jrpm_requests_total{endpoint="analyze",status="200"} 1'
                in text)
        assert 'jrpm_coalesced_total 3' in text
        assert 'jrpm_queue_depth 7' in text
        assert ('jrpm_cache_lookups_total{stage="profile",result="hits"}'
                ' 2' in text)
        assert 'jrpm_fleet_faults_total{kind="crashes"} 2' in text

    def test_thread_safety_under_contention(self):
        metrics = ServiceMetrics()

        def hammer():
            for _ in range(500):
                metrics.inc("coalesced")
                metrics.observe_request("analyze", 200, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("coalesced") == 4000
        assert metrics.to_dict()["requests"]["analyze_200"] == 4000


# ---------------------------------------------------------------------------
# scheduler (fake runner: deterministic, no pipelines)
# ---------------------------------------------------------------------------

def _req(workload="Huffman", **kwargs) -> AnalyzeRequest:
    return parse_analyze_request(_body(workload=workload, **kwargs))


def _ok_outcomes(requests):
    return [{"status": "ok", "workload": r.workload.name,
             "report": {"name": r.workload.name}, "attempts": 1}
            for r in requests]


class TestScheduler:
    def test_runs_and_caches_results(self):
        calls = []

        def runner(requests):
            calls.append([r.workload.name for r in requests])
            return _ok_outcomes(requests)

        sched = RequestScheduler(runner=runner, queue_depth=8)
        try:
            first = sched.submit(_req()).wait(timeout=10)
            assert first["status"] == "ok"
            # identical repeat: result cache, no second execution
            ticket = sched.submit(_req())
            assert ticket.cached
            assert ticket.wait(timeout=10) is first
            assert calls == [["Huffman"]]
            assert sched.metrics.counter("result_cache_hits") == 1
        finally:
            sched.stop()

    def test_fresh_bypasses_result_cache(self):
        calls = []

        def runner(requests):
            calls.append(1)
            return _ok_outcomes(requests)

        sched = RequestScheduler(runner=runner)
        try:
            sched.submit(_req()).wait(timeout=10)
            ticket = sched.submit(_req(fresh=True))
            assert not ticket.cached
            ticket.wait(timeout=10)
            assert len(calls) == 2
        finally:
            sched.stop()

    def test_coalesces_concurrent_identical_requests(self):
        release = threading.Event()
        calls = []

        def runner(requests):
            calls.append([r.workload.name for r in requests])
            release.wait(timeout=30)
            return _ok_outcomes(requests)

        sched = RequestScheduler(runner=runner)
        try:
            first = sched.submit(_req())
            # wait until the dispatcher has the entry running
            deadline = time.monotonic() + 10
            while not calls and time.monotonic() < deadline:
                time.sleep(0.005)
            assert calls == [["Huffman"]]
            dup = sched.submit(_req())
            fresh_dup = sched.submit(_req(fresh=True))
            assert dup.coalesced and fresh_dup.coalesced
            release.set()
            results = [t.wait(timeout=10)
                       for t in (first, dup, fresh_dup)]
            assert all(r["status"] == "ok" for r in results)
            assert results[0] is results[1] is results[2]
            assert len(calls) == 1  # one computation for all three
            assert sched.metrics.counter("coalesced") == 2
        finally:
            release.set()
            sched.stop()

    def test_batches_compatible_requests(self):
        release = threading.Event()
        calls = []

        def runner(requests):
            calls.append(sorted(r.workload.name for r in requests))
            release.wait(timeout=30)
            release.clear()
            return _ok_outcomes(requests)

        sched = RequestScheduler(runner=runner, max_batch=4)
        try:
            # first entry occupies the dispatcher...
            blocker = sched.submit(_req("BitOps"))
            deadline = time.monotonic() + 10
            while not calls and time.monotonic() < deadline:
                time.sleep(0.005)
            # ...so these queue up: two share the default profile, one
            # (different config) must not join their batch
            same1 = sched.submit(_req("Huffman"))
            same2 = sched.submit(_req("IDEA"))
            other = sched.submit(_req("monteCarlo",
                                      config={"n_cpus": 8}))
            release.set()
            for ticket in (blocker, same1, same2, other):
                assert ticket.wait(timeout=10)["status"] == "ok"
                release.set()
            assert calls[0] == ["BitOps"]
            assert ["Huffman", "IDEA"] in calls
            assert ["monteCarlo"] in calls
            assert sched.metrics.counter("batched_requests") == 2
        finally:
            release.set()
            sched.stop()

    def test_queue_bound_sheds_load(self):
        release = threading.Event()

        def runner(requests):
            release.wait(timeout=30)
            return _ok_outcomes(requests)

        sched = RequestScheduler(runner=runner, queue_depth=2)
        try:
            running = sched.submit(_req("BitOps"))
            deadline = time.monotonic() + 10
            while sched.queued and time.monotonic() < deadline:
                time.sleep(0.005)
            q1 = sched.submit(_req("Huffman"))
            q2 = sched.submit(_req("IDEA"))
            with pytest.raises(QueueFullError) as exc:
                sched.submit(_req("monteCarlo"))
            assert exc.value.retry_after >= 1.0
            assert sched.metrics.counter("load_shed") == 1
            # coalescing still admits duplicates of queued work even
            # at the bound (they add no queue entry)
            assert sched.submit(_req("Huffman")).coalesced
            release.set()
            for ticket in (running, q1, q2):
                assert ticket.wait(timeout=10)["status"] == "ok"
            # queue drained: new work admits again
            assert sched.submit(_req("monteCarlo")).wait(
                timeout=10)["status"] == "ok"
        finally:
            release.set()
            sched.stop()

    def test_runner_exception_resolves_waiters(self):
        def runner(requests):
            raise RuntimeError("boom")

        sched = RequestScheduler(runner=runner)
        try:
            outcome = sched.submit(_req()).wait(timeout=10)
            assert outcome["status"] == "error"
            assert "boom" in outcome["error"]
            # errors are not cached: the next submit recomputes
            assert not sched.submit(_req()).cached
        finally:
            sched.stop()

    def test_stop_drains_queued_work(self):
        started = threading.Event()
        release = threading.Event()

        def runner(requests):
            started.set()
            release.wait(timeout=30)
            return _ok_outcomes(requests)

        sched = RequestScheduler(runner=runner)
        running = sched.submit(_req("BitOps"))
        assert started.wait(timeout=10)
        queued = sched.submit(_req("Huffman"))

        stopper = threading.Thread(target=sched.stop,
                                   kwargs={"drain": True})
        stopper.start()
        with pytest.raises(SchedulerClosedError):
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:  # stop flips _open
                sched.submit(_req("IDEA"))
                time.sleep(0.01)
        release.set()
        stopper.join(timeout=10)
        assert not stopper.is_alive()
        assert running.wait(timeout=10)["status"] == "ok"
        assert queued.wait(timeout=10)["status"] == "ok"

    def test_stop_without_drain_fails_queued_work(self):
        release = threading.Event()

        def runner(requests):
            release.wait(timeout=30)
            return _ok_outcomes(requests)

        sched = RequestScheduler(runner=runner)
        running = sched.submit(_req("BitOps"))
        deadline = time.monotonic() + 10
        while sched.queued and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = sched.submit(_req("Huffman"))
        release.set()
        sched.stop(drain=False)
        assert running.wait(timeout=10)["status"] == "ok"
        outcome = queued.wait(timeout=10)
        assert outcome["status"] == "error"

    def test_real_pipeline_batch(self):
        """The default fleet runner produces schema-valid reports and
        feeds cache/fault counters into the metrics registry."""
        sched = RequestScheduler(queue_depth=8)
        try:
            outcome = sched.submit(_req("BitOps")).wait(timeout=300)
            assert outcome["status"] == "ok"
            validate_report_dict(outcome["report"])
            assert outcome["report"]["name"] == "BitOps"
            snap = sched.metrics.to_dict()
            assert snap["cache"]  # profile/compile/... misses recorded
        finally:
            sched.stop()


# ---------------------------------------------------------------------------
# HTTP end to end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service():
    svc = AnalysisService(port=0, queue_depth=64, max_batch=8).start()
    yield svc
    svc.stop()


class TestHTTP:
    def test_healthz(self, service):
        status, body, _ = _request(service.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queued"] == 0

    def test_workloads_endpoint(self, service):
        status, body, _ = _request(service.port, "GET", "/workloads")
        assert status == 200
        names = body["workloads"]
        assert "Huffman" in names
        # the 26 Table 6 workloads first, synthetic instances after
        assert len([n for n in names if not n.startswith("synth-")]) == 26
        assert "synth-stencil-000" in names
        # the 26 Table 6 workloads lead; synthetic instances follow
        assert not names[0].startswith("synth-")
        assert names[-1].startswith("synth-")

    def test_unknown_paths_404(self, service):
        assert _request(service.port, "GET", "/zzz")[0] == 404
        assert _request(service.port, "POST", "/zzz")[0] == 404

    def test_analyze_roundtrip_and_schema(self, service):
        status, body, _ = _request(service.port, "POST", "/analyze",
                                   body={"workload": "BitOps"})
        assert status == 200
        assert body["request"]["workload"] == "BitOps"
        validate_report_dict(body["report"])
        assert body["report"]["predicted_speedup"] > 1.0
        assert body["report"]["actual_speedup"] is not None

    def test_analyze_matches_cli_json_bytes(self, service, capsys):
        """The service's report field and ``jrpm run --json`` are the
        same serializer: byte-identical for the same request."""
        from repro.jrpm.cli import main
        _, body, _ = _request(service.port, "POST", "/analyze",
                              body={"workload": "NumHeapSort"})
        assert main(["run", "NumHeapSort", "--json"]) == 0
        cli_text = capsys.readouterr().out.strip()
        assert dumps_canonical(body["report"]) == cli_text

    def test_analyze_no_tls_stage(self, service):
        status, body, _ = _request(
            service.port, "POST", "/analyze",
            body={"workload": "BitOps", "stages": ["profile"]})
        assert status == 200
        assert body["report"]["actual_speedup"] is None
        assert body["report"]["predicted_vs_actual"] is None

    def test_analyze_rejects_bad_request(self, service):
        status, body, _ = _request(service.port, "POST", "/analyze",
                                   body={"workload": "zzz"})
        assert status == 400
        assert "unknown workload" in body["error"]

    def test_repeat_serves_from_result_cache(self, service):
        body = {"workload": "BitOps", "config": {"n_cpus": 6}}
        t0 = time.perf_counter()
        status1, first, _ = _request(service.port, "POST", "/analyze",
                                     body=body)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        status2, second, _ = _request(service.port, "POST", "/analyze",
                                      body=body)
        warm = time.perf_counter() - t0
        assert status1 == status2 == 200
        assert not first["meta"]["cached"]
        assert second["meta"]["cached"]
        assert second["report"] == first["report"]
        assert warm < cold

    def test_smoke_concurrent_duplicates_coalesce(self, service):
        """The CI smoke contract: concurrent duplicate /analyze
        requests all answer 200 and the coalesce counter moves."""
        before = service.metrics.counter("coalesced")
        results = []
        lock = threading.Lock()

        def client():
            got = _request(service.port, "POST", "/analyze",
                           body={"workload": "Huffman", "fresh": True})
            with lock:
                results.append(got)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [status for status, _, _ in results] == [200] * 8
        reports = [body["report"] for _, body, _ in results]
        assert all(r == reports[0] for r in reports)
        assert service.metrics.counter("coalesced") > before

    def test_32_concurrent_mixed_requests_zero_drops(self, service):
        """Acceptance: >= 32 concurrent mixed requests, zero dropped
        responses below the queue bound (queue_depth=64 here)."""
        mix = ["BitOps", "NumHeapSort", "Huffman", "IDEA"]
        results = []
        lock = threading.Lock()

        def client(i):
            name = mix[i % len(mix)]
            body = {"workload": name}
            if i % 8 < len(mix):  # half the traffic varies the config
                body["config"] = {"n_cpus": 4 + (i % 3)}
            got = _request(service.port, "POST", "/analyze", body=body)
            with lock:
                results.append((name, got))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        statuses = [status for _, (status, _, _) in results]
        assert statuses == [200] * 32
        for name, (_, body, _) in results:
            assert body["report"]["name"] == name
            validate_report_dict(body["report"])

    def test_metrics_exposition(self, service):
        status, text, _ = _request(service.port, "GET", "/metrics")
        assert status == 200
        assert "jrpm_requests_total" in text
        assert "jrpm_request_latency_seconds_bucket" in text
        assert "jrpm_cache_lookups_total" in text
        status, snap, _ = _request(
            service.port, "GET", "/metrics",
            headers={"Accept": "application/json"})
        assert status == 200
        assert snap["counters"]["analyze_completed"] > 0
        assert 0.0 <= snap["cache_hit_rate"] <= 1.0


class TestBackpressure:
    """429 + Retry-After beyond the queue bound, deterministic via an
    injected runner (no timing races on real pipelines)."""

    def test_sheds_with_429_and_retry_after(self):
        release = threading.Event()

        def runner(requests):
            release.wait(timeout=60)
            return [{"status": "ok", "workload": r.workload.name,
                     "report": _fake_report(r.workload.name),
                     "attempts": 1} for r in requests]

        # max_batch=1 so the dispatcher takes exactly one request at a
        # time: the three clients share a profile_key and would
        # otherwise batch, leaving fewer than two queued
        sched = RequestScheduler(runner=runner, queue_depth=2,
                                 max_batch=1)
        svc = AnalysisService(port=0, scheduler=sched).start()
        try:
            tickets = []
            lock = threading.Lock()

            def client(name):
                got = _request(svc.port, "POST", "/analyze",
                               body={"workload": name})
                with lock:
                    tickets.append(got)

            # one running + two queued fills the bound
            threads = [threading.Thread(target=client, args=(n,))
                       for n in ("BitOps", "Huffman", "IDEA")]
            for t in threads:
                t.start()
            deadline = time.monotonic() + 10
            while sched.queued < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert sched.queued == 2
            status, body, headers = _request(
                svc.port, "POST", "/analyze",
                body={"workload": "monteCarlo"})
            assert status == 429
            assert "queue is full" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            release.set()
            for t in threads:
                t.join(timeout=30)
            assert [s for s, _, _ in tickets] == [200] * 3
        finally:
            release.set()
            svc.stop()

    def test_draining_service_returns_503(self):
        svc = AnalysisService(port=0).start()
        port = svc.port
        svc.stop()  # drains and marks draining; server is closed
        status, payload, _ = svc.handle_analyze(
            _body(workload="BitOps"))
        assert status == 503
        assert "draining" in payload["error"]
        assert svc.health()[0] == 503


# ---------------------------------------------------------------------------
# HTTP-layer bugfix regressions (keep-alive drain, body cap, 504
# abandonment, Retry-After rounding) — each fails on the pre-fix code
# ---------------------------------------------------------------------------

def _blocked_runner_scheduler(release, **kwargs):
    """A scheduler whose runner blocks until ``release`` is set, then
    answers with schema-valid fake reports."""

    def runner(requests):
        release.wait(timeout=60)
        return [{"status": "ok", "workload": r.workload.name,
                 "report": _fake_report(r.workload.name),
                 "attempts": 1} for r in requests]

    return RequestScheduler(runner=runner, **kwargs)


class TestKeepAliveDrain:
    def test_404_post_with_body_keeps_connection_usable(self, service):
        """A POST to an unknown path must drain its body before the
        404: on a keep-alive connection unread body bytes would be
        parsed as the next request line (desync)."""
        before = service.metrics.to_dict()["requests"].get(
            "other_404", 0)
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=30)
        try:
            junk = json.dumps({"junk": "x" * 256}).encode()
            conn.request("POST", "/zzz", body=junk)
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            # same connection: with the body undrained these bytes
            # would land mid-stream and the exchange would not parse
            conn.request("POST", "/analyze",
                         body=json.dumps({"workload": "zzz"}).encode())
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 400
            assert "unknown workload" in payload["error"]
        finally:
            conn.close()
        # the early-return path records its request metric too
        after = service.metrics.to_dict()["requests"].get(
            "other_404", 0)
        assert after == before + 1

    def test_malformed_content_length_400_and_close(self, service):
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/analyze")
            conn.putheader("Content-Length", "banana")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert "Content-Length" in json.loads(resp.read())["error"]
            # the unread wire state is unknowable: must not keep alive
            assert resp.getheader("Connection") == "close"
        finally:
            conn.close()


class TestBodyCap:
    def test_oversized_content_length_413_without_reading(self, service):
        """A hostile Content-Length must answer 413 immediately, not
        allocate: no body is sent at all, so a pre-fix server would
        block inside rfile.read()."""
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/analyze")
            conn.putheader("Content-Length", str(1 << 30))
            conn.endheaders()
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 413
            assert "exceeds" in payload["error"]
            assert resp.getheader("Connection") == "close"
        finally:
            conn.close()
        snap = service.metrics.to_dict()
        assert snap["requests"].get("analyze_413", 0) >= 1

    def test_cap_is_configurable(self):
        release = threading.Event()
        release.set()
        sched = _blocked_runner_scheduler(release)
        svc = AnalysisService(port=0, scheduler=sched,
                              max_body_bytes=64).start()
        try:
            status, payload, _ = _request(
                svc.port, "POST", "/analyze",
                body={"workload": "x" * 128})
            assert status == 413
            # an in-bounds body still parses on a fresh connection
            status, payload, _ = _request(
                svc.port, "POST", "/analyze", body={"workload": "zz"})
            assert status == 400
        finally:
            svc.stop()


class TestTimeoutAbandonment:
    def test_504_counts_and_fresh_result_is_not_cached(self):
        release = threading.Event()
        sched = _blocked_runner_scheduler(release)
        svc = AnalysisService(port=0, scheduler=sched,
                              request_timeout=0.2).start()
        try:
            request = parse_analyze_request(
                _body(workload="BitOps", fresh=True))
            status, payload, _ = svc.handle_analyze(
                _body(workload="BitOps", fresh=True))
            assert status == 504
            assert "timed out" in payload["error"]
            assert svc.metrics.counter("request_timeouts") == 1
            assert svc.metrics.counter("requests_abandoned") == 1
            # the orphaned computation still completes...
            release.set()
            deadline = time.monotonic() + 10
            while sched.in_flight and time.monotonic() < deadline:
                time.sleep(0.005)
            deadline = time.monotonic() + 10
            while svc.metrics.counter("abandoned_results") < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            # ...is accounted on /metrics...
            snap = svc.metrics.to_dict()
            assert snap["counters"]["abandoned_results"] == 1
            assert "jrpm_abandoned_results_total 1" \
                in svc.metrics.render_prometheus()
            # ...but must NOT repopulate the result cache: the client
            # asked fresh=true and nobody received this result
            assert sched.peek(request.key) is None
        finally:
            release.set()
            svc.stop()

    def test_non_fresh_abandoned_result_still_caches(self):
        release = threading.Event()
        sched = _blocked_runner_scheduler(release)
        svc = AnalysisService(port=0, scheduler=sched,
                              request_timeout=0.2).start()
        try:
            request = parse_analyze_request(_body(workload="BitOps"))
            status, _, _ = svc.handle_analyze(_body(workload="BitOps"))
            assert status == 504
            release.set()
            deadline = time.monotonic() + 10
            while sched.peek(request.key) is None \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            # a cacheable (non-fresh) result is kept: the next repeat
            # legitimately serves it from the LRU
            assert sched.peek(request.key) is not None
        finally:
            release.set()
            svc.stop()

    def test_surviving_coalesced_waiter_keeps_entry_live(self):
        """One waiter timing out must not mark the computation
        abandoned while a coalesced twin still waits."""
        release = threading.Event()
        sched = _blocked_runner_scheduler(release)
        svc = AnalysisService(port=0, scheduler=sched,
                              request_timeout=0.3).start()
        try:
            patient = {}

            def waiter():
                ticket = sched.submit(parse_analyze_request(
                    _body(workload="BitOps", fresh=True)))
                patient["outcome"] = ticket.wait(timeout=30)

            thread = threading.Thread(target=waiter)
            thread.start()
            deadline = time.monotonic() + 10
            while not sched.in_flight \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            # this handler coalesces onto the same entry, then 504s
            status, _, _ = svc.handle_analyze(
                _body(workload="BitOps", fresh=True))
            assert status == 504
            release.set()
            thread.join(timeout=30)
            assert patient["outcome"]["status"] == "ok"
            # the patient waiter was served: not an abandoned entry
            assert svc.metrics.counter("requests_abandoned") == 0
            assert svc.metrics.counter("abandoned_results") == 0
        finally:
            release.set()
            svc.stop()


class TestRetryAfterRounding:
    def test_header_and_body_agree_and_round_up(self, monkeypatch):
        release = threading.Event()
        release.set()
        sched = _blocked_runner_scheduler(release)
        svc = AnalysisService(port=0, scheduler=sched).start()
        try:
            for estimate, expected in ((1.5, 2), (0.9, 1), (3.0, 3)):
                def fail(request, _estimate=estimate):
                    raise QueueFullError(3, _estimate)

                monkeypatch.setattr(sched, "submit", fail)
                status, payload, headers = svc.handle_analyze(
                    _body(workload="BitOps"))
                assert status == 429
                # ceil, consistently: a 1.5s estimate must not tell
                # the client to come back in 1s
                assert headers["Retry-After"] == str(expected)
                assert payload["retry_after"] == expected
        finally:
            svc.stop()


# ---------------------------------------------------------------------------
# the real daemon process: startup banner, SIGTERM drain, exit 0
# ---------------------------------------------------------------------------

class TestServeCLI:
    def test_serve_sigterm_drains_cleanly(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(
            env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
        dump = tmp_path / "metrics.json"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.jrpm.cli", "serve",
             "--port", "0", "--queue-depth", "8",
             "--metrics-dump", str(dump)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            banner = proc.stdout.readline()
            assert "jrpm-serve listening on http://" in banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0])
            status, body, _ = _request(port, "POST", "/analyze",
                                       body={"workload": "BitOps"})
            assert status == 200
            validate_report_dict(body["report"])
            assert _request(port, "GET", "/healthz")[0] == 200
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "drained and stopped" in out
            snap = json.loads(dump.read_text())
            assert snap["counters"]["analyze_completed"] >= 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
