"""Differential property tests over randomly generated programs.

The generator emits guaranteed-terminating minijava; every property
here is a whole-stack invariant: annotation transparency, optimizer
correctness, tracer event balance, and TLS timing bounds.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cfg import find_candidates
from repro.fuzz import generate_program
from repro.jit import AnnotationLevel, annotate_program, optimize_program
from repro.jrpm import Jrpm
from repro.lang import compile_source
from repro.runtime import run_program
from repro.tracer import TestDevice

seeds = st.integers(min_value=0, max_value=10_000)

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestGenerator:
    @given(seeds)
    @SLOW
    def test_generated_programs_compile_and_terminate(self, seed):
        source = generate_program(seed)
        program = compile_source(source)
        result = run_program(program, max_instructions=2_000_000)
        assert isinstance(result.return_value, int)

    @given(seeds)
    @SLOW
    def test_generation_is_deterministic(self, seed):
        assert generate_program(seed) == generate_program(seed)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_different_seeds_differ(self, seed):
        assert generate_program(seed) != generate_program(seed + 1) \
            or generate_program(seed + 1) == generate_program(seed + 2)


class TestWholeStackInvariants:
    @given(seeds)
    @SLOW
    def test_annotation_is_semantically_transparent(self, seed):
        program = compile_source(generate_program(seed))
        table = find_candidates(program)
        base = run_program(program)
        for level in (AnnotationLevel.BASE, AnnotationLevel.OPTIMIZED):
            ann = annotate_program(program, table, level)
            res = run_program(ann.program)
            assert res.return_value == base.return_value
            # annotations only ever add cycles
            assert res.cycles >= base.cycles

    @given(seeds)
    @SLOW
    def test_optimizer_preserves_semantics(self, seed):
        program = compile_source(generate_program(seed))
        base = run_program(program)
        clone = program.copy()
        optimize_program(clone)
        opt = run_program(clone)
        assert opt.return_value == base.return_value
        assert opt.instructions <= base.instructions

    @given(seeds)
    @SLOW
    def test_tracer_event_balance(self, seed):
        program = compile_source(generate_program(seed))
        table = find_candidates(program)
        ann = annotate_program(program, table)
        device = TestDevice()
        for lid, cand in ann.annotated_loops.items():
            device.register_loop_locals(lid, cand.tracked_locals)
        run_program(ann.program, listener=device)
        device.finish()   # raises if any activation is unbalanced
        for stats in device.stats.values():
            assert stats.threads >= stats.entries >= 1
            assert stats.arcs_prev <= max(
                0, stats.profiled_threads - stats.profiled_entries)

    @given(seeds)
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_full_pipeline_bounds(self, seed):
        source = generate_program(seed)
        rep = Jrpm(source=source, name="fuzz-%d" % seed).run()
        assert 0.0 <= rep.coverage <= 1.0
        assert rep.predicted_speedup >= 1.0
        # the TLS replay of a selection can disappoint but not explode
        assert 0.1 < rep.actual_speedup <= 4.5
        assert rep.sequential.return_value \
            == rep.profiled.return_value
