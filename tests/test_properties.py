"""Property-based tests (hypothesis) over core invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bytecode import BinOp
from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import CFG, Block, build_cfg
from repro.cfg.natural_loops import find_loops
from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.hydra import HydraConfig
from repro.lang import compile_source, parse, tokenize
from repro.lang.tokens import TokKind
from repro.runtime import run_program
from repro.runtime.values import apply_binop, java_div, java_mod
from repro.tls import EntryTrace, ThreadEvent, ThreadTrace, simulate_stl
from repro.tracer import (
    StoreTimestampFIFO,
    arc_limited_speedup,
    estimate_speedup,
)
from repro.tracer.stats import STLStats

# ---------------------------------------------------------------- lexer

idents = st.text(alphabet=string.ascii_lowercase, min_size=1,
                 max_size=8).filter(
    lambda s: s not in ("func", "var", "if", "else", "while", "for",
                        "return", "break", "continue", "print"))


@given(st.lists(st.one_of(
    idents,
    st.integers(min_value=0, max_value=10**9).map(str),
    st.sampled_from(["+", "-", "*", "/", "<=", ">=", "==", "!=", "&&",
                     "||", "<<", ">>", "(", ")", "[", "]", ";", ","]),
), min_size=0, max_size=30))
def test_lexer_roundtrip_token_texts(pieces):
    """Lexing space-joined tokens yields exactly those tokens back."""
    source = " ".join(pieces)
    toks = tokenize(source)
    assert toks[-1].kind is TokKind.EOF
    assert [t.text for t in toks[:-1]] == pieces


@given(st.integers(min_value=0, max_value=2**31))
def test_lexer_integer_values(n):
    tok = tokenize(str(n))[0]
    assert tok.kind is TokKind.INT
    assert int(tok.text) == n


# ------------------------------------------------------------ arithmetic

ints = st.integers(min_value=-10**6, max_value=10**6)


@given(ints, ints.filter(lambda x: x != 0))
def test_java_div_mod_identity(a, b):
    """a == (a / b) * b + (a % b), always."""
    assert java_div(a, b) * b + java_mod(a, b) == a


@given(ints, ints.filter(lambda x: x != 0))
def test_java_mod_sign_follows_dividend(a, b):
    m = java_mod(a, b)
    assert abs(m) < abs(b)
    if m != 0:
        assert (m > 0) == (a > 0)


@given(ints, ints)
def test_comparisons_are_booleans(a, b):
    for op in (BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE, BinOp.EQ,
               BinOp.NE):
        assert apply_binop(op, a, b) in (0, 1)


@given(ints, ints)
def test_expression_compilation_matches_python(a, b):
    """Compiled arithmetic agrees with Python on the same formula."""
    src = "func main() { var a = %d; var b = %d; " \
          "return a * 3 + b - (a - b) * 2; }" % (a, b)
    expect = a * 3 + b - (a - b) * 2
    assert run_program(compile_source(src)).return_value == expect


# ------------------------------------------------------------------ CFG

@st.composite
def random_cfgs(draw):
    """Random well-formed CFGs: every block ends JMP/BR/RET, targets
    in range, entry = 0."""
    n = draw(st.integers(min_value=1, max_value=10))
    blocks = {}
    for bid in range(n):
        kind = draw(st.sampled_from(["jmp", "br", "ret"]))
        if kind == "jmp":
            term = Instr(Op.JMP, a=draw(
                st.integers(min_value=0, max_value=n - 1)))
        elif kind == "br":
            term = Instr(Op.BR, a=0,
                         b=draw(st.integers(min_value=0, max_value=n - 1)),
                         c=draw(st.integers(min_value=0, max_value=n - 1)))
        else:
            term = Instr(Op.RET)
        blocks[bid] = Block(bid, [Instr(Op.NOP), term])
    fn_template = compile_source("func main() { return 0; }").main
    return CFG("main", blocks, entry=0, template=fn_template)


@given(random_cfgs())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_dominator_invariants_on_random_cfgs(cfg):
    dom = compute_dominators(cfg)
    reachable = cfg.reachable()
    assert set(dom.idom) == reachable
    for bid in reachable:
        assert dom.dominates(cfg.entry, bid)
        assert dom.dominates(bid, bid)
        if bid != cfg.entry:
            idom = dom.idom[bid]
            assert idom is not None
            # the immediate dominator is a predecessor-closed dominator
            assert dom.dominates(idom, bid)


@given(random_cfgs())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_natural_loop_invariants_on_random_cfgs(cfg):
    forest = find_loops(cfg)
    for lp in forest.loops:
        assert lp.header in lp.blocks
        for latch in lp.back_edge_sources:
            assert latch in lp.blocks
        if lp.parent is not None:
            assert lp.blocks < lp.parent.blocks
            assert lp.depth == lp.parent.depth + 1


# ----------------------------------------------------------- interpreter

@given(st.integers(min_value=0, max_value=40),
       st.integers(min_value=1, max_value=20))
def test_interpreter_loop_determinism(n, step):
    src = ("func main() { var s = 0; "
           "for (var i = 0; i < %d; i = i + %d) { s = s + i; } "
           "return s; }" % (n, step))
    expect = sum(range(0, n, step))
    r1 = run_program(compile_source(src))
    r2 = run_program(compile_source(src))
    assert r1.return_value == expect
    assert (r1.cycles, r1.instructions) == (r2.cycles, r2.instructions)


# ---------------------------------------------------------- timestamps

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                          st.integers(min_value=0, max_value=10**6)),
                min_size=0, max_size=200),
       st.integers(min_value=1, max_value=16))
def test_fifo_agrees_with_bounded_reference(ops, capacity):
    """The FIFO behaves like an unbounded dict restricted to the last
    `capacity` distinct addresses."""
    fifo = StoreTimestampFIFO(capacity)
    reference = {}
    order = []
    for addr, ts in ops:
        fifo.record(addr, ts)
        reference[addr] = ts
        if addr in order:
            order.remove(addr)
        order.append(addr)
        order = order[-capacity:]
    for addr, ts in reference.items():
        if addr in order:
            assert fifo.lookup(addr) == ts
        else:
            assert fifo.lookup(addr) is None


# ------------------------------------------------------------- estimator

@given(st.integers(min_value=1, max_value=10**6),
       st.integers(min_value=1, max_value=10**4),
       st.integers(min_value=0, max_value=10**4),
       st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=0, max_value=10**4))
def test_estimator_bounds(cycles, threads, arcs, arc_len, overflow):
    st_ = STLStats(0)
    st_.cycles = cycles
    st_.threads = threads
    st_.entries = 1
    st_.profiled_threads = threads
    st_.profiled_entries = 1
    st_.arcs_prev = min(arcs, max(threads - 1, 0))
    st_.arc_len_prev = arc_len if st_.arcs_prev else 0
    st_.overflow_threads = min(overflow, threads)
    est = estimate_speedup(st_)
    assert 0.0 < est.speedup <= 4.0
    assert est.base_speedup >= 1.0


@given(st.floats(min_value=1.0, max_value=10**6),
       st.floats(min_value=0.0, max_value=10**6),
       st.sampled_from([1, 2]),
       st.sampled_from([2, 4, 8]))
def test_arc_limited_speedup_bounds(size, arc, span, cpus):
    s = arc_limited_speedup(size, arc, span, cpus)
    assert 1.0 <= s <= cpus


# ------------------------------------------------------------------ TLS

@given(st.lists(st.integers(min_value=10, max_value=500),
                min_size=1, max_size=40))
@settings(max_examples=60)
def test_tls_independent_threads_bounds(sizes):
    """speedup within [1/(1+overheads), p] and parallel time at least
    the critical path."""
    from tests.test_tls import dummy_compilation

    threads = [ThreadTrace(size, []) for size in sizes]
    entry = EntryTrace(threads, sum(sizes), frame_id=0)
    res = simulate_stl(dummy_compilation(), [entry])
    config = HydraConfig()
    assert res.violations == 0
    assert res.parallel_cycles >= max(sizes)
    assert res.parallel_cycles >= (
        config.startup_overhead + config.shutdown_overhead)
    assert res.speedup <= config.n_cpus + 1e-9


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=90),    # store offset
    st.integers(min_value=0, max_value=90)),   # load offset
    min_size=2, max_size=20))
@settings(max_examples=60)
def test_tls_dependencies_never_break_causality(pairs):
    """However stores/loads interleave, every consumer load must end up
    at or after its producer's store time."""
    from tests.test_tls import dummy_compilation

    threads = []
    for s_off, l_off in pairs:
        events = [ThreadEvent(l_off, "ld", 0x4000),
                  ThreadEvent(s_off, "st", 0x4000)]
        events.sort(key=lambda e: e.rel_cycle)
        threads.append(ThreadTrace(100, events))
    entry = EntryTrace(threads, 100 * len(threads), frame_id=0)
    res = simulate_stl(dummy_compilation(), [entry])
    assert res.parallel_cycles > 0
    assert res.violations >= 0
