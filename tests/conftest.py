"""Shared fixtures for the test suite."""

from __future__ import annotations

import json
import os

import pytest

from repro.conformance.campaign import DEFAULT_FUZZ_SEED
from repro.jrpm import Jrpm
from repro.lang import compile_source

HERE = os.path.dirname(__file__)


def _test_seed() -> int:
    """The suite's base fuzz seed: ``$JRPM_TEST_SEED`` overrides the
    built-in default, so a CI failure replays locally by exporting the
    seed the job printed."""
    return int(os.environ.get("JRPM_TEST_SEED", DEFAULT_FUZZ_SEED))


@pytest.fixture(scope="session")
def fuzz_seed() -> int:
    """Base seed for every seeded-randomness test in the suite.

    All generated-program tests derive their seeds from this one
    fixture; on failure the replay hint below names the exact
    ``jrpm conform`` invocation that reproduces the program outside
    pytest."""
    return _test_seed()


@pytest.fixture
def synth_replay(request):
    """Recorder for tests that exercise synthetic instances: call it
    with each workload under test, and a failure's report names the
    family and the exact ``jrpm synth`` invocation (family, seed,
    per-family count) that regenerates the failing program."""
    def record(workload):
        hints = getattr(request.node, "_synth_replays", None)
        if hints is None:
            hints = []
            request.node._synth_replays = hints
        hint = "%s: %s" % (workload.name, workload.replay_hint())
        if hint not in hints:
            hints.append(hint)
    return record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach a replay recipe to any failing test that consumed the
    shared seed (or synthetic instances), so seeded failures are
    reproducible from the log."""
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    if "fuzz_seed" in getattr(item, "fixturenames", ()):
        seed = _test_seed()
        report.sections.append((
            "seed replay",
            "base seed %d (JRPM_TEST_SEED overrides); replay a "
            "program with: jrpm conform --fuzz 1 --seed %d"
            % (seed, seed)))
    synth_hints = getattr(item, "_synth_replays", None)
    if synth_hints:
        report.sections.append((
            "synthetic replay",
            "regenerate the instance(s) under test (the failing one "
            "is the last each command emits):\n"
            + "\n".join(synth_hints)))

#: a small nest: parallel init loop, reduction loop, nested matrix loop
NEST_SOURCE = """
func main() {
  var a = array(64);
  var s = 0;
  for (var i = 0; i < 8; i = i + 1) {
    for (var j = 0; j < 8; j = j + 1) {
      a[i * 8 + j] = i + j;
    }
  }
  for (var k = 0; k < 64; k = k + 1) {
    s = s + a[k];
  }
  return s;
}
"""

#: the paper's Figure 3 loop shape: outer symbol loop, inner bit chase
HUFFMAN_SOURCE = """
func main() {
  var tree_left = array(32);
  var tree_right = array(32);
  var tree_char = array(32);
  var bits = array(2048);
  var out = array(2048);
  for (var n = 0; n < 32; n = n + 1) {
    if (n < 15) {
      tree_left[n] = 2 * n + 1;
      tree_right[n] = 2 * n + 2;
    } else {
      tree_left[n] = -1;
      tree_right[n] = -1;
    }
    tree_char[n] = n % 61;
  }
  var seed = 12345;
  for (var b = 0; b < 2048; b = b + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    bits[b] = (seed >> 16) & 1;
  }
  var in_p = 0;
  var out_p = 0;
  while (in_p < 2040) {
    var node = 0;
    while (tree_left[node] != -1) {
      if (bits[in_p] == 0) { node = tree_left[node]; }
      else { node = tree_right[node]; }
      in_p = in_p + 1;
    }
    out[out_p] = tree_char[node];
    out_p = out_p + 1;
  }
  return out_p;
}
"""


@pytest.fixture(scope="session")
def nest_program():
    """Compiled NEST_SOURCE program."""
    return compile_source(NEST_SOURCE)


@pytest.fixture(scope="session")
def huffman_report():
    """Full pipeline report for the Huffman-shaped nest (expensive;
    shared across the suite)."""
    return Jrpm(source=HUFFMAN_SOURCE, name="huffman-nest").run()


@pytest.fixture(scope="session")
def goldens():
    """Recorded reference outputs for every workload."""
    with open(os.path.join(HERE, "goldens.json")) as handle:
        return json.load(handle)
