"""Columnar trace engine: equivalence with the legacy row path and
determinism of the memoized kernels.

The columnar pipeline (``ColumnarRecording`` -> zero-copy
``ThreadView`` windows -> ``TraceEngine`` memoized kernels) must be an
invisible substitution for the row-of-tuples path — byte-identical
traces, identical splits, and identical TLS results, with the memo
layer changing only wall-clock, never outcomes.
"""

import pytest

from repro.cfg import find_candidates
from repro.errors import SimulationError
from repro.hydra import HydraConfig
from repro.jit import annotate_program, compile_stl
from repro.jrpm import Jrpm
from repro.lang import compile_source
from repro.runtime import run_program
from repro.runtime.events import (
    ColumnarRecording,
    MulticastListener,
    RecordingListener,
)
from repro.tls import (
    ThreadView,
    TraceEngine,
    simulate_stl,
    split_trace,
)

from tests.conftest import HUFFMAN_SOURCE, NEST_SOURCE


def _record_both(source):
    """One traced run feeding both trace layouts simultaneously."""
    program = compile_source(source)
    table = find_candidates(program)
    ann = annotate_program(program, table)
    legacy = RecordingListener()
    columnar = ColumnarRecording()
    run_program(ann.program,
                listener=MulticastListener([legacy, columnar]))
    return table, legacy, columnar


def _windowable_loops(table, recording):
    loops = []
    for lid in sorted(table.by_id):
        try:
            if split_trace(recording, lid):
                loops.append(lid)
        except SimulationError:
            continue
    return loops


@pytest.fixture(scope="module", params=[NEST_SOURCE, HUFFMAN_SOURCE],
                ids=["nest", "huffman-nest"])
def both_layouts(request):
    return _record_both(request.param)


class TestRecordingEquivalence:
    def test_event_streams_identical(self, both_layouts):
        _, legacy, columnar = both_layouts
        assert len(columnar) == len(legacy.mem)
        assert list(columnar.events()) == list(legacy.mem)

    def test_marks_identical(self, both_layouts):
        _, legacy, columnar = both_layouts
        assert columnar.marks == legacy.marks

    def test_cycles_column_sorted(self, both_layouts):
        """The invariant zero-copy windowing bisects on."""
        _, _, columnar = both_layouts
        cycles = columnar.cycles
        assert all(cycles[i] <= cycles[i + 1]
                   for i in range(len(cycles) - 1))


class TestSplitEquivalence:
    def test_windows_and_events_identical(self, both_layouts):
        table, legacy, columnar = both_layouts
        loops = _windowable_loops(table, columnar)
        assert loops  # the sources above all have windowable loops
        for lid in loops:
            rows = split_trace(legacy, lid)
            views = split_trace(columnar, lid)
            assert len(rows) == len(views)
            for er, ev in zip(rows, views):
                assert er.total_cycles == ev.total_cycles
                assert er.frame_id == ev.frame_id
                assert len(er.threads) == len(ev.threads)
                for tr, tv in zip(er.threads, ev.threads):
                    assert tr.size == tv.size
                    assert tr.events == tv.events

    def test_views_are_zero_copy(self, both_layouts):
        table, _, columnar = both_layouts
        lid = _windowable_loops(table, columnar)[0]
        for entry in split_trace(columnar, lid):
            for view in entry.threads:
                assert isinstance(view, ThreadView)
                assert view.recording is columnar
                assert 0 <= view.lo <= view.hi <= len(columnar)


class TestSimulationEquivalence:
    SWEEP = [HydraConfig(),
             HydraConfig(n_cpus=2, store_buffer_lines=16),
             HydraConfig(n_cpus=8, load_buffer_lines=64,
                         load_buffer_assoc=2)]

    def test_engine_matches_row_path(self, both_layouts):
        table, legacy, columnar = both_layouts
        engine = TraceEngine(columnar)
        for config in self.SWEEP:
            for lid in _windowable_loops(table, columnar):
                comp = compile_stl(table.by_id[lid], config)
                rows = simulate_stl(
                    comp, split_trace(legacy, lid), config)
                cols = engine.simulate(comp, config)
                assert vars(rows) == vars(cols), (lid, config)

    def test_pipeline_outcomes_identical(self):
        reports = {
            columnar: Jrpm(source=HUFFMAN_SOURCE, name="hn",
                           columnar=columnar).run()
            for columnar in (False, True)
        }
        legacy, engine = reports[False], reports[True]
        assert engine.engine is not None and legacy.engine is None
        assert set(legacy.tls_results) == set(engine.tls_results)
        for lid, rows in legacy.tls_results.items():
            assert vars(rows) == vars(engine.tls_results[lid])
        assert legacy.outcome.actual_normalized_time == \
            engine.outcome.actual_normalized_time
        assert legacy.outcome.predicted_normalized_time == \
            engine.outcome.predicted_normalized_time


class TestMemoDeterminism:
    def test_repeat_config_hits_and_matches(self, both_layouts):
        table, _, columnar = both_layouts
        engine = TraceEngine(columnar)
        config = HydraConfig()
        loops = _windowable_loops(table, columnar)
        first = {}
        for lid in loops:
            comp = compile_stl(table.by_id[lid], config)
            first[lid] = engine.simulate(comp, config)
        before = engine.stats.snapshot()
        for lid in loops:
            comp = compile_stl(table.by_id[lid], config)
            again = engine.simulate(comp, config)
            assert vars(again) == vars(first[lid])
        after = engine.stats.snapshot()
        # the second pass must be served entirely from the memos
        for kernel in ("split", "classify", "overflow"):
            assert after[kernel]["hits"] > before[kernel]["hits"]
            assert after[kernel]["misses"] == before[kernel]["misses"]

    def test_config_key_projection_shares_kernels(self, both_layouts):
        """Configs differing only in fields a kernel ignores reuse it:
        classification ignores the config entirely, overflow ignores
        everything but the Table 1 buffer geometry."""
        table, _, columnar = both_layouts
        engine = TraceEngine(columnar)
        lid = _windowable_loops(table, columnar)[0]
        base = HydraConfig()
        engine.simulate(compile_stl(table.by_id[lid], base), base)
        misses = engine.stats.snapshot()
        # same geometry, different overheads/cpus -> all kernels hit
        tweaked = HydraConfig(n_cpus=2, store_load_comm_overhead=99)
        engine.simulate(compile_stl(table.by_id[lid], tweaked), tweaked)
        after = engine.stats.snapshot()
        for kernel in ("split", "classify", "overflow"):
            assert after[kernel]["misses"] == misses[kernel]["misses"]
        # shrunk store buffer -> overflow recomputes, classify still hits
        shrunk = HydraConfig(store_buffer_lines=4)
        engine.simulate(compile_stl(table.by_id[lid], shrunk), shrunk)
        final = engine.stats.snapshot()
        assert final["overflow"]["misses"] > after["overflow"]["misses"]
        assert final["classify"]["misses"] == after["classify"]["misses"]

    def test_engine_rejects_row_recording(self):
        with pytest.raises(SimulationError):
            TraceEngine(RecordingListener())
