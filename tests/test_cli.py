"""Tests for the ``jrpm`` command-line interface."""

import pytest

from repro.jrpm.cli import main


class TestCLI:
    def test_list_shows_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Huffman", "moldyn", "mp3"):
            assert name in out
        assert len(out.strip().splitlines()) == 26

    def test_run_workload_by_name(self, capsys):
        assert main(["run", "IDEA"]) == 0
        out = capsys.readouterr().out
        assert "Jrpm report: IDEA" in out
        assert "predicted speedup" in out
        assert "actual speedup" in out

    def test_run_source_file(self, tmp_path, capsys):
        path = tmp_path / "prog.mj"
        path.write_text(
            "func main() { var s = 0; "
            "for (var i = 0; i < 50; i = i + 1) { s = s + i; } "
            "return s; }")
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "prog.mj" in out

    def test_run_no_tls(self, capsys):
        assert main(["run", "IDEA", "--no-tls"]) == 0
        out = capsys.readouterr().out
        assert "actual speedup" not in out

    def test_run_extended_prints_profiles(self, capsys):
        assert main(["run", "Huffman", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "Dependency profile" in out

    def test_unknown_workload_fails_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "not-a-workload"])
        assert "unknown workload" in str(exc.value)
