"""Tests for the ``jrpm`` command-line interface."""

import pytest

from repro.jrpm.cli import main


class TestCLI:
    def test_list_shows_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Huffman", "moldyn", "mp3"):
            assert name in out
        assert len(out.strip().splitlines()) == 26

    def test_run_workload_by_name(self, capsys):
        assert main(["run", "IDEA"]) == 0
        out = capsys.readouterr().out
        assert "Jrpm report: IDEA" in out
        assert "predicted speedup" in out
        assert "actual speedup" in out

    def test_run_source_file(self, tmp_path, capsys):
        path = tmp_path / "prog.mj"
        path.write_text(
            "func main() { var s = 0; "
            "for (var i = 0; i < 50; i = i + 1) { s = s + i; } "
            "return s; }")
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "prog.mj" in out

    def test_run_no_tls(self, capsys):
        assert main(["run", "IDEA", "--no-tls"]) == 0
        out = capsys.readouterr().out
        assert "actual speedup" not in out

    def test_run_extended_prints_profiles(self, capsys):
        assert main(["run", "Huffman", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "Dependency profile" in out

    def test_unknown_workload_fails_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "not-a-workload"])
        assert "unknown workload" in str(exc.value)

    def test_fleet_with_timeout_and_retries(self, tmp_path, capsys):
        assert main(["fleet", "--workloads", "IDEA,monteCarlo",
                     "--no-tls", "--cache-dir", str(tmp_path),
                     "--timeout", "60", "--retries", "1"]) == 0
        out = capsys.readouterr().out
        assert "IDEA" in out and "monteCarlo" in out
        assert "corrupt" in out  # cache counter line
        # a clean run survives no faults, so no fault line is printed
        assert "faults survived" not in out

    def test_fleet_rejects_bad_fault_flags(self):
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--timeout", "0"])
        assert "--timeout" in str(exc.value)
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--retries", "-2"])
        assert "--retries" in str(exc.value)


class TestJsonOutput:
    def test_run_json_is_canonical_and_valid(self, capsys):
        import json

        from repro.jrpm import (
            REPORT_SCHEMA_VERSION,
            dumps_canonical,
            validate_report_dict,
        )

        assert main(["run", "IDEA", "--json"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        validate_report_dict(data)
        assert data["name"] == "IDEA"
        assert data["schema_version"] == REPORT_SCHEMA_VERSION
        # the canonical encoding, byte for byte
        assert out == dumps_canonical(data) + "\n"

    def test_run_json_suppresses_text_report(self, capsys):
        assert main(["run", "BitOps", "--no-tls", "--json"]) == 0
        out = capsys.readouterr().out
        assert "Jrpm report:" not in out
        assert "predicted speedup" not in out

    def test_fleet_json_embeds_run_json_reports(self, capsys):
        import json

        from repro.jrpm import dumps_canonical, validate_report_dict

        assert main(["fleet", "--workloads", "IDEA,monteCarlo",
                     "--no-tls", "--json"]) == 0
        fleet_out = capsys.readouterr().out
        data = json.loads(fleet_out)
        assert fleet_out == dumps_canonical(data) + "\n"
        assert [r["workload"] for r in data["rows"]] \
            == ["IDEA", "monteCarlo"]
        for row in data["rows"]:
            assert row["ok"]
            validate_report_dict(row["report"])
        # satellite contract: the embedded report is byte-identical to
        # what `jrpm run <name> --no-tls --json` prints
        assert main(["run", "IDEA", "--no-tls", "--json"]) == 0
        run_out = capsys.readouterr().out
        assert dumps_canonical(data["rows"][0]["report"]) + "\n" \
            == run_out


class TestCacheCommand:
    def _populate(self, cache_dir):
        assert main(["fleet", "--workloads", "IDEA", "--no-tls",
                     "--cache-dir", str(cache_dir)]) == 0

    def test_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "4 blobs" in out  # 4 pipeline stages for one workload
        assert "profile" in out

    def test_stats_json(self, tmp_path, capsys):
        import json

        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["blobs"] == 4
        assert data["quarantined"] == 0
        assert set(data["stages"])  # per-stage breakdown present

    def test_verify_clean_then_corrupt(self, tmp_path, capsys):
        import os

        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "4 ok, 0 corrupt" in capsys.readouterr().out

        # truncate one blob: verify detects it, quarantines it, exits 1
        victim = sorted(p for p in os.listdir(tmp_path)
                        if p.endswith(".pkl"))[0]
        path = os.path.join(str(tmp_path), victim)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "[quarantined]" in out
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")

    def test_verify_no_quarantine_leaves_file(self, tmp_path, capsys):
        import os

        self._populate(tmp_path)
        victim = sorted(p for p in os.listdir(tmp_path)
                        if p.endswith(".pkl"))[0]
        path = os.path.join(str(tmp_path), victim)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        assert main(["cache", "verify", "--cache-dir", str(tmp_path),
                     "--no-quarantine"]) == 1
        assert os.path.exists(path)

    def test_purge(self, tmp_path, capsys):
        import os

        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "purge", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "purged 4 file(s)" in out
        assert not [p for p in os.listdir(tmp_path)
                    if p.endswith(".pkl")]

    def test_purge_keep_quarantined(self, tmp_path, capsys):
        import os

        self._populate(tmp_path)
        victim = sorted(p for p in os.listdir(tmp_path)
                        if p.endswith(".pkl"))[0]
        path = os.path.join(str(tmp_path), victim)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 1
        capsys.readouterr()
        assert main(["cache", "purge", "--cache-dir", str(tmp_path),
                     "--keep-quarantined"]) == 0
        assert "purged 3 file(s)" in capsys.readouterr().out
        assert os.path.exists(path + ".corrupt")

    def test_missing_directory_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "stats", "--cache-dir",
                  str(tmp_path / "nope")])


class TestCacheQuarantineSweep:
    def _corrupt_and_verify(self, tmp_path):
        import os

        assert main(["fleet", "--workloads", "IDEA", "--no-tls",
                     "--cache-dir", str(tmp_path)]) == 0
        victim = sorted(p for p in os.listdir(tmp_path)
                        if p.endswith(".pkl"))[0]
        path = os.path.join(str(tmp_path), victim)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 1
        return path

    def test_second_verify_reports_earlier_quarantine(self, tmp_path,
                                                      capsys):
        self._corrupt_and_verify(tmp_path)
        capsys.readouterr()
        # the corrupt blob is gone, so the sweep itself passes — but
        # the evidence file from the first verify is surfaced
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 ok, 0 corrupt" in out
        assert "from an earlier verify" in out
        assert ".pkl.corrupt" in out

    def test_purge_corrupt_only_keeps_good_blobs(self, tmp_path,
                                                 capsys):
        import os

        quarantined = self._corrupt_and_verify(tmp_path) + ".corrupt"
        assert os.path.exists(quarantined)
        capsys.readouterr()
        assert main(["cache", "purge", "--cache-dir", str(tmp_path),
                     "--corrupt-only"]) == 0
        out = capsys.readouterr().out
        assert "purged 1 quarantined file(s)" in out
        assert not os.path.exists(quarantined)
        # the three healthy blobs survive
        assert len([p for p in os.listdir(tmp_path)
                    if p.endswith(".pkl")]) == 3


class TestConformCommand:
    def test_fuzz_only_json_document(self, tmp_path, capsys,
                                     fuzz_seed):
        import json

        assert main(["conform", "--skip-oracle", "--fuzz", "4",
                     "--seed", str(fuzz_seed),
                     "--repro-dir", str(tmp_path / "repros"),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "conformance"
        assert "oracle" not in doc
        assert doc["campaign"]["base_seed"] == fuzz_seed
        assert doc["campaign"]["checked"] == 4
        assert doc["violations"] == []

    def test_oracle_subset_passes_gate(self, capsys):
        assert main(["conform", "--workloads", "MipsSimulator"]) == 0
        out = capsys.readouterr().out
        assert "MipsSimulator" in out
        assert "max error" in out

    def test_tight_bound_trips_gate(self, capsys):
        assert main(["conform", "--workloads", "MipsSimulator",
                     "--error-bound", "0.0001"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "exceeds the 0.0%" in out

    def test_report_file_written(self, tmp_path, capsys, fuzz_seed):
        import json

        report = tmp_path / "conformance.json"
        assert main(["conform", "--skip-oracle", "--fuzz", "2",
                     "--seed", str(fuzz_seed),
                     "--repro-dir", str(tmp_path / "repros"),
                     "--report", str(report)]) == 0
        doc = json.loads(report.read_text())
        assert doc["kind"] == "conformance"
        assert doc["campaign"]["checked"] == 2

    def test_update_goldens_roundtrip(self, tmp_path, capsys):
        import json
        import shutil

        # regenerating a copy of the committed corpus must reproduce
        # it byte for byte (the generated-only guarantee, CLI-level)
        copy = tmp_path / "goldens.json"
        shutil.copy("tests/goldens.json", copy)
        before = copy.read_bytes()
        assert main(["conform", "--update-goldens",
                     "--goldens", str(copy)]) == 0
        out = capsys.readouterr().out
        assert "regenerated" in out
        assert copy.read_bytes() == before
        assert json.loads(before.decode())["_meta"]["version"] >= 2

    def test_unknown_workload_fails_cleanly(self):
        with pytest.raises(SystemExit):
            main(["conform", "--workloads", "NoSuchThing"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["conform", "--jobs", "0"])
