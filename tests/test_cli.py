"""Tests for the ``jrpm`` command-line interface."""

import pytest

from repro.jrpm.cli import main


class TestCLI:
    def test_list_shows_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Huffman", "moldyn", "mp3"):
            assert name in out
        assert len(out.strip().splitlines()) == 26

    def test_run_workload_by_name(self, capsys):
        assert main(["run", "IDEA"]) == 0
        out = capsys.readouterr().out
        assert "Jrpm report: IDEA" in out
        assert "predicted speedup" in out
        assert "actual speedup" in out

    def test_run_source_file(self, tmp_path, capsys):
        path = tmp_path / "prog.mj"
        path.write_text(
            "func main() { var s = 0; "
            "for (var i = 0; i < 50; i = i + 1) { s = s + i; } "
            "return s; }")
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "prog.mj" in out

    def test_run_no_tls(self, capsys):
        assert main(["run", "IDEA", "--no-tls"]) == 0
        out = capsys.readouterr().out
        assert "actual speedup" not in out

    def test_run_extended_prints_profiles(self, capsys):
        assert main(["run", "Huffman", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "Dependency profile" in out

    def test_unknown_workload_fails_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "not-a-workload"])
        assert "unknown workload" in str(exc.value)

    def test_fleet_with_timeout_and_retries(self, tmp_path, capsys):
        assert main(["fleet", "--workloads", "IDEA,monteCarlo",
                     "--no-tls", "--cache-dir", str(tmp_path),
                     "--timeout", "60", "--retries", "1"]) == 0
        out = capsys.readouterr().out
        assert "IDEA" in out and "monteCarlo" in out
        assert "corrupt" in out  # cache counter line
        # a clean run survives no faults, so no fault line is printed
        assert "faults survived" not in out

    def test_fleet_rejects_bad_fault_flags(self):
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--timeout", "0"])
        assert "--timeout" in str(exc.value)
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--retries", "-2"])
        assert "--retries" in str(exc.value)
