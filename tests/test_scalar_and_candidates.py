"""Unit tests for scalar dependence analysis and STL candidates."""

from repro.cfg import DepClass, find_candidates
from repro.lang import compile_source


def classes_of(source, loop_index=0):
    """Classes of the loop_index-th candidate of main(), by slot name."""
    program = compile_source(source)
    table = find_candidates(program)
    cand = table.by_function["main"].candidates[loop_index]
    fn = program.main
    return {fn.slot_name(s): c for s, c in cand.scalar.classes.items()}, \
        cand


class TestClassification:
    def test_simple_inductor(self):
        classes, _ = classes_of(
            "func main() { var s = 0; "
            "for (var i = 0; i < 9; i = i + 1) { s = s + i; } "
            "return s; }")
        assert classes["i"] is DepClass.INDUCTOR

    def test_sum_reduction(self):
        classes, _ = classes_of(
            "func main() { var s = 0; var a = array(4); "
            "for (var i = 0; i < 4; i = i + 1) { s = s + a[i]; } "
            "return s; }")
        assert classes["s"] is DepClass.REDUCTION

    def test_downward_inductor(self):
        classes, _ = classes_of(
            "func main() { var s = 0; "
            "for (var i = 9; i > 0; i = i - 1) { s = s + i; } "
            "return s; }")
        assert classes["i"] is DepClass.INDUCTOR

    def test_conditional_increment_is_carried(self):
        classes, _ = classes_of(
            "func main() { var n = 0; "
            "for (var i = 0; i < 9; i = i + 1) { "
            "  if (i % 2) { n = n + 2; } else { n = n + 1; } } "
            "return n; }")
        # two defs of n -> not a single-update inductor; both are
        # reduction-shaped adds, so n is a reduction
        assert classes["n"] is DepClass.REDUCTION

    def test_reduction_read_elsewhere_is_carried(self):
        classes, _ = classes_of(
            "func main() { var s = 0; var a = array(16); "
            "for (var i = 0; i < 9; i = i + 1) { "
            "  s = s + i; a[s % 16] = i; } "
            "return s; }")
        assert classes["s"] is DepClass.CARRIED

    def test_variable_step_is_carried(self):
        classes, _ = classes_of(
            "func main() { var x = 1; "
            "for (var i = 0; i < 9; i = i + 1) { x = x + i; } "
            "return x; }")
        # x += i is reduction-shaped (sum of loop-varying values)
        assert classes["x"] is DepClass.REDUCTION

    def test_pointer_chase_is_carried(self):
        classes, _ = classes_of(
            "func main() { var a = array(16); var p = 0; "
            "while (p < 10) { p = a[p] + p + 1; } return p; }")
        assert classes["p"] is DepClass.CARRIED

    def test_inductor_in_nested_loop_is_carried_for_outer(self):
        # in_p-style: incremented inside the inner loop, so for the
        # outer loop it moves a variable amount per iteration
        src = """
        func main() {
          var a = array(64);
          var p = 0;
          for (var i = 0; i < 8; i = i + 1) {
            for (var j = 0; j < 4; j = j + 1) {
              a[p % 64] = i;
              p = p + 1;
            }
          }
          return p;
        }
        """
        classes_outer, cand = classes_of(src, loop_index=0)
        # find the outer loop (depth 1)
        program = compile_source(src)
        table = find_candidates(program)
        cands = table.by_function["main"].candidates
        outer = [c for c in cands if c.depth == 1][0]
        inner = [c for c in cands if c.depth == 2][0]
        fn = program.main
        oc = {fn.slot_name(s): c for s, c in outer.scalar.classes.items()}
        ic = {fn.slot_name(s): c for s, c in inner.scalar.classes.items()}
        assert oc["p"] is DepClass.CARRIED
        assert ic["p"] is DepClass.INDUCTOR


class TestCandidates:
    def test_serializing_pointer_chase_excluded(self):
        program = compile_source(
            "func main() { var a = array(16); var p = 0; "
            "while (p < 10) { p = a[p] + 1; } return p; }")
        table = find_candidates(program)
        cands = table.by_function["main"].candidates
        assert len(cands) == 1
        assert cands[0].excluded

    def test_normal_loops_kept(self, nest_program):
        table = find_candidates(nest_program)
        assert all(not c.excluded for c in table.candidates())
        assert table.loop_count == 3

    def test_loop_ids_globally_unique_and_dense(self, nest_program):
        table = find_candidates(nest_program)
        ids = sorted(table.by_id)
        assert ids == list(range(len(ids)))

    def test_nesting_links(self, nest_program):
        table = find_candidates(nest_program)
        cands = table.candidates()
        children = [c for c in cands if c.parent_id >= 0]
        assert len(children) == 1
        parent = table.by_id[children[0].parent_id]
        assert children[0].loop_id in parent.child_ids

    def test_tracked_locals_exclude_inductors(self, nest_program):
        table = find_candidates(nest_program)
        for cand in table.candidates():
            tracked = set(cand.tracked_locals)
            assert not (tracked & set(cand.scalar.inductors))
            assert not (tracked & set(cand.scalar.reductions))

    def test_entry_function_analyzed_first(self):
        program = compile_source("""
        func helper() {
          for (var i = 0; i < 3; i = i + 1) { }
        }
        func main() {
          for (var j = 0; j < 3; j = j + 1) { helper(); }
        }
        """)
        table = find_candidates(program)
        # loop ids: main's loop gets id 0 (entry first), helper's next
        assert table.by_id[0].function == "main"
        assert table.by_id[1].function == "helper"

    def test_max_depth(self):
        program = compile_source("""
        func main() {
          for (var i = 0; i < 2; i = i + 1) {
            for (var j = 0; j < 2; j = j + 1) {
              for (var k = 0; k < 2; k = k + 1) { }
            }
          }
        }
        """)
        table = find_candidates(program)
        assert table.max_loop_depth == 3
