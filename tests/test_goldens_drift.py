"""The golden corpus is generated-only: regenerating it from the
current interpreter must be a byte-level no-op, and any hand edit or
semantics drift is reported per workload and field."""

import json

from repro.conformance.goldens import (
    GOLDENS_VERSION,
    META_KEY,
    goldens_drift,
    load_goldens,
    render_goldens,
    update_goldens,
)
from repro.workloads import get_workload

GOLDENS_PATH = "tests/goldens.json"

#: small, fast workloads for the doctored-corpus tests
SUBSET = ["NumHeapSort", "BitOps"]


def _subset():
    return [get_workload(name) for name in SUBSET]


class TestCorpusIsGenerated:
    def test_regeneration_is_a_noop(self):
        """The committed corpus byte-matches a fresh regeneration —
        the gate that makes hand edits impossible to sneak in."""
        assert goldens_drift(GOLDENS_PATH) == []

    def test_corpus_carries_version_stamp(self):
        stored = load_goldens(GOLDENS_PATH)
        meta = stored[META_KEY]
        assert meta["version"] == GOLDENS_VERSION
        assert meta["workloads"] == len(stored) - 1
        assert "--update-goldens" in meta["generator"]


class TestDriftDetection:
    def test_update_then_drift_is_clean(self, tmp_path):
        path = str(tmp_path / "goldens.json")
        payload = update_goldens(path, workloads=_subset())
        assert set(payload) == set(SUBSET) | {META_KEY}
        assert goldens_drift(path, workloads=_subset()) == []

    def test_missing_corpus_reported(self, tmp_path):
        path = str(tmp_path / "nope.json")
        [problem] = goldens_drift(path, workloads=_subset())
        assert "missing" in problem

    def test_doctored_value_named_per_field(self, tmp_path):
        path = str(tmp_path / "goldens.json")
        update_goldens(path, workloads=_subset())
        stored = load_goldens(path)
        stored["BitOps"]["cycles"] += 1
        with open(path, "w") as fh:
            fh.write(render_goldens(stored))
        problems = goldens_drift(path, workloads=_subset())
        assert len(problems) == 1
        assert problems[0].startswith("BitOps.cycles: stored ")

    def test_hand_edit_without_meta_rejected(self, tmp_path):
        path = str(tmp_path / "goldens.json")
        update_goldens(path, workloads=_subset())
        stored = load_goldens(path)
        del stored[META_KEY]
        with open(path, "w") as fh:
            fh.write(render_goldens(stored))
        problems = goldens_drift(path, workloads=_subset())
        assert any(META_KEY in p for p in problems)

    def test_non_canonical_bytes_rejected(self, tmp_path):
        """Same values, different serialization (e.g. an editor
        reformat) still counts as drift."""
        path = str(tmp_path / "goldens.json")
        payload = update_goldens(path, workloads=_subset())
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=4, sort_keys=True)
        problems = goldens_drift(path, workloads=_subset())
        assert problems == ["corpus bytes differ from canonical "
                            "serialization; regenerate with "
                            "--update-goldens"]

    def test_unregistered_and_missing_workloads_reported(self,
                                                         tmp_path):
        path = str(tmp_path / "goldens.json")
        update_goldens(path, workloads=_subset())
        stored = load_goldens(path)
        stored["Ghost"] = {"cycles": 1, "instructions": 1,
                           "return_value": 0}
        del stored["NumHeapSort"]
        with open(path, "w") as fh:
            fh.write(render_goldens(stored))
        problems = goldens_drift(path, workloads=_subset())
        assert any(p.startswith("Ghost: stored but no longer")
                   for p in problems)
        assert any(p.startswith("NumHeapSort: registered but missing")
                   for p in problems)
