"""Tests for the Section 6.3 optimization advisor."""

import pytest

from repro.jrpm import Jrpm
from repro.tracer import Action, OptimizationAdvisor

# the running-average recurrence serializes the hot loop; the fix
# accumulates a sum (a reduction) and divides after the loop
SERIAL_AVG = """
func main() {
  var n = 1500;
  var data = array(n);
  for (var i = 0; i < n; i = i + 1) {
    data[i] = (i * 2654435761) % 100000;
  }
  var avg = 0;
  for (var k = 0; k < n; k = k + 1) {
    var v = data[k] * 3 + (data[k] >> 4);
    avg = (avg * k + v) / (k + 1);
  }
  return avg;
}
"""

FIXED_AVG = SERIAL_AVG.replace(
    "var avg = 0;", "var sum = 0;").replace(
    "avg = (avg * k + v) / (k + 1);", "sum = sum + v;").replace(
    "return avg;", "return sum / n;")

OVERFLOWER = """
func main() {
  var a = array(4096);
  var s = 0;
  for (var r = 0; r < 10; r = r + 1) {
    for (var i = 0; i < 4096; i = i + 1) {
      a[i] = (a[i] + r) % 65536;
    }
    s = s + a[r];
  }
  return s;
}
"""


def profiled(source, name):
    return Jrpm(source=source, name=name, extended=True,
                convergence_threshold=None).run(simulate_tls=False)


def hot_loop_id(report):
    return max(report.device.stats.items(),
               key=lambda kv: kv[1].cycles)[0]


class TestAdvisor:
    def test_flags_local_recurrence_on_hot_loop(self):
        rep = profiled(SERIAL_AVG, "serial-avg")
        recs = OptimizationAdvisor(rep).advise()
        by_loop = {r.loop_id: r for r in recs}
        hot = hot_loop_id(rep)
        assert hot in by_loop
        rec = by_loop[hot]
        assert rec.action is Action.RESTRUCTURE_LOCAL
        assert rec.sites, "extended run must name the load site"
        assert "cycle arc" in rec.reason

    def test_fixed_loop_not_flagged(self):
        rep = profiled(FIXED_AVG, "fixed-avg")
        recs = OptimizationAdvisor(rep).advise()
        hot = hot_loop_id(rep)
        assert all(r.loop_id != hot for r in recs)

    def test_flags_buffer_overflow(self):
        from repro.hydra import HydraConfig
        tiny = HydraConfig(store_buffer_lines=8)
        rep = Jrpm(source=OVERFLOWER, name="overflower", extended=True,
                   config=tiny,
                   convergence_threshold=None).run(simulate_tls=False)
        recs = OptimizationAdvisor(rep).advise()
        assert any(r.action is Action.SPLIT_OR_DESCEND for r in recs)
        rec = [r for r in recs
               if r.action is Action.SPLIT_OR_DESCEND][0]
        assert "overflows" in rec.reason

    def test_ranked_by_time_share(self):
        rep = profiled(SERIAL_AVG, "serial-avg")
        recs = OptimizationAdvisor(rep).advise()
        severities = [r.severity for r in recs]
        assert severities == sorted(severities, reverse=True)

    def test_render_readable(self):
        rep = profiled(SERIAL_AVG, "serial-avg")
        text = OptimizationAdvisor(rep).render()
        assert "Optimization guidance" in text
        assert "L" in text

    def test_no_findings_message(self):
        clean = """
        func main() {
          var a = array(512);
          var s = 0;
          for (var i = 0; i < 512; i = i + 1) { a[i] = i; }
          for (var k = 0; k < 512; k = k + 1) { s = s + a[k]; }
          return s;
        }
        """
        rep = profiled(clean, "clean")
        text = OptimizationAdvisor(rep).render()
        assert "No tuning opportunities" in text

    def test_works_without_extended_device(self):
        rep = Jrpm(source=SERIAL_AVG, name="basic",
                   convergence_threshold=None).run(simulate_tls=False)
        recs = OptimizationAdvisor(rep).advise()
        hot = hot_loop_id(rep)
        flagged = [r for r in recs if r.loop_id == hot]
        assert flagged
        assert flagged[0].sites == []  # no per-PC data without extended
