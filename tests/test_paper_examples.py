"""Worked examples from the paper, validated against hand-computed
values: the Figure 3 dependency trace, the Figure 4 overflow trace, the
Table 3 nest comparison, and the Figure 9 imprecision loop."""

import pytest

from repro.hydra import HydraConfig
from repro.jrpm import Jrpm
from repro.tracer import ComparatorBank, STLStats, TestDevice


class TestFigure3LoadDependency:
    """Figure 3: three threads of a decode loop with in_p/out_p arcs."""

    def _drive(self):
        """Reproduce the figure's event timeline.

        Threads start at 0, 12, 23 (eoi at 12, 23; eloop at 35).
        Thread 2 loads in_p stored at cycle 8 of thread 1 at its cycle
        16 (arc 8) and out_p stored at 11 loaded at 20 (arc 9): the
        critical arc is in_p's 8.
        """
        dev = TestDevice()
        dev.register_loop_locals(0, [1, 2])  # slots: 1=in_p, 2=out_p
        dev.on_sloop(0, 2, 0, frame_id=0)
        # thread 0 stores its locals
        dev.on_local_store(0, 1, 8)      # in_p
        dev.on_local_store(0, 2, 11)     # out_p
        dev.on_eoi(0, 12)
        # thread 1: loads form arcs to thread 0
        dev.on_local_load(0, 1, 16)      # arc 16 - 8 = 8
        dev.on_local_load(0, 2, 20)      # arc 20 - 11 = 9
        dev.on_local_store(0, 1, 19)
        dev.on_local_store(0, 2, 22)
        dev.on_eoi(0, 23)
        # thread 2
        dev.on_local_load(0, 1, 27)      # arc 27 - 19 = 8
        dev.on_eoi(0, 35)
        dev.on_eloop(0, 35)
        dev.finish()
        return dev.stats[0]

    def test_critical_arcs_match_figure(self):
        st = self._drive()
        # two threads carry critical arcs, both of length 8 (in_p wins
        # over out_p's 9, exactly as in the figure)
        assert st.arcs_prev == 2
        assert st.arc_len_prev == 16
        assert st.avg_arc_len_prev == 8.0
        assert st.arcs_earlier == 0

    def test_derived_values_match_figure(self):
        st = self._drive()
        assert st.threads == 3
        assert st.entries == 1
        assert st.cycles == 35
        assert st.avg_iters_per_entry == 3.0
        # figure: critical arc frequency to previous thread = 1.0
        assert st.arc_freq_prev == 1.0


class TestFigure4OverflowTrace:
    """Figure 4: the overflow analysis over the figure's LD/ST column
    trace, with tiny limits so the counters are observable."""

    def test_counters_follow_figure_columns(self):
        config = HydraConfig()
        stats = STLStats(0)
        bank = ComparatorBank(config, stats)
        bank.start_entry(0)
        # thread 0: LD new line, ST new line, LD same line again
        bank.observe_line_load(None)
        bank.observe_line_store(None)
        bank.observe_line_load(5)   # ts 5 >= thread start: this thread
        assert bank.load_lines == 1
        assert bank.store_lines == 1
        bank.end_iteration(100)
        # thread 1: the same lines are *new* again for this thread
        bank.observe_line_load(50)   # ts 50 < thread start 100
        bank.observe_line_store(60)
        assert bank.load_lines == 1
        assert bank.store_lines == 1
        bank.end_iteration(200)
        bank.end_entry(204)
        assert stats.load_lines_total == 2
        assert stats.store_lines_total == 2
        assert stats.overflow_threads == 0

    def test_overflow_increments_when_limits_exceeded(self):
        config = HydraConfig(store_buffer_lines=2)
        stats = STLStats(0)
        bank = ComparatorBank(config, stats)
        bank.start_entry(0)
        for _ in range(3):
            bank.observe_line_store(None)
        bank.end_iteration(100)
        bank.end_entry(110)
        assert stats.overflow_threads == 1


class TestTable3NestSelection:
    """Table 3: Equation 2 picks the outer Huffman loop over the inner
    one (and over staying serial)."""

    def test_outer_loop_wins(self, huffman_report):
        sel = huffman_report.selection
        table = huffman_report.candidates
        chosen = sel.selected_ids()
        # identify the decode nest: the loop with a child
        outers = [c for c in table.candidates() if c.child_ids]
        assert outers
        outer = outers[0]
        inner_id = outer.child_ids[0]
        assert outer.loop_id in chosen
        assert inner_id not in chosen
        # and the comparison mirrors Table 3: time(outer)/speedup(outer)
        # < time(inner)/speedup(inner) + serial remainder
        d_outer = sel.decisions[outer.loop_id]
        d_inner = sel.decisions[inner_id]
        delegate = (d_outer.stats.cycles - d_inner.stats.cycles) \
            + d_inner.best_time
        assert d_outer.time_if_speculated < delegate

    def test_inner_loop_estimate_below_outer(self, huffman_report):
        sel = huffman_report.selection
        table = huffman_report.candidates
        outer = [c for c in table.candidates() if c.child_ids][0]
        inner_id = outer.child_ids[0]
        est_outer = sel.decisions[outer.loop_id].estimate.speedup
        est_inner = sel.decisions[inner_id].estimate.speedup
        assert est_outer > est_inner


class TestFigure9Imprecision:
    """Figure 9: ``A[i] = A[i-1]`` except every nth iteration.

    Parallelism exists at every nth iteration, but TEST's averaged
    two-bin statistics see a high count of short previous-thread arcs
    and (the paper's point) conclude the loop is nearly serial.
    """

    SOURCE = """
    func main() {
      var a = array(512);
      a[0] = 7;
      for (var i = 1; i < 512; i = i + 1) {
        if (i %% %d != 0) {
          a[i] = a[i - 1];
        } else {
          a[i] = i;
        }
      }
      var s = 0;
      for (var k = 0; k < 512; k = k + 1) { s = s + a[k]; }
      return s;
    }
    """

    def _copy_loop_stats(self, n):
        rep = Jrpm(source=self.SOURCE % n, name="fig9-n%d" % n).run(
            simulate_tls=False)
        copy_stats = [st for st in rep.device.stats.values()
                      if st.arcs_prev > 0]
        assert copy_stats
        return max(copy_stats, key=lambda s: s.arcs_prev)

    def test_dependency_count_high_despite_parallelism(self):
        st = self._copy_loop_stats(8)
        # nearly every thread reports a critical arc to t-1 even though
        # one in every 8 iterations is independent
        assert st.arc_freq_prev > 0.8

    def test_analysis_blind_to_break_density(self):
        # the paper's point: temporal structure is lost — TEST's
        # averaged statistics barely distinguish a chain broken every
        # 2nd iteration from one broken every 8th, although the true
        # multi-iteration parallelism differs by 4x
        from repro.tracer import estimate_speedup
        sparse = estimate_speedup(self._copy_loop_stats(8)).speedup
        dense = estimate_speedup(self._copy_loop_stats(2)).speedup
        assert abs(sparse - dense) / dense < 0.25
