"""Tests for the differential conformance subsystem: shrinker, six-path
invariant checker, estimator-vs-simulator oracle, and fuzz campaigns."""

import json
import os

import pytest

from repro.conformance import (
    ConformanceViolation,
    check_monotonic,
    check_source,
    replay_seed,
    run_campaign,
    run_oracle,
    shrink_source,
)
from repro.conformance.campaign import fuzz_workloads
from repro.conformance.invariants import KIND_CRASH
from repro.conformance.oracle import (
    DEFAULT_ERROR_BOUND,
    KNOWN_WINNER_MISMATCHES,
    conformance_row,
)
from repro.fuzz import generate_program
from repro.hydra import HydraConfig
from repro.lang import compile_source
from repro.tls.simulator import TLSResult
from repro.tracer.stats import STLStats
from repro.workloads import get_workload

# ------------------------------------------------------------- shrinker


def _compiles(source):
    try:
        compile_source(source)
        return True
    except Exception:
        return False


class TestShrinker:
    def test_requires_failing_input(self):
        with pytest.raises(ValueError):
            shrink_source("func main() { return 0; }", lambda s: False)

    def test_result_still_satisfies_predicate(self, fuzz_seed):
        source = generate_program(fuzz_seed)
        predicate = lambda s: _compiles(s) and "arr0" in s  # noqa: E731
        small = shrink_source(source, predicate)
        assert predicate(small)

    def test_shrinks_injected_failure_to_tiny_repro(self, fuzz_seed):
        """The acceptance bar: a synthetic failure matching the seed
        variable shrinks to a handful of lines, not a whole program."""
        source = generate_program(fuzz_seed)
        assert len(source.splitlines()) > 15

        def predicate(s):
            return _compiles(s) and "s1" in s

        small = shrink_source(source, predicate)
        assert len(small.splitlines()) <= 15
        assert predicate(small)

    def test_raising_predicate_is_contained_by_campaign(self):
        """shrink_source itself treats only True as progress; the
        campaign predicate never raises (compile errors -> False)."""
        calls = []

        def predicate(s):
            calls.append(s)
            return "for" in s

        source = "func main() {\n  for (var i = 0; i < 3; i = i + 1) {" \
                 "\n    var x = 1;\n  }\n  return 0;\n}"
        small = shrink_source(source, predicate)
        assert "for" in small
        assert len(small.splitlines()) <= len(source.splitlines())


# ----------------------------------------------------------- invariants


class TestInvariantChecks:
    def test_clean_seed_passes_all_paths(self, fuzz_seed):
        outcome = replay_seed(fuzz_seed)
        assert isinstance(outcome.return_value, int)
        assert outcome.annotated_cycles >= outcome.fast_cycles
        assert outcome.n_loops >= 1

    def test_check_monotonic(self):
        assert check_monotonic([1, 2, 2, 5]) is None
        assert check_monotonic([]) is None
        assert check_monotonic([3, 4, 2, 9]) == 2

    def test_violation_carries_kind_and_seed(self):
        exc = ConformanceViolation("tls-bounds", "boom", seed=7)
        assert exc.kind == "tls-bounds"
        assert exc.seed == 7
        assert "seed 7" in str(exc) and "tls-bounds" in str(exc)

    def test_stats_invariants_flag_doctored_counters(self):
        stats = STLStats(3)
        stats.entries = 1
        stats.threads = 4
        stats.profiled_entries = 1
        stats.profiled_threads = 4
        stats.cycles = 100
        assert stats.invariant_errors() == []
        stats.arcs_prev = 10  # more arcs than eligible threads
        errs = stats.invariant_errors()
        assert errs and any("arc" in e for e in errs)

    def test_tls_invariants_flag_impossible_speedup(self):
        res = TLSResult(0)
        res.entries = 1
        res.threads = 8
        res.sequential_cycles = 8000
        res.parallel_cycles = 100  # 80x on a 4-CPU machine
        errs = res.invariant_errors(HydraConfig())
        assert errs and any("CPU" in e for e in errs)

    def test_generated_programs_verify_strictly(self, fuzz_seed):
        from repro.bytecode import verify_program

        for seed in range(fuzz_seed, fuzz_seed + 5):
            verify_program(compile_source(generate_program(seed)),
                           reject_unreachable=True)


# --------------------------------------------------------------- oracle


class TestOracle:
    @pytest.fixture(scope="class")
    def report(self):
        return run_oracle(workloads=[get_workload("MipsSimulator"),
                                     get_workload("IDEA")])

    def test_rows_in_workload_order(self, report):
        assert [r.name for r in report.rows] == ["MipsSimulator", "IDEA"]
        assert all(r.ok for r in report.rows)

    def test_errors_within_documented_bound(self, report):
        assert report.violations() == []
        assert 0.0 < report.max_error <= DEFAULT_ERROR_BOUND

    def test_winner_agreement(self, report):
        for row in report.rows:
            assert row.winner_match \
                or row.name in KNOWN_WINNER_MISMATCHES

    def test_machine_readable_report(self, report):
        doc = report.to_dict()
        text = json.dumps(doc)  # must be JSON-serializable
        assert "MipsSimulator" in text
        assert doc["violations"] == []
        for w in doc["workloads"]:
            assert set(w) >= {"name", "predicted_speedup",
                              "actual_speedup", "rel_error",
                              "winner_match", "stls"}

    def test_render_mentions_every_workload(self, report):
        text = report.render()
        assert "MipsSimulator" in text and "IDEA" in text
        assert "max error" in text

    def test_failed_pipeline_becomes_violation(self):
        from repro.workloads.registry import Workload

        bad = Workload(name="bad", category="synthetic",
                       description="does not compile",
                       source_text="func main() { return nope; }")
        report = run_oracle(workloads=[bad])
        assert [r.ok for r in report.rows] == [False]
        violations = report.violations()
        assert len(violations) == 1
        assert "bad" in violations[0] and "failed" in violations[0]

    def test_conformance_row_winner_from_savings(self, huffman_report):
        row = conformance_row("huffman-nest", "synthetic",
                              huffman_report)
        assert row.predicted_speedup == \
            huffman_report.predicted_speedup
        assert row.actual_speedup == huffman_report.actual_speedup
        for stl in row.stls:
            assert stl.actual_cycles > 0
            assert stl.rel_error >= 0.0


# ------------------------------------------------------------- campaign


class TestCampaign:
    def test_small_campaign_is_clean(self, fuzz_seed):
        result = run_campaign(count=15, base_seed=fuzz_seed)
        assert result.ok
        assert result.checked == 15
        assert result.failures == []
        assert "15/15 programs clean" in result.render()

    def test_parallel_campaign_matches_serial(self, fuzz_seed):
        serial = run_campaign(count=6, base_seed=fuzz_seed)
        parallel = run_campaign(count=6, base_seed=fuzz_seed, jobs=2)
        assert parallel.ok == serial.ok
        assert [r.name for r in parallel.rows] \
            == [r.name for r in serial.rows]

    def test_seed_rides_in_workload_dataset(self, fuzz_seed):
        fleet = fuzz_workloads(fuzz_seed, 3)
        assert [int(w.dataset) for w in fleet] \
            == [fuzz_seed, fuzz_seed + 1, fuzz_seed + 2]
        assert fleet[0].source() == generate_program(fuzz_seed)

    def test_injected_failure_is_shrunk_and_saved(self, tmp_path,
                                                  fuzz_seed):
        def poisoned(source, seed=None, name="", config=None):
            compile_source(source)  # non-compiling shrinks don't repro
            if "s1" in source:
                raise ConformanceViolation("synthetic-poison",
                                           "s1 present", seed)
            return check_source(source, seed=seed, name=name)

        repro_dir = str(tmp_path / "repros")
        result = run_campaign(count=2, base_seed=fuzz_seed,
                              checker=poisoned, repro_dir=repro_dir)
        assert not result.ok
        assert len(result.failures) == 2
        for failure in result.failures:
            assert failure.kind == "synthetic-poison"
            # the shrinker reduced the program to a tiny repro
            assert failure.shrunk_lines <= 15
            assert "s1" in failure.shrunk
            assert os.path.exists(failure.repro_path)
            text = open(failure.repro_path).read()
            assert "seed: %d" % failure.seed in text
            assert "kind: synthetic-poison" in text
            assert "jrpm conform --fuzz 1 --seed %d" % failure.seed \
                in text

    def test_crashing_checker_classified_by_exception_class(self,
                                                            fuzz_seed):
        def crashing(source, seed=None, name="", config=None):
            compile_source(source)
            raise RuntimeError("kaboom")

        result = run_campaign(count=1, base_seed=fuzz_seed,
                              checker=crashing, shrink=True)
        [failure] = result.failures
        assert failure.kind == KIND_CRASH
        assert failure.crash_class == "RuntimeError"
        # shrinking used the same-class predicate, so the repro still
        # compiles (a parse error would not count as a reproduction)
        assert _compiles(failure.shrunk)

    def test_campaign_report_is_json_serializable(self, fuzz_seed):
        result = run_campaign(count=3, base_seed=fuzz_seed)
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["count"] == 3
        assert doc["checked"] == 3
        assert doc["failures"] == []
