"""Pass-pipeline tests: effects tables, differential equivalence,
LICM hoist-safety barriers, and strength reduction.

The differential class is the optimizer's ground truth: every bundled
workload must produce the exact same observable behaviour (return
value, printed output, final heap) optimized and not, with a dynamic
instruction count that never increases — the same contract the
conformance suite's ``KIND_OPT_REGRESSION`` gate enforces on fuzzed
programs.
"""

from __future__ import annotations

import pytest

from repro.bytecode import (BinOp, FunctionBuilder, Instr, Op, Program,
                            UnOp, verify_program)
from repro.errors import BytecodeError
from repro.jit.effects import instr_reads, instr_writes
from repro.jit.licm import licm_function
from repro.jit.lvn import lvn_function
from repro.jit.optimize import OptimizeStats, optimize_program
from repro.runtime import run_program
from repro.workloads import workload_names, get_workload


# ---------------------------------------------------------------------------
# effects: the read/write tables are exhaustive over the ISA
# ---------------------------------------------------------------------------

def _plausible_instr(op: Op) -> Instr:
    """A well-formed instance of ``op`` for table coverage."""
    if op == Op.CONST:
        return Instr(op, a=0, imm=1)
    if op == Op.BIN:
        return Instr(op, sub=int(BinOp.ADD), a=0, b=1, c=2)
    if op == Op.UN:
        return Instr(op, sub=int(UnOp.NEG), a=0, b=1)
    if op == Op.CALL:
        return Instr(op, a=0, name="f", args=(1, 2))
    if op == Op.INTRIN:
        return Instr(op, a=0, name="abs", args=(1,))
    return Instr(op, a=0, b=1, c=2)


class TestEffects:
    @pytest.mark.parametrize("op", list(Op))
    def test_every_opcode_is_classified(self, op):
        # a new Op member without an effects entry must fail loudly in
        # this test, not silently mis-optimize — both tables raise on
        # anything they don't know
        ins = _plausible_instr(op)
        reads = instr_reads(ins)
        writes = instr_writes(ins)
        assert isinstance(reads, list)
        assert writes is None or isinstance(writes, int)

    def test_unhandled_opcode_raises(self):
        ins = _plausible_instr(Op.NOP)
        ins.op = 9999  # not an Op member
        with pytest.raises(BytecodeError, match="unhandled opcode"):
            instr_reads(ins)
        with pytest.raises(BytecodeError, match="unhandled opcode"):
            instr_writes(ins)

    def test_call_reads_args_and_writes_dst(self):
        ins = Instr(Op.CALL, a=4, name="f", args=(7, 8))
        assert instr_reads(ins) == [7, 8]
        assert instr_writes(ins) == 4
        ins_void = Instr(Op.CALL, a=-1, name="f", args=())
        assert instr_writes(ins_void) is None


# ---------------------------------------------------------------------------
# differential: optimized == unoptimized on every bundled workload
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", workload_names())
def test_workload_differential(name):
    program = get_workload(name).compile()
    clone = program.copy()
    optimize_program(clone)  # verifies after every pass internally
    verify_program(clone)
    base = run_program(program)
    opt = run_program(clone)
    assert opt.return_value == base.return_value
    assert opt.printed == base.printed
    assert opt.heap.snapshot() == base.heap.snapshot()
    # every rewrite is 1:1, removing, or motion into a dominating
    # preheader: the dynamic count may only go down
    assert opt.instructions <= base.instructions


# ---------------------------------------------------------------------------
# LICM: what hoists, and every barrier that stops a hoist
# ---------------------------------------------------------------------------

def _counting_loop(build_body, result_slot=None):
    """``for (i = 0; i < 10; i++) { body }`` built by hand so each test
    controls exactly what sits in the header and body blocks."""
    b = FunctionBuilder("main")
    i, n, one, t = (b.temp() for _ in range(4))
    header, body, done = b.label(), b.label(), b.label()
    slots = {"b": b, "i": i, "n": n, "one": one}
    b.const(i, 0)
    b.const(n, 10)
    b.const(one, 1)
    pre_extra = build_body(slots, "pre")
    b.jmp(header)
    b.mark(header)
    build_body(slots, "header")
    b.binop(BinOp.LT, t, i, n)
    b.br(t, body, done)
    b.mark(body)
    build_body(slots, "body")
    b.binop(BinOp.ADD, i, i, one)
    b.jmp(header)
    b.mark(done)
    ret = result_slot(slots) if result_slot else i
    b.ret(ret)
    del pre_extra
    fn = b.build()
    program = Program()
    program.add(fn)
    return program, fn


def _licm(fn):
    stats = OptimizeStats()
    changed = licm_function(fn, stats)
    return changed, stats


class TestLicmBarriers:
    def test_invariant_header_op_hoists(self):
        acc = {}

        def body(s, where):
            if where == "header":
                if "inv" not in acc:
                    acc["inv"] = s["b"].temp()
                s["b"].binop(BinOp.ADD, acc["inv"], s["n"], s["n"])

        program, fn = _counting_loop(body, result_slot=lambda s: acc["inv"])
        base = run_program(program.copy())
        changed, stats = _licm(fn)
        assert changed and stats.licm_hoisted == 1
        verify_program(program)
        opt = run_program(program)
        assert opt.return_value == base.return_value == 20
        assert opt.instructions < base.instructions

    def test_variant_operand_blocks_hoist(self):
        # t2 = i + n reads the induction variable: never invariant
        def body(s, where):
            if where == "header":
                if "t2" not in s:
                    s["t2"] = s["b"].temp()
                s["b"].binop(BinOp.ADD, s["t2"], s["i"], s["n"])

        program, fn = _counting_loop(body)
        changed, stats = _licm(fn)
        assert stats.licm_hoisted == 0

    def test_body_op_not_count_safe(self):
        # the body does not dominate the exit-edge source (the header):
        # a zero-trip loop would execute a hoisted copy it never ran
        def body(s, where):
            if where == "body":
                if "inv" not in s:
                    s["inv"] = s["b"].temp()
                s["b"].binop(BinOp.ADD, s["inv"], s["n"], s["n"])

        program, fn = _counting_loop(body)
        changed, stats = _licm(fn)
        assert stats.licm_hoisted == 0

    def test_store_in_loop_blocks_aload_hoist(self):
        arr = {}

        def body(s, where):
            b = s["b"]
            if where == "pre":
                arr["a"], arr["x"], ln = b.temp(), b.temp(), b.temp()
                b.const(ln, 4)
                b.newarr(arr["a"], ln)
            elif where == "header":
                b.aload(arr["x"], arr["a"], s["one"])
            elif where == "body":
                b.astore(arr["a"], s["one"], s["i"])

        program, fn = _counting_loop(body)
        changed, stats = _licm(fn)
        assert stats.licm_hoisted == 0

    def test_call_in_loop_blocks_aload_hoist(self):
        arr = {}

        def body(s, where):
            b = s["b"]
            if where == "pre":
                arr["a"], arr["x"], ln = b.temp(), b.temp(), b.temp()
                b.const(ln, 4)
                b.newarr(arr["a"], ln)
            elif where == "header":
                b.aload(arr["x"], arr["a"], s["one"])
            elif where == "body":
                b.call(-1, "poke", (arr["a"],))

        def build(s, where):
            return body(s, where)

        b = FunctionBuilder("poke", ("a",))
        b.ret()
        poke = b.build()
        program, fn = _counting_loop(build)
        program.add(poke)
        changed, stats = _licm(fn)
        assert stats.licm_hoisted == 0

    def test_aload_hoists_when_loop_is_heap_readonly(self):
        arr = {}

        def body(s, where):
            b = s["b"]
            if where == "pre":
                arr["a"], arr["x"], ln = b.temp(), b.temp(), b.temp()
                b.const(ln, 4)
                b.newarr(arr["a"], ln)
            elif where == "header":
                b.aload(arr["x"], arr["a"], s["one"])

        program, fn = _counting_loop(body)
        changed, stats = _licm(fn)
        assert stats.licm_hoisted >= 1
        verify_program(program)
        assert run_program(program).return_value == 10

    def test_observable_before_faulting_op_blocks_hoist(self):
        # PRINT, then an invariant DIV in the same block: hoisting the
        # DIV would fault before output the plain program produced
        def body(s, where):
            b = s["b"]
            if where == "header":
                if "q" not in s:
                    s["q"] = b.temp()
                b.print_(s["n"])
                b.binop(BinOp.DIV, s["q"], s["n"], s["one"])

        program, fn = _counting_loop(body)
        changed, stats = _licm(fn)
        assert stats.licm_hoisted == 0

    def test_faulting_op_hoists_without_observable(self):
        def body(s, where):
            b = s["b"]
            if where == "header":
                if "q" not in s:
                    s["q"] = b.temp()
                b.binop(BinOp.DIV, s["q"], s["n"], s["one"])

        program, fn = _counting_loop(body, result_slot=lambda s: s["q"])
        base = run_program(program.copy())
        changed, stats = _licm(fn)
        assert stats.licm_hoisted == 1
        verify_program(program)
        assert run_program(program).return_value == base.return_value == 10

    def test_annotated_function_is_skipped_wholesale(self):
        def body(s, where):
            if where == "header":
                if "inv" not in s:
                    s["inv"] = s["b"].temp()
                s["b"].binop(BinOp.ADD, s["inv"], s["n"], s["n"])

        program, fn = _counting_loop(body)
        fn.code.insert(0, Instr(Op.SLOOP, a=0))
        for pass_fn in (licm_function, lvn_function):
            stats = OptimizeStats()
            assert pass_fn(fn, stats) is False
            assert stats.total == 0


# ---------------------------------------------------------------------------
# strength reduction: MUL/DIV/MOD by powers of two
# ---------------------------------------------------------------------------

def _sr_program(sub, factor, via_len=True):
    """``return len(arr) <sub> factor`` — LEN proves int and non-negative
    without being a foldable constant."""
    b = FunctionBuilder("main")
    arr, x, k, d, ln = (b.temp() for _ in range(5))
    b.const(ln, 12)
    b.newarr(arr, ln)
    if via_len:
        b.length(x, arr)
    else:
        b.const(x, 12)
        b.unop(UnOp.I2F, x, x)  # float: no int proof
    b.const(k, factor)
    b.binop(sub, d, x, k)
    b.ret(d)
    fn = b.build()
    program = Program()
    program.add(fn)
    return program, fn


def _lvn(fn):
    stats = OptimizeStats()
    lvn_function(fn, stats)
    return stats


class TestStrengthReduction:
    @pytest.mark.parametrize("sub,factor,new_sub,expect", [
        (BinOp.MUL, 8, BinOp.SHL, 96),
        (BinOp.DIV, 4, BinOp.SHR, 3),
        (BinOp.MOD, 8, BinOp.AND, 4),
    ])
    def test_power_of_two_reduces(self, sub, factor, new_sub, expect):
        program, fn = _sr_program(sub, factor)
        stats = _lvn(fn)
        assert stats.strength_reduced == 1
        verify_program(program)
        bins = [i for i in fn.code if i.op == Op.BIN]
        assert [BinOp(i.sub) for i in bins] == [new_sub]
        assert run_program(program).return_value == expect

    def test_non_power_of_two_stays(self):
        program, fn = _sr_program(BinOp.MUL, 6)
        assert _lvn(fn).strength_reduced == 0
        assert run_program(program).return_value == 72

    def test_float_operand_never_reduces(self):
        # 12.0 * 8 is a float multiply; x << 3 would fault on it
        program, fn = _sr_program(BinOp.MUL, 8, via_len=False)
        assert _lvn(fn).strength_reduced == 0
        assert run_program(program).return_value == 96.0

    def test_possibly_negative_dividend_never_reduces(self):
        # y = len - 20 is int but possibly negative: Java / truncates
        # toward zero while >> floors, so DIV must stay DIV
        b = FunctionBuilder("main")
        arr, x, c, y, k, d, ln = (b.temp() for _ in range(7))
        b.const(ln, 12)
        b.newarr(arr, ln)
        b.length(x, arr)
        b.const(c, 20)
        b.binop(BinOp.SUB, y, x, c)
        b.const(k, 4)
        b.binop(BinOp.DIV, d, y, k)
        b.ret(d)
        fn = b.build()
        program = Program()
        program.add(fn)
        assert _lvn(fn).strength_reduced == 0
        assert run_program(program).return_value == -2  # -8/4, not -8>>2

    def test_shared_constant_never_retargeted(self):
        # the 8 is read again after the MUL: retargeting its CONST to
        # the shift count would corrupt the second reader
        b = FunctionBuilder("main")
        arr, x, k, d, e, ln = (b.temp() for _ in range(6))
        b.const(ln, 12)
        b.newarr(arr, ln)
        b.length(x, arr)
        b.const(k, 8)
        b.binop(BinOp.MUL, d, x, k)
        b.binop(BinOp.ADD, e, d, k)
        b.ret(e)
        fn = b.build()
        program = Program()
        program.add(fn)
        assert _lvn(fn).strength_reduced == 0
        assert run_program(program).return_value == 104
