"""Unit tests for the execution-model subsystem: the registry, the
live-in predictor, the DOACROSS simulator/estimator, the selector's
multi-model argmax, and legacy (single-backend) equivalence."""

import json

import pytest

from repro.hydra import HydraConfig
from repro.jit.speculative import STLCompilation
from repro.jrpm import Jrpm
from repro.jrpm.report import report_json
from repro.models import (
    DEFAULT_MODEL,
    get_model,
    model_names,
    register_model,
    resolve_models,
)
from repro.models.base import SpeculationModel
from repro.models.doacross import (
    DoacrossResult,
    estimate_doacross,
    simulate_doacross,
)
from repro.models.predictor import LiveInPredictor
from repro.runtime.events import local_address
from repro.tls import EntryTrace, ThreadEvent, ThreadTrace

CONFIG = HydraConfig()

#: a valid local-variable address (frame 0, slot 3) — local events with
#: unencoded addresses are dropped by the classification kernel
LOCAL = local_address(0, 3)


def dummy_compilation(config=None):
    """An STLCompilation with no eliminations (hand-built traces)."""

    class _Cand:
        loop_id = 0

        class scalar:
            inductors = []
            reductions = []
            classes = {}
            carried = []

    return STLCompilation(_Cand(), config or CONFIG)


def entry(threads):
    """EntryTrace from (size, [(rel, kind, addr)]) tuples."""
    tts = [ThreadTrace(size, [ThreadEvent(*e) for e in events])
           for size, events in threads]
    total = sum(t.size for t in tts)
    return EntryTrace(tts, total, frame_id=0)


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_canonical_order(self):
        assert model_names() == ["sequential", "hydra-tls", "doacross"]

    def test_get_model_roundtrip(self):
        for name in model_names():
            assert get_model(name).name == name

    def test_get_model_unknown(self):
        with pytest.raises(KeyError, match="unknown execution model"):
            get_model("openmp")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model(get_model(DEFAULT_MODEL))

    def test_register_rejects_anonymous(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_model(SpeculationModel())

    def test_resolve_none_is_legacy(self):
        assert resolve_models(None) is None
        assert resolve_models(False) is None
        assert resolve_models([]) is None
        assert resolve_models("") is None

    def test_resolve_all(self):
        assert resolve_models("all") == tuple(model_names())
        assert resolve_models(True) == tuple(model_names())

    def test_resolve_list_keeps_order_and_dedupes(self):
        assert resolve_models("doacross, hydra-tls, doacross") \
            == ("doacross", "hydra-tls")

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_models("hydra-tls,warp-speed")


# ---------------------------------------------------------------------------
# live-in predictor


class TestLiveInPredictor:
    def test_cold_table_predicts_nothing(self):
        p = LiveInPredictor()
        assert p.consume(100) is None
        p.observe(100, 10)
        p.observe(100, 10)
        assert p.consume(100) is None
        assert p.predictions == 0
        assert p.trains == 2

    def test_constant_offset_hits_after_warmup(self):
        p = LiveInPredictor()
        for _ in range(4):
            p.observe(100, 10)
        # streak reached CONFIDENCE_THRESHOLD before the 4th store, so
        # exactly that store was predicted — correctly
        assert (p.predictions, p.hits) == (1, 1)
        assert p.consume(100) == "hit"
        assert p.hit_rate == 1.0

    def test_strided_offsets_hit(self):
        p = LiveInPredictor()
        for rel in (0, 5, 10, 15, 20, 25):
            p.observe(100, rel)
        assert p.hits == p.predictions > 0
        assert p.consume(100) == "hit"

    def test_broken_stride_misses(self):
        p = LiveInPredictor()
        for _ in range(4):
            p.observe(100, 10)
        p.observe(100, 17)  # confident, wrong
        assert p.consume(100) == "miss"
        assert p.mispredictions == 1
        assert p.predictions == 2

    def test_irregular_offsets_never_confident(self):
        p = LiveInPredictor()
        for rel in (3, 4, 6, 9, 13, 18):  # stride keeps changing
            p.observe(100, rel)
        assert p.predictions == 0
        assert p.hit_rate == 0.0

    def test_addresses_are_independent(self):
        p = LiveInPredictor()
        for _ in range(4):
            p.observe(100, 10)
            p.observe(200, 99)
        assert p.consume(100) == "hit"
        assert p.consume(200) == "hit"
        assert p.consume(300) is None


# ---------------------------------------------------------------------------
# DOACROSS trace simulator


def _arcless_entry(n=4, size=100):
    return entry([(size, []) for _ in range(n)])


class TestDoacrossSimulator:
    def test_arcless_entry_runs_parallel(self):
        comp = dummy_compilation()
        res = simulate_doacross(comp, [_arcless_entry()], CONFIG)
        assert isinstance(res, DoacrossResult)
        assert res.model == "doacross"
        assert (res.posts, res.predictions, res.violations) == (0, 0, 0)
        assert res.overflows == 0
        assert res.speedup > 1.5
        assert res.invariant_errors(CONFIG) == []

    def test_heap_arc_posts_and_waits(self):
        comp = dummy_compilation()
        free = simulate_doacross(comp, [_arcless_entry(2, 100)], CONFIG)
        # thread 0 stores the heap address late, thread 1 loads it
        # early: the consumer must wait for the post
        arc = entry([(100, [(90, "st", 4096)]),
                     (100, [(2, "ld", 4096)])])
        synced = simulate_doacross(comp, [arc], CONFIG)
        assert synced.posts == 1
        assert synced.predictions == 0
        assert synced.parallel_cycles > free.parallel_cycles
        assert synced.invariant_errors(CONFIG) == []

    def test_predictable_local_arc_skips_waits(self):
        comp = dummy_compilation()
        # every iteration stores a local live-in at the same relative
        # offset and the next one loads it: a constant-stride pattern
        # the predictor covers once warm
        threads = [(50, [(1, "lld", LOCAL), (40, "lst", LOCAL)])
                   for _ in range(10)]
        res = simulate_doacross(comp, [entry(threads)], CONFIG)
        # threads 1-3 consume unwarmed stores (posts); from thread 4 on
        # every load rides a correct prediction
        assert res.posts == 3
        assert res.predictions == 6
        assert res.predicted_hits == 6
        assert res.violations == 0
        assert res.prediction_hit_rate == 1.0
        assert res.invariant_errors(CONFIG) == []

    def test_misprediction_charges_restart(self):
        comp = dummy_compilation()
        # constant offset long enough to go confident, then one thread
        # stores at a different offset: its consumer pays the restart
        threads = [(50, [(1, "lld", LOCAL), (40, "lst", LOCAL)])
                   for _ in range(5)]
        threads.append((50, [(1, "lld", LOCAL), (45, "lst", LOCAL)]))
        threads.append((50, [(1, "lld", LOCAL), (45, "lst", LOCAL)]))
        res = simulate_doacross(comp, [entry(threads)], CONFIG)
        assert res.violations >= 1
        assert res.violations == res.predictions - res.predicted_hits
        assert res.invariant_errors(CONFIG) == []

    def test_never_overflows(self):
        comp = dummy_compilation()
        # far more distinct heap stores per thread than the store
        # buffer holds: TLS would stall, DOACROSS commits as it goes
        cfg = HydraConfig(store_buffer_lines=2)
        threads = [(200, [(i, "st", 8192 + 64 * i) for i in range(64)])
                   for _ in range(4)]
        res = simulate_doacross(comp, [entry(threads)], cfg)
        assert res.overflows == 0
        assert res.invariant_errors(cfg) == []

    def test_deterministic(self):
        comp = dummy_compilation()
        threads = [(50, [(1, "lld", LOCAL), (40, "lst", LOCAL),
                         (10, "ld", 4096), (45, "st", 4096)])
                   for _ in range(8)]
        entries = [entry(threads), entry(threads[:3])]
        a = simulate_doacross(comp, entries, CONFIG)
        b = simulate_doacross(comp, entries, CONFIG)
        assert (a.parallel_cycles, a.posts, a.predictions,
                a.predicted_hits, a.violations) \
            == (b.parallel_cycles, b.posts, b.predictions,
                b.predicted_hits, b.violations)

    def test_predictor_warms_across_entries(self):
        comp = dummy_compilation()
        # one shared predictor per STL: entry 2 starts confident from
        # entry 1's training, so it posts less and predicts more
        threads = [(50, [(1, "lld", LOCAL), (40, "lst", LOCAL)])
                   for _ in range(6)]
        one = simulate_doacross(comp, [entry(threads)], CONFIG)
        two = simulate_doacross(comp, [entry(threads)] * 2, CONFIG)
        assert two.predictions > 2 * one.predictions - 1
        assert two.posts < 2 * one.posts


# ---------------------------------------------------------------------------
# DOACROSS analytic estimate + multi-model pipeline behaviour


@pytest.fixture(scope="module")
def models_report(nest_program):
    return Jrpm(program=nest_program, name="nest",
                models="all").run(simulate_tls=True)


class TestDoacrossEstimate:
    def test_estimate_shape_on_real_stats(self, models_report):
        for dec in models_report.selection.decisions.values():
            est = estimate_doacross(dec.stats, CONFIG)
            assert est.overflow_freq == 0.0
            assert 1.0 <= est.speedup <= CONFIG.n_cpus + 1e-9
            assert est.spec_time > 0
            assert est.orig_time == dec.stats.cycles
            assert 0.0 <= est.predicted_arc_share <= 1.0

    def test_unprofiled_stats_estimate_unity(self, models_report):
        dec = next(iter(models_report.selection.decisions.values()))

        class _Empty:
            loop_id = dec.stats.loop_id
            cycles = 0
            threads = 0
            profiled_threads = 0

        est = estimate_doacross(_Empty(), CONFIG)
        assert est.speedup == 1.0
        assert est.base_speedup == 1.0


class TestSelectorArgmax:
    def test_every_decision_is_argmax(self, models_report):
        order = model_names()
        for dec in models_report.selection.decisions.values():
            ests = dec.model_estimates
            assert set(ests) == set(order)
            best = max(e.speedup for e in ests.values())
            assert ests[dec.model].speedup == best
            # ties break toward the earlier-registered model
            tied = [n for n in order
                    if ests[n].speedup == best]
            assert dec.model == tied[0]

    def test_selected_loops_simulate_their_winner(self, models_report):
        for sel in models_report.selection.selected:
            res = models_report.tls_results[sel.loop_id]
            model = getattr(res, "model", "hydra-tls")
            assert model == sel.model

    def test_report_models_block(self, models_report):
        data = json.loads(report_json(models_report))
        block = data["models"]
        assert block["requested"] == model_names()
        # every decided loop is counted: unselected ones as sequential
        counts = block["selected_counts"]
        assert sum(counts.values()) \
            == len(models_report.selection.decisions)
        speculative = sum(c for m, c in counts.items()
                          if m != "sequential")
        assert speculative == len(models_report.selection.selected)
        for row in block["per_loop"]:
            assert row["model"] in row["estimates"]


class TestLegacyEquivalence:
    def test_legacy_report_has_no_models(self, nest_program):
        legacy = Jrpm(program=nest_program,
                      name="nest").run(simulate_tls=True)
        assert legacy.models is None
        data = json.loads(report_json(legacy))
        assert data["models"] is None
        for row in data["selection"]["selected"]:
            assert row["model"] == "hydra-tls"

    def test_hydra_only_models_run_matches_legacy(self, nest_program):
        legacy = Jrpm(program=nest_program,
                      name="nest").run(simulate_tls=True)
        wrapped = Jrpm(program=nest_program, name="nest",
                       models=["hydra-tls"]).run(simulate_tls=True)
        assert wrapped.models == ("hydra-tls",)
        assert wrapped.predicted_speedup == legacy.predicted_speedup
        assert wrapped.actual_speedup == legacy.actual_speedup
        assert sorted(wrapped.tls_results) == sorted(legacy.tls_results)
        for loop_id, res in wrapped.tls_results.items():
            ref = legacy.tls_results[loop_id]
            assert res.parallel_cycles == ref.parallel_cycles
            assert res.violations == ref.violations
