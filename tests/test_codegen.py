"""Unit tests for minijava code generation (via execution)."""

import pytest

from repro.bytecode import Op, verify_program
from repro.lang import compile_source
from repro.runtime import run_program


def result(source):
    return run_program(compile_source(source)).return_value


class TestExpressions:
    def test_arithmetic(self):
        assert result("func main() { return 2 + 3 * 4 - 1; }") == 13

    def test_division_truncates_toward_zero(self):
        assert result("func main() { return 7 / 2; }") == 3
        assert result("func main() { return -7 / 2; }") == -3

    def test_java_modulo(self):
        assert result("func main() { return -7 % 3; }") == -1
        assert result("func main() { return 7 % -3; }") == 1

    def test_bitwise(self):
        assert result("func main() { return (12 & 10) | (1 ^ 3); }") \
            == (12 & 10) | (1 ^ 3)

    def test_shifts(self):
        assert result("func main() { return (1 << 10) >> 3; }") == 128

    def test_comparisons_produce_01(self):
        assert result("func main() { return (3 < 4) + (4 < 3); }") == 1

    def test_unary(self):
        assert result("func main() { return -(3) + !0 + !5 + ~0; }") \
            == -3 + 1 + 0 - 1

    def test_float_arithmetic(self):
        assert result("func main() { return int(1.5 * 4.0); }") == 6

    def test_mixed_int_float(self):
        assert result("func main() { return int(3 * 1.5); }") == 4

    def test_casts(self):
        assert result("func main() { return int(float(7) / 2.0); }") == 3

    def test_intrinsics(self):
        assert result("func main() { return int(sqrt(81.0)); }") == 9
        assert result("func main() { return max(3, 7) + min(2, 5); }") \
            == 9
        assert result("func main() { return abs(-4) + floor(2.9); }") == 6
        assert result("func main() { return int(pow(2.0, 10.0)); }") \
            == 1024


class TestControlFlow:
    def test_if_else(self):
        src = """
        func classify(x) {
          if (x < 0) { return -1; }
          else if (x == 0) { return 0; }
          else { return 1; }
        }
        func main() {
          return classify(-5) * 100 + classify(0) * 10 + classify(9);
        }
        """
        assert result(src) == -1 * 100 + 0 * 10 + 1

    def test_short_circuit_and_avoids_side_effect(self):
        # division by zero on the rhs must not execute when lhs is false
        src = """
        func main() {
          var x = 0;
          if (x != 0 && 10 / x > 1) { return 1; }
          return 2;
        }
        """
        assert result(src) == 2

    def test_short_circuit_or(self):
        src = """
        func main() {
          var x = 0;
          if (1 || 10 / x > 1) { return 7; }
          return 2;
        }
        """
        assert result(src) == 7

    def test_logical_result_is_01(self):
        assert result("func main() { return (5 && 9) + (0 || 3); }") == 2

    def test_while_with_break_continue(self):
        src = """
        func main() {
          var n = 0;
          var i = 0;
          while (1) {
            i = i + 1;
            if (i > 20) { break; }
            if (i % 2 == 0) { continue; }
            n = n + i;
          }
          return n;
        }
        """
        assert result(src) == sum(i for i in range(1, 21) if i % 2)

    def test_nested_loop_break_only_inner(self):
        src = """
        func main() {
          var n = 0;
          for (var i = 0; i < 3; i = i + 1) {
            for (var j = 0; j < 10; j = j + 1) {
              if (j == 2) { break; }
              n = n + 1;
            }
          }
          return n;
        }
        """
        assert result(src) == 6

    def test_for_continue_still_steps(self):
        src = """
        func main() {
          var n = 0;
          for (var i = 0; i < 10; i = i + 1) {
            if (i % 2 == 0) { continue; }
            n = n + i;
          }
          return n;
        }
        """
        assert result(src) == 25


class TestFunctions:
    def test_recursion(self):
        src = """
        func fact(n) {
          if (n <= 1) { return 1; }
          return n * fact(n - 1);
        }
        func main() { return fact(10); }
        """
        assert result(src) == 3628800

    def test_mutual_recursion(self):
        src = """
        func is_even(n) {
          if (n == 0) { return 1; }
          return is_odd(n - 1);
        }
        func is_odd(n) {
          if (n == 0) { return 0; }
          return is_even(n - 1);
        }
        func main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert result(src) == 11

    def test_array_passed_by_reference(self):
        src = """
        func fill(a, v) {
          for (var i = 0; i < len(a); i = i + 1) { a[i] = v; }
        }
        func main() {
          var a = array(5);
          fill(a, 7);
          return a[0] + a[4];
        }
        """
        assert result(src) == 14

    def test_value_returning_fallthrough_returns_zero(self):
        src = """
        func f(x) {
          if (x) { return 5; }
          x = x + 1;
          return x;
        }
        func main() { return f(0); }
        """
        assert result(src) == 1


class TestStructure:
    def test_programs_verify(self, nest_program):
        verify_program(nest_program)

    def test_named_locals_precede_temps(self, nest_program):
        fn = nest_program.main
        assert fn.n_named >= 4  # a, s, i, j, k
        # named slots have names, and slots are contiguous from 0
        for slot in range(fn.n_named):
            assert slot in fn.slot_names

    def test_shadowed_names_get_distinct_slots(self):
        src = """
        func main() {
          var x = 1;
          if (x) { var x = 2; }
          return x;
        }
        """
        program = compile_source(src)
        assert result(src) == 1
        names = list(program.main.slot_names.values())
        assert len(names) == len(set(names))  # unique synthetic names
