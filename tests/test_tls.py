"""Unit tests for the trace splitter and TLS timing simulator."""

import pytest

from repro.cfg import find_candidates
from repro.errors import SimulationError
from repro.hydra import HydraConfig
from repro.jit import annotate_program, compile_stl
from repro.jit.speculative import STLCompilation
from repro.lang import compile_source
from repro.runtime import RecordingListener, run_program
from repro.tls import (
    EntryTrace,
    TLSSimulator,
    ThreadEvent,
    ThreadTrace,
    local_frame_of,
    local_slot_of,
    simulate_stl,
    split_trace,
)
from repro.runtime.events import local_address

from tests.conftest import NEST_SOURCE


def trace_of(source, loop_id):
    program = compile_source(source)
    table = find_candidates(program)
    ann = annotate_program(program, table)
    rec = RecordingListener()
    run_program(ann.program, listener=rec)
    return table, rec, split_trace(rec, loop_id)


def dummy_compilation(config=None):
    """An STLCompilation with no eliminations (hand-built traces)."""

    class _Cand:
        loop_id = 0

        class scalar:
            inductors = []
            reductions = []
            classes = {}
            carried = []

    return STLCompilation(_Cand(), config or HydraConfig())


def entry(threads):
    """EntryTrace from (size, [(rel, kind, addr)]) tuples."""
    tts = [ThreadTrace(size, [ThreadEvent(*e) for e in events])
           for size, events in threads]
    total = sum(t.size for t in tts)
    return EntryTrace(tts, total, frame_id=0)


class TestSplitTrace:
    def test_entries_and_threads(self):
        table, rec, entries = trace_of(NEST_SOURCE, 1)  # inner loop
        assert len(entries) == 8
        for e in entries:
            assert len(e.threads) == 8

    def test_thread_sizes_sum_to_entry(self):
        _, _, entries = trace_of(NEST_SOURCE, 0)
        for e in entries:
            assert sum(t.size for t in e.threads) == e.total_cycles

    def test_events_relative_and_in_window(self):
        _, _, entries = trace_of(NEST_SOURCE, 2)  # sum loop
        for e in entries:
            for t in e.threads:
                for ev in t.events:
                    assert 0 <= ev.rel_cycle < t.size

    def test_local_address_roundtrip(self):
        addr = local_address(7, 3)
        assert local_slot_of(addr) == 3
        assert local_frame_of(addr) == 7
        assert local_slot_of(0x1000) is None

    def test_unbalanced_trace_rejected(self):
        rec = RecordingListener()
        rec.marks.append(type(rec.marks)() if False else None)
        # hand-build an inconsistent mark stream
        from repro.runtime.events import LoopMark
        rec.marks = [LoopMark(0, "eoi", 0)]
        with pytest.raises(SimulationError):
            split_trace(rec, 0)


class TestSimulatorBasics:
    def test_independent_threads_speed_up(self):
        e = entry([(100, []) for _ in range(40)])
        res = simulate_stl(dummy_compilation(), [e])
        assert res.violations == 0
        assert res.speedup > 2.5

    def test_speedup_bounded_by_cpus(self):
        e = entry([(100, []) for _ in range(100)])
        res = simulate_stl(dummy_compilation(), [e])
        assert res.speedup <= 4.0 + 1e-9

    def test_single_thread_no_speedup(self):
        e = entry([(1000, [])])
        res = simulate_stl(dummy_compilation(), [e])
        assert res.speedup <= 1.0

    def test_overheads_charged(self):
        e = entry([(100, [])])
        res = simulate_stl(dummy_compilation(), [e])
        # startup 25 + size 100 + eoi 5 + shutdown 25
        assert res.parallel_cycles == 155

    def test_empty_entry(self):
        res = simulate_stl(dummy_compilation(),
                           [EntryTrace([], 50, frame_id=0)])
        assert res.parallel_cycles == 0
        assert res.sequential_cycles == 50


class TestDependencies:
    def test_raw_violation_detected_and_penalized(self):
        # producer stores at rel 90 (late); consumer loads at rel 5
        producer = (100, [(90, "st", 0x1000)])
        consumer = (100, [(5, "ld", 0x1000)])
        e = entry([producer, consumer])
        res = simulate_stl(dummy_compilation(), [e])
        assert res.violations >= 1
        # consumer cannot finish before producer's store + restart
        assert res.parallel_cycles >= 25 + 90 + 5 + 100

    def test_early_store_late_load_no_violation(self):
        producer = (100, [(5, "st", 0x1000)])
        consumer = (100, [(95, "ld", 0x1000)])
        e = entry([producer, consumer])
        res = simulate_stl(dummy_compilation(), [e])
        assert res.violations == 0

    def test_own_store_forwards(self):
        t = (100, [(10, "st", 0x1000), (20, "ld", 0x1000)])
        other = (100, [(90, "st", 0x1000)])
        e = entry([other, t])
        res = simulate_stl(dummy_compilation(), [e])
        assert res.violations == 0

    def test_pipelined_chain_restarts_once_each(self):
        # store at rel 50, next thread loads at rel 40: one restart
        # aligns them, classic pipelining
        threads = [(100, [(40, "ld", 0x2000), (50, "st", 0x2000)])
                   for _ in range(10)]
        e = entry(threads)
        res = simulate_stl(dummy_compilation(), [e])
        assert res.speedup > 1.5
        assert res.violations <= 10

    def test_forwarded_local_synchronizes_without_violation(self):
        addr = local_address(0, 3)
        comp = dummy_compilation()
        # mark slot 3 as forwarded
        object.__setattr__(comp, "forwarded_slots", frozenset([3]))
        producer = (100, [(90, "lst", addr)])
        consumer = (100, [(5, "lld", addr)])
        e = entry([producer, consumer])
        res = simulate_stl(comp, [e])
        assert res.violations == 0
        # but timing still delayed past the store + comm latency
        assert res.parallel_cycles >= 25 + 90 + 10 + 100

    def test_eliminated_local_free(self):
        addr = local_address(0, 3)
        comp = dummy_compilation()
        object.__setattr__(comp, "eliminated_slots", frozenset([3]))
        producer = (100, [(90, "lst", addr)])
        consumer = (100, [(5, "lld", addr)])
        e = entry([producer, consumer])
        res = simulate_stl(comp, [e])
        assert res.violations == 0
        assert res.speedup > 1.2


class TestOverflow:
    def test_store_buffer_overflow_stalls(self):
        config = HydraConfig(store_buffer_lines=4)
        comp = dummy_compilation(config)
        # each thread writes 6 distinct lines -> overflow at line 5
        threads = []
        for t in range(8):
            events = [(i * 10, "st", (t * 100 + i) * 32)
                      for i in range(6)]
            threads.append((100, events))
        e = entry(threads)
        res = TLSSimulator(comp, config).simulate([e])
        assert res.overflows == 8
        # overflowed threads serialize: speedup collapses
        assert res.speedup < 1.5

    def test_within_budget_no_overflow(self):
        config = HydraConfig(store_buffer_lines=64)
        comp = dummy_compilation(config)
        threads = [(100, [(i, "st", i * 32) for i in range(10)])
                   for _ in range(8)]
        res = TLSSimulator(comp, config).simulate([entry(threads)])
        assert res.overflows == 0

    def test_associativity_conflict_overflows(self):
        # 4-way cache: 5 lines in the same set overflow even though
        # total occupancy is tiny — the imprecision TEST cannot see
        config = HydraConfig(load_buffer_lines=512, load_buffer_assoc=4)
        comp = dummy_compilation(config)
        n_sets = 512 // 4
        events = [(i, "ld", (i * n_sets) * 32) for i in range(5)]
        res = TLSSimulator(comp, config).simulate(
            [entry([(100, events), (100, [])])])
        assert res.overflows == 1


class TestEndToEnd:
    def test_nest_outer_loop_speeds_up(self):
        table, rec, entries = trace_of(NEST_SOURCE, 0)
        comp = compile_stl(table.by_id[0])
        res = simulate_stl(comp, entries)
        assert res.sequential_cycles > 0
        assert res.speedup > 1.5

    def test_aggregate_across_entries(self):
        table, rec, entries = trace_of(NEST_SOURCE, 1)
        comp = compile_stl(table.by_id[1])
        res = simulate_stl(comp, entries)
        assert res.entries == 8
        assert res.threads == 64
