"""Tests over the 26 paper workloads (Table 6 rows)."""

import pytest

from repro.runtime import run_program
from repro.workloads import (
    FLOATING,
    INTEGER,
    MULTIMEDIA,
    all_workloads,
    by_category,
    get_workload,
    workload_names,
)

EXPECTED_NAMES = [
    "Assignment", "BitOps", "compress", "db", "deltaBlue", "EmFloatPnt",
    "Huffman", "IDEA", "jess", "jLex", "MipsSimulator", "monteCarlo",
    "NumHeapSort", "raytrace",
    "euler", "fft", "FourierTest", "LuFactor", "moldyn", "NeuralNet",
    "shallow",
    "decJpeg", "encJpeg", "h263dec", "mpegVideo", "mp3",
]


class TestRegistry:
    def test_all_26_in_table6_order(self):
        assert workload_names() == EXPECTED_NAMES

    def test_categories_match_table6(self):
        assert len(by_category(INTEGER)) == 14
        assert len(by_category(FLOATING)) == 7
        assert len(by_category(MULTIMEDIA)) == 5

    def test_lookup(self):
        assert get_workload("Huffman").name == "Huffman"
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_analyzable_column_shape(self):
        # Table 6 column (a): less than a third of the benchmarks are
        # statically analyzable, and they are concentrated in FP
        analyzable = [w for w in all_workloads() if w.analyzable]
        assert 0 < len(analyzable) <= len(all_workloads()) // 3 + 2
        fp = [w for w in analyzable if w.category == FLOATING]
        assert len(fp) >= len(analyzable) - 2

    def test_data_sensitive_rows(self):
        # the paper flags Assignment, db, euler, fft, LuFactor,
        # NeuralNet, shallow as data-set sensitive
        flagged = {w.name for w in all_workloads() if w.data_sensitive}
        for name in ("Assignment", "db", "euler", "LuFactor",
                     "NeuralNet", "shallow"):
            assert name in flagged


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_workload_compiles_and_matches_golden(name, goldens):
    w = get_workload(name)
    result = run_program(w.compile())
    gold = goldens[name]
    assert result.return_value == gold["return_value"]
    assert result.instructions == gold["instructions"]
    assert result.cycles == gold["cycles"]


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_workload_has_candidate_loops(name):
    from repro.cfg import find_candidates
    w = get_workload(name)
    table = find_candidates(w.compile())
    assert table.loop_count >= 2
    assert table.candidates(), "no candidate STLs in %s" % name
