"""The workload synthesizer: determinism, registry behavior, and the
parallelism labels as end-to-end oracles.

Determinism is the load-bearing property — an instance is addressed
only by ``(seed, family, index)``, so replay hints, pinned goldens,
and the atlas bounds all assume regeneration is byte-identical no
matter what was generated before or in what order."""

import random

import pytest

from repro.synth.families import (
    CLASS_SERIAL,
    DEFAULT_PER_FAMILY,
    DEFAULT_SYNTH_SEED,
    FAMILIES,
    PARALLEL_CLASSES,
    default_corpus,
    family_names,
    generate_corpus,
    generate_family,
    generate_instance,
)
from repro.synth.oracle import (
    PARALLEL_MIN_SPEEDUP,
    SERIAL_MAX_SPEEDUP,
    label_task,
    run_label_oracle,
)
from repro.workloads.registry import (
    INTEGER,
    SYNTHETIC,
    Workload,
    all_workloads,
    by_category,
    get_workload,
    register,
    register_family,
    reset_synthetic,
    unregister_family,
    workload_names,
)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        for family in family_names():
            first = generate_instance(family, 2, 424242)
            again = generate_instance(family, 2, 424242)
            assert first.source() == again.source()
            assert first.label.to_dict() == again.label.to_dict()

    def test_call_order_does_not_perturb(self):
        """Instance i depends only on (seed, family, i) — generating
        the corpus in any order, or other instances in between, leaves
        every source byte-identical."""
        forward = [generate_instance("graph", i, 99).source()
                   for i in range(6)]
        # interleave unrelated generations, then regenerate backwards
        for family in family_names():
            generate_family(family, 3, 123456)
        backward = [generate_instance("graph", i, 99).source()
                    for i in reversed(range(6))]
        assert forward == list(reversed(backward))

    def test_prior_use_of_global_rng_does_not_perturb(self):
        """Generators never touch the global random module state."""
        baseline = generate_instance("mixed", 4, 77).source()
        random.seed(0)
        random.random()
        assert generate_instance("mixed", 4, 77).source() == baseline

    def test_distinct_indices_and_seeds_differ(self):
        a = generate_instance("stencil", 0, 5).source()
        b = generate_instance("stencil", 1, 5).source()
        c = generate_instance("stencil", 0, 6).source()
        assert a != b
        assert a != c

    def test_registered_corpus_matches_direct_generation(self):
        """The lazy-loaded registry corpus is the same bytes as a
        direct generate_instance call at the pinned defaults."""
        for family in family_names():
            registered = get_workload("synth-%s-007" % family)
            direct = generate_instance(family, 7, DEFAULT_SYNTH_SEED)
            assert registered.source() == direct.source()

    def test_every_instance_compiles_and_carries_a_valid_label(self):
        for w in default_corpus():
            w.compile()
            label = w.label
            assert label.expected_class in PARALLEL_CLASSES \
                or label.expected_class == CLASS_SERIAL
            if label.expected_class == CLASS_SERIAL:
                assert label.carried, \
                    "serial labels must name the carried dependence"

    def test_replay_hint_regenerates_the_instance(self):
        """The hint's --per-family N covers indices 0..N-1, so the
        failing instance is the last one it regenerates."""
        w = generate_instance("chase", 3, DEFAULT_SYNTH_SEED)
        hint = w.replay_hint()
        assert "--families chase" in hint
        assert "--seed %d" % DEFAULT_SYNTH_SEED in hint
        assert "--per-family 4" in hint
        corpus = generate_corpus(families=["chase"], per_family=4,
                                 base_seed=DEFAULT_SYNTH_SEED)
        assert corpus[-1].source() == w.source()


class TestRegistry:
    def test_duplicate_workload_rejected(self):
        with pytest.raises(ValueError, match="duplicate workload"):
            register(Workload("BitOps", INTEGER, "imposter",
                              "func main() { return 0; }"))

    def test_duplicate_family_rejected(self):
        # the built-in families registered when repro.synth imported
        get_workload("synth-chase-000")  # force the lazy load
        with pytest.raises(ValueError, match="duplicate .*family"):
            register_family("chase", lambda: [])

    def test_default_views_exclude_synthetic(self):
        names = workload_names()
        assert not any(n.startswith("synth-") for n in names)
        assert all(w.category != SYNTHETIC for w in all_workloads())

    def test_synthetic_ordering_is_stable(self):
        first = [w.name for w in by_category(SYNTHETIC)]
        again = [w.name for w in by_category(SYNTHETIC)]
        assert first == again
        assert len(first) >= 5 * 20
        # family blocks in registration order, indices ascending
        assert first[:2] == ["synth-stencil-000", "synth-stencil-001"]
        with_synth = workload_names(include_synthetic=True)
        assert with_synth == workload_names() + first

    def test_reset_synthetic_repopulates_defaults(self):
        before = [w.name for w in by_category(SYNTHETIC)]
        reset_synthetic()
        assert by_category(SYNTHETIC) != []  # lazily repopulated
        assert [w.name for w in by_category(SYNTHETIC)] == before
        assert len(workload_names()) == 26

    def test_extra_family_is_isolated_and_removable(self):
        extra = [Workload("synth-extra-%03d" % i, SYNTHETIC, "extra",
                          "func main() { return %d; }" % i)
                 for i in range(3)]
        register_family("extra", lambda: extra)
        try:
            names = [w.name for w in by_category(SYNTHETIC)]
            assert "synth-extra-000" in names
            assert get_workload("synth-extra-001") is extra[1]
            # the Table 6 views never see it
            assert "synth-extra-000" not in workload_names()
        finally:
            unregister_family("extra")
        names = [w.name for w in by_category(SYNTHETIC)]
        assert "synth-extra-000" not in names
        assert len(names) >= 5 * DEFAULT_PER_FAMILY
        with pytest.raises(KeyError):
            get_workload("synth-extra-000")

    def test_loader_must_yield_synthetic_category(self):
        register_family(
            "rogue", lambda: [Workload("rogue-0", INTEGER, "rogue",
                                       "func main() { return 0; }")])
        try:
            with pytest.raises(ValueError, match="non-synthetic"):
                by_category(SYNTHETIC)
        finally:
            unregister_family("rogue")
        assert by_category(SYNTHETIC) != []


class TestLabelOracle:
    """Labels checked through the full pipeline — stage 1 through the
    TLS simulation — under the multi-model argmax."""

    @pytest.mark.parametrize("family", family_names())
    def test_label_holds_end_to_end(self, family, synth_replay):
        w = get_workload("synth-%s-000" % family)
        synth_replay(w)
        row = label_task(w)
        assert row.satisfied, row.detail
        if row.parallel:
            assert row.actual_speedup >= PARALLEL_MIN_SPEEDUP
        else:
            assert row.actual_speedup <= SERIAL_MAX_SPEEDUP

    def test_doacross_wins_a_doacross_friendly_loop(self, synth_replay):
        """On a reduction instance the per-loop argmax must actually
        pick the DOACROSS model for at least one selected loop — the
        synthesizer exercises the model-selection path, not just
        hydra-tls everywhere."""
        from repro.jrpm.pipeline import Jrpm

        w = get_workload("synth-reduction-004")
        synth_replay(w)
        report = Jrpm(source=w.source(), name=w.name,
                      models="all").run()
        models = {sel.model for sel in report.selection.selected}
        assert "doacross" in models

    def test_label_oracle_over_a_subset(self, synth_replay):
        corpus = [get_workload("synth-%s-001" % f)
                  for f in family_names()]
        for w in corpus:
            synth_replay(w)
        report = run_label_oracle(instances=corpus)
        assert report.violations() == []
        assert len(report.rows) == len(corpus)
        rendered = report.render()
        assert "label oracle: 5/5" in rendered


class TestErrorAtlas:
    def test_chase_breaks_the_fallback_bound(self, synth_replay):
        """The atlas's reason to exist: the chase family produces
        estimator errors beyond the 40% fallback the conformance
        oracle applies to unmeasured programs, while staying inside
        its own measured family bound."""
        from repro.conformance.oracle import DEFAULT_ERROR_BOUND
        from repro.synth.atlas import build_atlas

        instances = [get_workload("synth-%s-000" % f)
                     for f in family_names()]
        for w in instances:
            synth_replay(w)
        atlas = build_atlas(instances=instances)
        assert atlas.violations() == []
        assert "chase" in atlas.breakers()
        chase = atlas.family_stats("chase")
        assert chase.max_error > DEFAULT_ERROR_BOUND
        assert chase.max_error <= atlas.bound_for("chase")

    def test_conformance_oracle_accepts_family_bounds(self,
                                                      synth_replay):
        """run_oracle gates the synthetic corpus once the atlas's
        per-family ceilings ride in as workload_bounds — the wiring
        jrpm conform --synth builds on."""
        from repro.conformance.oracle import run_oracle
        from repro.synth.atlas import (
            synthetic_known_mismatches,
            synthetic_workload_bounds,
        )

        instances = [get_workload("synth-chase-000"),
                     get_workload("synth-graph-000")]
        for w in instances:
            synth_replay(w)
        report = run_oracle(
            workloads=instances,
            workload_bounds=synthetic_workload_bounds(instances),
            known_mismatches=synthetic_known_mismatches(instances))
        assert report.violations() == []
        # without the measured bounds, chase trips the fallback —
        # and its winner ranking flips for the same reason
        bare = run_oracle(workloads=instances, workload_bounds={})
        violations = bare.violations()
        assert any("synth-chase-000" in v and "exceeds" in v
                   for v in violations)
        assert any("synth-chase-000" in v and "winner" in v
                   for v in violations)
