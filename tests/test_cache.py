"""Tests for the pipeline artifact cache.

Two properties matter: a cache hit must reproduce the cold run's
numbers exactly, and mutating one key component must invalidate
exactly the stages that depend on it — no more (wasted work), no less
(stale results).
"""

import os
import pickle

import pytest

from repro.hydra import HydraConfig
from repro.jit.annotate import AnnotationLevel
from repro.jrpm.cache import (
    STAGE_ANNOTATE,
    STAGE_COMPILE,
    STAGE_PROFILE,
    STAGE_SEQUENTIAL,
    ArtifactCache,
    CorruptBlobError,
    blob_stage,
    cache_key,
    frame_blob,
    unframe_blob,
)
from repro.jrpm.pipeline import Jrpm
from repro.runtime.costs import CostModel
from repro.workloads import get_workload

REPORT_FIELDS = [
    "sequential_cycles", "profiling_slowdown", "predicted_speedup",
    "actual_speedup", "coverage",
]


def _run(cache=None, name="IDEA", **kwargs):
    w = get_workload(name)
    return Jrpm(source=w.source(), name=w.name, cache=cache,
                **kwargs).run(simulate_tls=True)


def _misses_of(cache, before):
    return {s: cache.misses.get(s, 0) - before.get(s, 0)
            for s in set(cache.misses) | set(before)
            if cache.misses.get(s, 0) != before.get(s, 0)}


class TestHitCorrectness:
    def test_warm_run_equals_cold_run(self):
        baseline = _run()  # no cache at all
        cache = ArtifactCache()
        cold = _run(cache)
        warm = _run(cache)
        for field in REPORT_FIELDS:
            assert getattr(baseline, field) == getattr(cold, field)
            assert getattr(cold, field) == getattr(warm, field), field
        assert warm.outcome.actual_speedup == cold.outcome.actual_speedup
        assert cache.misses == {s: 1 for s in (
            STAGE_COMPILE, STAGE_ANNOTATE, STAGE_SEQUENTIAL,
            STAGE_PROFILE)}
        assert cache.hits == {s: 1 for s in (
            STAGE_COMPILE, STAGE_ANNOTATE, STAGE_SEQUENTIAL,
            STAGE_PROFILE)}

    def test_runtime_patching_does_not_leak_into_cache(self):
        # a low convergence threshold makes the profiled run patch
        # READSTATS sites in the annotated program; the cached annotate
        # artifact must stay pristine, so a warm profile re-run (fresh
        # threshold -> profile miss, annotate hit) matches a cold one
        cache = ArtifactCache()
        cold = _run(cache, name="BitOps", convergence_threshold=200)
        fresh = _run(name="BitOps", convergence_threshold=150)
        warm = _run(cache, name="BitOps", convergence_threshold=150)
        assert cache.hits[STAGE_ANNOTATE] == 1
        assert cache.misses[STAGE_PROFILE] == 2
        for field in REPORT_FIELDS:
            assert getattr(warm, field) == getattr(fresh, field), field
        assert cold.profiling_slowdown != 1.0  # sanity: it profiled

    def test_fetched_artifacts_are_fresh_copies(self):
        cache = ArtifactCache()
        first = _run(cache)
        second = _run(cache)
        assert first.program is not second.program
        assert first.device is not second.device
        assert first.annotated.program is not second.annotated.program


class TestStageInvalidation:
    def test_source_invalidates_everything(self):
        cache = ArtifactCache()
        _run(cache, name="IDEA")
        before = dict(cache.misses)
        _run(cache, name="monteCarlo")
        assert set(_misses_of(cache, before)) == {
            STAGE_COMPILE, STAGE_ANNOTATE, STAGE_SEQUENTIAL,
            STAGE_PROFILE}

    def test_level_invalidates_annotate_and_profile(self):
        cache = ArtifactCache()
        _run(cache)
        before = dict(cache.misses)
        _run(cache, level=AnnotationLevel.BASE)
        assert set(_misses_of(cache, before)) == {
            STAGE_ANNOTATE, STAGE_PROFILE}

    def test_cost_model_invalidates_runs_not_compile(self):
        cache = ArtifactCache()
        _run(cache)
        before = dict(cache.misses)
        pricier = CostModel()
        pricier.op_costs = dict(pricier.op_costs)
        first_op = next(iter(pricier.op_costs))
        pricier.op_costs[first_op] += 1
        _run(cache, cost_model=pricier)
        assert set(_misses_of(cache, before)) == {
            STAGE_SEQUENTIAL, STAGE_PROFILE}

    def test_device_geometry_invalidates_profile_only(self):
        cache = ArtifactCache()
        _run(cache)
        before = dict(cache.misses)
        _run(cache, config=HydraConfig(heap_ts_fifo_lines=4))
        assert set(_misses_of(cache, before)) == {STAGE_PROFILE}

    def test_convergence_threshold_invalidates_profile_only(self):
        cache = ArtifactCache()
        _run(cache)
        before = dict(cache.misses)
        _run(cache, convergence_threshold=500)
        assert set(_misses_of(cache, before)) == {STAGE_PROFILE}

    def test_selection_only_knobs_keep_the_profile(self):
        # n_cpus and the Table 2 overheads feed Equation 2 / the TLS
        # replay, not trace collection: everything should hit
        cache = ArtifactCache()
        base = _run(cache)
        before = dict(cache.misses)
        other = _run(cache, config=HydraConfig(
            n_cpus=8, violation_restart_overhead=100))
        assert _misses_of(cache, before) == {}
        # and the knob still took effect downstream
        assert other.selection is not base.selection


class TestBlobStore:
    def test_disk_roundtrip_across_instances(self, tmp_path):
        first = ArtifactCache(directory=str(tmp_path))
        cold = _run(first)
        second = ArtifactCache(directory=str(tmp_path))
        warm = _run(second)
        assert second.hit_count == 4 and second.miss_count == 0
        for field in REPORT_FIELDS:
            assert getattr(cold, field) == getattr(warm, field)

    def test_memory_only_cache_has_no_files(self):
        cache = ArtifactCache()
        _run(cache)
        assert cache.directory is None

    def test_program_mode_bypasses_cache(self):
        cache = ArtifactCache()
        program = get_workload("IDEA").compile()
        report = Jrpm(program=program, name="IDEA",
                      cache=cache).run(simulate_tls=False)
        assert report.sequential_cycles > 0
        assert cache.hit_count == 0 and cache.miss_count == 0

    def test_render_and_snapshot(self):
        cache = ArtifactCache()
        _run(cache)
        text = cache.render()
        for stage in (STAGE_COMPILE, STAGE_PROFILE):
            assert stage in text
        snap = cache.snapshot()
        assert snap[STAGE_COMPILE] == {"hits": 0, "misses": 1,
                                       "corrupt": 0}

    def test_key_stability_and_sensitivity(self):
        k1 = cache_key("compile", "src", False)
        assert k1 == cache_key("compile", "src", False)
        assert k1 != cache_key("compile", "src", True)
        assert k1 != cache_key("annotate", "src", False)
        with pytest.raises(TypeError):
            cache_key("compile", object())


def _stage_blobs(directory, stage):
    """Paths of the on-disk blobs belonging to one stage."""
    return [os.path.join(directory, n)
            for n in sorted(os.listdir(directory))
            if n.endswith(".pkl")
            and blob_stage(os.path.join(directory, n)) == stage]


class TestBlobIntegrity:
    """Corrupt disk state must cost a recompute, never the run."""

    def test_frame_roundtrip(self):
        payload = pickle.dumps({"x": 1})
        framed = frame_blob("compile", payload)
        assert unframe_blob(framed) == ("compile", payload)

    def test_unframe_rejects_damage(self):
        payload = pickle.dumps([1, 2, 3])
        framed = frame_blob("profile", payload)
        with pytest.raises(CorruptBlobError):
            unframe_blob(framed[:len(framed) // 2])  # truncated
        with pytest.raises(CorruptBlobError):
            unframe_blob(b"not a blob at all")       # no magic
        flipped = bytearray(framed)
        flipped[-1] ^= 0xFF
        with pytest.raises(CorruptBlobError):
            unframe_blob(bytes(flipped))             # bit flip

    def test_blob_stage_reads_header(self, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        _run(cache)
        stages = {blob_stage(os.path.join(str(tmp_path), n))
                  for n in os.listdir(str(tmp_path))}
        assert stages == {STAGE_COMPILE, STAGE_ANNOTATE,
                          STAGE_SEQUENTIAL, STAGE_PROFILE}

    def test_truncated_blob_is_a_miss_and_quarantined(self, tmp_path):
        # regression: a hand-truncated blob used to crash pickle.loads
        # and take the whole pipeline down with it
        warm = ArtifactCache(directory=str(tmp_path))
        cold_report = _run(warm)
        path = _stage_blobs(str(tmp_path), STAGE_COMPILE)[0]
        os.truncate(path, os.path.getsize(path) // 2)

        fresh = ArtifactCache(directory=str(tmp_path))
        report = _run(fresh)
        assert fresh.corrupt == {STAGE_COMPILE: 1}
        assert fresh.misses[STAGE_COMPILE] == 1
        assert fresh.hits.get(STAGE_COMPILE, 0) == 0
        # the evidence is kept, the slot recomputed and re-stored
        assert os.path.exists(path + ".corrupt")
        assert os.path.exists(path)
        assert blob_stage(path) == STAGE_COMPILE
        for field in REPORT_FIELDS:
            assert getattr(report, field) == getattr(cold_report, field)

    def test_unpicklable_payload_is_a_miss_and_quarantined(
            self, tmp_path):
        # a payload that passes its checksum but cannot unpickle
        # (schema drift, a class that moved) must also demote to a miss
        warm = ArtifactCache(directory=str(tmp_path))
        _run(warm)
        path = _stage_blobs(str(tmp_path), STAGE_ANNOTATE)[0]
        with open(path, "wb") as handle:
            handle.write(frame_blob(STAGE_ANNOTATE, b"\x80\x04 junk"))

        fresh = ArtifactCache(directory=str(tmp_path))
        report = _run(fresh)
        assert fresh.corrupt == {STAGE_ANNOTATE: 1}
        assert fresh.misses[STAGE_ANNOTATE] == 1
        assert os.path.exists(path + ".corrupt")
        assert report.sequential_cycles > 0

    def test_snapshot_merges_corrupt_counter(self, tmp_path):
        from repro.jrpm.cache import diff_stats, merge_stats

        cache = ArtifactCache(directory=str(tmp_path))
        _run(cache)
        path = _stage_blobs(str(tmp_path), STAGE_COMPILE)[0]
        os.truncate(path, 10)
        fresh = ArtifactCache(directory=str(tmp_path))
        before = fresh.snapshot()
        _run(fresh)
        delta = diff_stats(fresh.snapshot(), before)
        assert delta[STAGE_COMPILE]["corrupt"] == 1
        merged = merge_stats({}, delta)
        merged = merge_stats(merged, delta)
        assert merged[STAGE_COMPILE]["corrupt"] == 2
        assert "corrupt" in fresh.render()

    def test_concurrent_writers_never_tear_a_blob(self, tmp_path):
        # regression: the tmp suffix used to be pid-only, so two
        # threads in one process could collide mid-write
        import threading

        cache = ArtifactCache(directory=str(tmp_path))
        value = list(range(2048))
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    cache.store("compile", "samekey", value)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert not [n for n in os.listdir(str(tmp_path)) if ".tmp." in n]
        fresh = ArtifactCache(directory=str(tmp_path))
        hit, got = fresh.fetch("compile", "samekey")
        assert hit and got == value
