"""Unit tests for the TEST device (bank array, event routing,
dynamic nesting, convergence)."""

import pytest

from repro.errors import TracerError
from repro.hydra import HydraConfig
from repro.tracer import TestDevice


class TestEventRouting:
    def test_heap_raw_dependency_detected(self):
        dev = TestDevice()
        dev.on_sloop(0, 0, 100)
        dev.on_store(0x1000, 150)
        dev.on_eoi(0, 200)
        dev.on_load(0x1000, 230)
        dev.on_eoi(0, 300)
        dev.on_eloop(0, 310)
        dev.finish()
        st = dev.stats[0]
        assert st.arcs_prev == 1
        assert st.arc_len_prev == 80

    def test_word_granular_addresses(self):
        dev = TestDevice()
        dev.on_sloop(0, 0, 100)
        dev.on_store(0x1000, 150)
        dev.on_eoi(0, 200)
        dev.on_load(0x1004, 230)  # adjacent word: no dependence
        dev.on_eoi(0, 300)
        dev.on_eloop(0, 310)
        assert dev.stats[0].arcs_prev == 0

    def test_local_events_respect_frame(self):
        dev = TestDevice()
        dev.register_loop_locals(0, [2])
        dev.on_sloop(0, 1, 100, frame_id=7)
        dev.on_local_store(7, 2, 150)
        dev.on_eoi(0, 200)
        # same slot, different frame: must not form an arc
        dev.on_local_load(9, 2, 230)
        dev.on_eoi(0, 300)
        dev.on_eloop(0, 310)
        assert dev.stats[0].arcs_prev == 0

    def test_local_events_respect_reserved_slots(self):
        dev = TestDevice()
        dev.register_loop_locals(0, [2])
        dev.on_sloop(0, 1, 100, frame_id=7)
        dev.on_local_store(7, 3, 150)   # slot 3 not reserved
        dev.on_eoi(0, 200)
        dev.on_local_load(7, 3, 230)
        dev.on_eoi(0, 300)
        dev.on_eloop(0, 310)
        assert dev.stats[0].arcs_prev == 0

    def test_reserved_local_forms_arc(self):
        dev = TestDevice()
        dev.register_loop_locals(0, [2])
        dev.on_sloop(0, 1, 100, frame_id=7)
        dev.on_local_store(7, 2, 150)
        dev.on_eoi(0, 200)
        dev.on_local_load(7, 2, 230)
        dev.on_eoi(0, 300)
        dev.on_eloop(0, 310)
        st = dev.stats[0]
        assert st.arcs_prev == 1
        assert st.local_arcs == 1

    def test_nested_loops_attribute_arcs_to_right_level(self):
        # store in one outer iteration, load in the next, with an inner
        # loop entered fresh in between: only the outer sees the arc
        dev = TestDevice()
        dev.on_sloop(0, 0, 0)          # outer
        dev.on_sloop(1, 0, 10)         # inner entry 1
        dev.on_store(0x2000, 20)
        dev.on_eoi(1, 30)
        dev.on_eloop(1, 40)
        dev.on_eoi(0, 50)              # outer iteration boundary
        dev.on_sloop(1, 0, 60)         # inner entry 2
        dev.on_load(0x2000, 70)
        dev.on_eoi(1, 80)
        dev.on_eloop(1, 90)
        dev.on_eoi(0, 100)
        dev.on_eloop(0, 110)
        dev.finish()
        assert dev.stats[0].arcs_prev == 1
        assert dev.stats[1].arcs_prev == 0
        assert dev.stats[1].arcs_earlier == 0


class TestBankManagement:
    def test_bank_exhaustion_disables_deep_loops(self):
        dev = TestDevice(HydraConfig(n_comparator_banks=2))
        dev.on_sloop(0, 0, 0)
        dev.on_sloop(1, 0, 10)
        dev.on_sloop(2, 0, 20)  # no bank left
        assert dev.n_unbanked_activations == 1
        dev.on_eloop(2, 30)
        dev.on_eloop(1, 40)
        dev.on_eloop(0, 50)
        assert 2 not in dev.stats or dev.stats[2].profiled_threads == 0

    def test_banks_freed_on_eloop(self):
        dev = TestDevice(HydraConfig(n_comparator_banks=1))
        dev.on_sloop(0, 0, 0)
        dev.on_eoi(0, 10)
        dev.on_eloop(0, 20)
        dev.on_sloop(1, 0, 30)   # bank must be free again
        dev.on_eoi(1, 40)
        dev.on_eloop(1, 50)
        assert dev.n_unbanked_activations == 0
        assert dev.stats[1].profiled_threads == 1

    def test_mismatched_eloop_raises_in_strict_mode(self):
        dev = TestDevice()
        dev.on_sloop(0, 0, 0)
        with pytest.raises(TracerError):
            dev.on_eloop(5, 10)

    def test_unbalanced_end_of_run_raises(self):
        dev = TestDevice()
        dev.on_sloop(0, 0, 0)
        with pytest.raises(TracerError):
            dev.finish()

    def test_non_strict_mode_tolerates_mismatch(self):
        dev = TestDevice(strict=False)
        dev.on_eoi(3, 10)
        dev.on_eloop(3, 20)
        dev.finish()


class TestDynamicNesting:
    def test_dynamic_parents_recorded_through_markers(self):
        dev = TestDevice()
        dev.on_sloop(0, 0, 0)
        dev.on_sloop(1, 0, 10)
        dev.on_eloop(1, 20)
        dev.on_eloop(0, 30)
        dev.finish()
        assert dev.dominant_parent(1) == 0
        assert dev.dominant_parent(0) == -1

    def test_dominant_parent_is_most_frequent(self):
        dev = TestDevice()
        for _ in range(3):
            dev.on_sloop(0, 0, 0)
            dev.on_sloop(2, 0, 1)
            dev.on_eloop(2, 2)
            dev.on_eloop(0, 3)
        dev.on_sloop(1, 0, 4)
        dev.on_sloop(2, 0, 5)
        dev.on_eloop(2, 6)
        dev.on_eloop(1, 7)
        assert dev.dominant_parent(2) == 0

    def test_max_dynamic_depth(self):
        dev = TestDevice()
        dev.on_sloop(0, 0, 0)
        dev.on_sloop(1, 0, 1)
        dev.on_sloop(2, 0, 2)
        dev.on_eloop(2, 3)
        dev.on_eloop(1, 4)
        dev.on_eloop(0, 5)
        assert dev.max_dynamic_depth() == 3


class TestConvergence:
    def _run_entries(self, dev, loop_id, n, start=0):
        t = start
        for _ in range(n):
            dev.on_sloop(loop_id, 0, t)
            dev.on_eoi(loop_id, t + 10)
            dev.on_eloop(loop_id, t + 12)
            t += 20
        return t

    def test_loop_converges_by_entries(self):
        fired = []
        dev = TestDevice(convergence_threshold=1000,
                         on_converged=fired.append)
        self._run_entries(dev, 0, 60)
        assert 0 in dev.converged
        assert fired == [0]

    def test_stats_keep_counting_after_convergence(self):
        dev = TestDevice(convergence_threshold=1000)
        self._run_entries(dev, 0, 80)
        st = dev.stats[0]
        assert st.entries == 80
        assert st.threads == 80
        assert st.profiled_threads < st.threads

    def test_sampled_reprofiling_still_collects(self):
        dev = TestDevice(convergence_threshold=1000)
        dev.sample_every = 4
        self._run_entries(dev, 0, 100)
        st = dev.stats[0]
        # profiled threads grow past the convergence point via sampling
        assert st.profiled_threads > 50

    def test_no_threshold_never_converges(self):
        dev = TestDevice()
        self._run_entries(dev, 0, 100)
        assert not dev.converged

    def test_bank_stealing_from_overflowing_outer(self):
        # a single bank, held by an outer loop that overflows every
        # thread; when the inner loop asks, the device steals the bank
        from repro.hydra import HydraConfig
        dev = TestDevice(HydraConfig(n_comparator_banks=1,
                                     store_buffer_lines=1))
        dev.on_sloop(0, 0, 0)      # outer takes the only bank
        cycle = 1
        for t in range(20):        # overflow every iteration
            dev.on_store(cycle * 64, cycle)
            dev.on_store(cycle * 64 + 4096, cycle + 1)
            cycle += 10
            dev.on_eoi(0, cycle)
        dev.on_sloop(1, 0, cycle)  # inner: triggers the steal
        assert dev.n_bank_steals == 1
        dev.on_eoi(1, cycle + 5)
        dev.on_eloop(1, cycle + 6)
        dev.on_eoi(0, cycle + 7)
        dev.on_eloop(0, cycle + 8)
        dev.finish()
        # the inner loop got real statistics
        assert dev.stats[1].profiled_threads == 1

    def test_disable_loop_stops_banking(self):
        dev = TestDevice()
        dev.disable_loop(0)
        self._run_entries(dev, 0, 3)
        assert dev.stats[0].profiled_threads == 0
