"""Unit tests for minijava semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.sema import analyze


def check(source):
    return analyze(parse(source))


def fails(source, fragment):
    with pytest.raises(SemanticError) as exc:
        check(source)
    assert fragment in str(exc.value)


class TestScopes:
    def test_use_before_declaration(self):
        fails("func main() { x = 1; }", "undeclared")

    def test_undeclared_read(self):
        fails("func main() { var y = x; }", "undeclared")

    def test_duplicate_declaration_same_block(self):
        fails("func main() { var x = 1; var x = 2; }", "duplicate")

    def test_shadowing_in_nested_block_allowed(self):
        check("func main() { var x = 1; if (x) { var x = 2; } }")

    def test_block_scope_does_not_leak(self):
        fails("func main() { if (1) { var x = 1; } x = 2; }",
              "undeclared")

    def test_duplicate_parameter(self):
        fails("func f(a, a) { }", "duplicate parameter")

    def test_for_init_scoped_to_loop(self):
        fails("func main() { for (var i = 0; i < 3; i = i + 1) { } "
              "i = 4; }", "undeclared")


class TestCategories:
    def test_array_plus_number_rejected(self):
        fails("func main() { var a = array(4); var x = a + 1; }",
              "numeric")

    def test_indexing_non_array(self):
        fails("func main() { var x = 1; var y = x[0]; }", "non-array")

    def test_numeric_var_cannot_become_array(self):
        fails("func main() { var x = 1; x = array(4); }", "array")

    def test_len_requires_array(self):
        fails("func main() { var x = 1; var n = len(x); }", "array")

    def test_len_of_array_ok(self):
        check("func main() { var a = array(4); var n = len(a); }")

    def test_condition_must_be_numeric(self):
        fails("func main() { var a = array(4); if (a) { } }", "numeric")

    def test_array_element_assignment_ok(self):
        check("func main() { var a = array(4); a[0] = 1; }")

    def test_param_relaxes_to_array_on_indexed_use(self):
        check("func f(a) { a[0] = 1; } func main() { }")

    def test_param_used_with_len(self):
        check("func f(a) { return len(a); } func main() { }")


class TestCalls:
    def test_unknown_function(self):
        fails("func main() { f(); }", "unknown function")

    def test_wrong_arity(self):
        fails("func f(a) { } func main() { f(1, 2); }", "argument")

    def test_intrinsic_arity(self):
        fails("func main() { var x = sqrt(1, 2); }", "argument")
        fails("func main() { var x = min(1); }", "argument")

    def test_builtin_shadowing_rejected(self):
        fails("func sqrt(x) { return x; }", "shadows a builtin")

    def test_void_call_as_value(self):
        fails("func f() { } func main() { var x = f(); }", "void")

    def test_void_call_as_statement_ok(self):
        check("func f() { } func main() { f(); }")

    def test_void_call_as_argument(self):
        fails("func f() { } func g(x) { } func main() { g(f()); }",
              "void")

    def test_duplicate_function(self):
        fails("func f() { } func f() { }", "duplicate function")

    def test_forward_reference_ok(self):
        check("func main() { helper(); } func helper() { }")


class TestReturnsAndLoops:
    def test_inconsistent_returns(self):
        fails("func f(x) { if (x) { return 1; } return; } func main(){}",
              "inconsistent returns")

    def test_consistent_value_returns_ok(self):
        sigs = check(
            "func f(x) { if (x) { return 1; } return 2; } func main(){}")
        assert sigs["f"].returns_value

    def test_void_function_signature(self):
        sigs = check("func f() { return; } func main() { }")
        assert not sigs["f"].returns_value

    def test_break_outside_loop(self):
        fails("func main() { break; }", "outside a loop")

    def test_continue_outside_loop(self):
        fails("func main() { continue; }", "outside a loop")

    def test_break_in_if_inside_loop_ok(self):
        check("func main() { while (1) { if (1) { break; } } }")


class TestErrorPaths:
    """Error sites not reachable through the happy-path suites above:
    void-call plumbing, indexed-store operand checks, and builtin
    arity/category validation."""

    VOID = "func v() { return; } "

    def test_var_init_from_void_call(self):
        fails(self.VOID + "func main() { var x = v(); }",
              "from a void call")

    def test_assign_void_call(self):
        fails(self.VOID + "func main() { var x = 1; x = v(); }",
              "cannot assign a void call")

    def test_return_void_call(self):
        fails(self.VOID + "func main() { return v(); }",
              "cannot return a void call")

    def test_indexed_store_into_non_array(self):
        fails("func main() { var x = 1; x[0] = 2; }",
              "indexed store into a non-array")

    def test_store_index_must_be_numeric(self):
        fails("func main() { var a = array(4); var b = array(4); "
              "a[b] = 1; }", "array index must be numeric")

    def test_store_element_must_be_numeric(self):
        fails("func main() { var a = array(4); var b = array(4); "
              "a[0] = b; }", "array element must be numeric")

    def test_load_index_must_be_numeric(self):
        fails("func main() { var a = array(4); var b = array(4); "
              "var x = a[b]; }", "array index must be numeric")

    def test_array_builtin_arity(self):
        fails("func main() { var a = array(1, 2); }",
              "array(n) takes exactly one argument")

    def test_array_length_must_be_numeric(self):
        fails("func main() { var a = array(4); var b = array(a); }",
              "array length must be numeric")

    def test_len_builtin_arity(self):
        fails("func main() { var a = array(4); var x = len(a, a); }",
              "len(a) takes exactly one argument")

    def test_int_builtin_arity(self):
        fails("func main() { var x = int(1, 2); }",
              "int(x) takes exactly one argument")

    def test_float_argument_must_be_numeric(self):
        fails("func main() { var a = array(4); var x = float(a); }",
              "float() argument must be numeric")

    def test_unary_on_array(self):
        fails("func main() { var a = array(4); var x = -a; }",
              "needs a numeric operand")

    def test_print_argument_must_be_numeric(self):
        fails("func main() { var a = array(4); print(a); }",
              "print argument must be numeric")
