"""Unit tests for the annotating JIT pass."""

from collections import Counter

import pytest

from repro.bytecode import Op, verify_program
from repro.cfg import find_candidates
from repro.jit import AnnotationLevel, annotate_program, compile_stl
from repro.lang import compile_source
from repro.runtime import RecordingListener, run_program

from tests.conftest import NEST_SOURCE


def annotate(source, level=AnnotationLevel.OPTIMIZED, loops=None):
    program = compile_source(source)
    table = find_candidates(program)
    return program, table, annotate_program(program, table, level, loops)


def mark_counter(annotated):
    rec = RecordingListener()
    run_program(annotated.program, listener=rec)
    return Counter((m.kind, m.loop_id) for m in rec.marks), rec


class TestMarkers:
    def test_balanced_sloop_eloop(self):
        _, _, ann = annotate(NEST_SOURCE)
        counts, _ = mark_counter(ann)
        loops = {lid for _, lid in counts}
        for lid in loops:
            assert counts[("sloop", lid)] == counts[("eloop", lid)]

    def test_eoi_counts_match_iterations(self):
        _, _, ann = annotate(NEST_SOURCE)
        counts, _ = mark_counter(ann)
        # outer loop: 8 iterations; inner: 8 entries x 8; sum loop: 64
        eois = sorted(v for (k, _), v in counts.items() if k == "eoi")
        assert eois == [8, 64, 64]

    def test_nesting_well_formed(self):
        _, _, ann = annotate(NEST_SOURCE)
        _, rec = mark_counter(ann)
        stack = []
        for mark in rec.marks:
            if mark.kind == "sloop":
                stack.append(mark.loop_id)
            elif mark.kind == "eloop":
                assert stack and stack[-1] == mark.loop_id
                stack.pop()
            elif mark.kind == "eoi":
                assert stack and stack[-1] == mark.loop_id
        assert stack == []

    def test_semantics_preserved(self):
        program, _, ann = annotate(NEST_SOURCE)
        assert run_program(program).return_value \
            == run_program(ann.program).return_value

    def test_annotated_program_verifies(self):
        _, _, ann = annotate(NEST_SOURCE)
        verify_program(ann.program)

    def test_loop_subset_annotation(self):
        _, table, ann = annotate(NEST_SOURCE, loops=[0])
        counts, _ = mark_counter(ann)
        loops_seen = {lid for _, lid in counts}
        assert loops_seen == {0}

    def test_excluded_loops_never_annotated(self):
        # a pure pointer chase is statically excluded (Section 4.1);
        # the array is initialized without loops so the chase is the
        # program's only natural loop
        src = ("func main() { var a = array(4); "
               "a[0] = 1; a[1] = 3; a[2] = 1; a[3] = 9; "
               "var p = 0; while (p < 8) { p = a[p % 4]; } return p; }")
        _, table, ann = annotate(src)
        assert ann.annotated_loops == {}
        counts, _ = mark_counter(ann)
        assert not counts

    def test_loop_at_function_entry_gets_synthetic_preheader(self):
        src = """
        func spin(n) {
          while (n > 0) { n = n - 1; }
          return n;
        }
        func main() { return spin(5); }
        """
        _, _, ann = annotate(src)
        counts, _ = mark_counter(ann)
        assert sum(v for (k, _), v in counts.items() if k == "sloop") == 1

    def test_return_inside_loop_closes_it(self):
        src = """
        func find(a, v) {
          for (var i = 0; i < len(a); i = i + 1) {
            if (a[i] == v) { return i; }
          }
          return -1;
        }
        func main() {
          var a = array(8);
          a[5] = 3;
          return find(a, 3);
        }
        """
        program, _, ann = annotate(src)
        assert run_program(ann.program).return_value == 5
        counts, _ = mark_counter(ann)
        for (kind, lid), n in counts.items():
            if kind == "sloop":
                assert counts[("eloop", lid)] == n


class TestLocalsAnnotations:
    def test_base_has_more_lwl_than_optimized(self):
        _, _, base = annotate(NEST_SOURCE, AnnotationLevel.BASE)
        _, _, opt = annotate(NEST_SOURCE, AnnotationLevel.OPTIMIZED)

        def lwl_executed(ann):
            class Count(RecordingListener):
                pass
            rec = Count()
            run_program(ann.program, listener=rec)
            return sum(1 for e in rec.mem if e.kind == "lld")

        assert lwl_executed(base) > lwl_executed(opt)

    def test_swl_never_dropped(self):
        # every write to a tracked local must refresh its timestamp
        _, _, base = annotate(NEST_SOURCE, AnnotationLevel.BASE)
        _, _, opt = annotate(NEST_SOURCE, AnnotationLevel.OPTIMIZED)

        def swl_executed(ann):
            rec = RecordingListener()
            run_program(ann.program, listener=rec)
            return sum(1 for e in rec.mem if e.kind == "lst")

        assert swl_executed(base) == swl_executed(opt)

    def test_only_tracked_slots_annotated(self):
        _, table, ann = annotate(NEST_SOURCE)
        tracked = set()
        for cand in ann.annotated_loops.values():
            tracked |= set(cand.tracked_locals)
        for fn in ann.program.functions.values():
            for ins in fn.code:
                if ins.op in (Op.LWL, Op.SWL):
                    assert ins.a in tracked


class TestReadstatsHoisting:
    def test_optimized_hoists_inner_readstats(self):
        _, _, base = annotate(NEST_SOURCE, AnnotationLevel.BASE)
        _, _, opt = annotate(NEST_SOURCE, AnnotationLevel.OPTIMIZED)

        class ReadCount(RecordingListener):
            def __init__(self):
                super().__init__()
                self.reads = 0

            def on_readstats(self, loop_id, cycle):
                self.reads += 1

        def reads(ann):
            rec = ReadCount()
            run_program(ann.program, listener=rec)
            return rec.reads

        assert reads(base) > reads(opt)

    def test_every_annotated_loop_has_readstats_site(self):
        _, _, ann = annotate(NEST_SOURCE)
        sites = set()
        for fn in ann.program.functions.values():
            for ins in fn.code:
                if ins.op == Op.READSTATS:
                    sites.add(ins.a)
        assert sites == set(ann.annotated_loops)


class TestSpeculativeCompilation:
    def test_inductors_and_invariants_eliminated(self):
        program = compile_source(NEST_SOURCE)
        table = find_candidates(program)
        for cand in table.candidates():
            comp = compile_stl(cand)
            for slot in cand.scalar.inductors:
                assert comp.is_eliminated_local(0, slot)
            for slot in cand.scalar.carried:
                assert comp.is_forwarded_local(slot)
                assert not comp.is_eliminated_local(0, slot)

    def test_overheads_from_config(self):
        program = compile_source(NEST_SOURCE)
        table = find_candidates(program)
        comp = compile_stl(table.candidates()[0])
        assert comp.per_entry_overhead == 50
        assert comp.per_thread_overhead == 5
