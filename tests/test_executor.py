"""Tests for the parallel fleet executor.

The contract: jobs=N must be an implementation detail — rows come back
in workload order with field-for-field the same numbers as the serial
loop, and a crashing workload either aborts the fleet (on_error=
"raise") or becomes an error row (on_error="row") without disturbing
its neighbours.
"""

import pytest

from repro.errors import PipelineError
from repro.jrpm.batch import FleetErrorRow, FleetRow, run_fleet
from repro.jrpm.cache import STAGE_PROFILE, ArtifactCache
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.faults import FaultPlan
from repro.workloads import get_workload
from repro.workloads.registry import Workload

SAMPLE = ["IDEA", "monteCarlo", "raytrace"]

#: every Table 6 / figure column a FleetRow exposes
ROW_FIELDS = [
    "name", "loop_count", "dynamic_depth", "selected_count",
    "avg_selected_height", "threads_per_entry", "thread_size",
    "slowdown", "coverage", "predicted_speedup", "actual_speedup",
]

BROKEN = Workload(
    name="broken", category="synthetic",
    description="fails in the parser, for failure-isolation tests",
    source_text="func main( {")


@pytest.fixture(scope="module")
def sample_workloads():
    return [get_workload(n) for n in SAMPLE]


@pytest.fixture(scope="module")
def serial(sample_workloads):
    return run_fleet(sample_workloads, simulate_tls=True)


class TestParallelMatchesSerial:
    def test_rows_field_by_field(self, sample_workloads, serial,
                                 tmp_path_factory):
        cache = ArtifactCache(
            directory=str(tmp_path_factory.mktemp("fleet-cache")))
        parallel = run_fleet(sample_workloads, simulate_tls=True,
                             jobs=2, cache=cache)
        assert len(parallel) == len(serial)
        for s_row, p_row in zip(serial, parallel):
            for field in ROW_FIELDS:
                assert getattr(s_row, field) == getattr(p_row, field), \
                    field

    def test_order_is_workload_order_not_completion_order(
            self, sample_workloads):
        # reversed submission must still yield reversed (i.e. given)
        # order, whatever finishes first
        flipped = list(reversed(sample_workloads))
        result = run_fleet(flipped, simulate_tls=False, jobs=2)
        assert [r.name for r in result] == list(reversed(SAMPLE))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            FleetExecutor(jobs=0)

    def test_parallel_memory_cache_rejected(self):
        with pytest.raises(ValueError):
            FleetExecutor(jobs=2, cache=ArtifactCache())


class TestFailureIsolation:
    def test_serial_raise_default(self, sample_workloads):
        with pytest.raises(Exception):
            run_fleet([BROKEN] + sample_workloads, simulate_tls=False)

    def test_serial_error_row(self, sample_workloads):
        result = run_fleet([sample_workloads[0], BROKEN,
                            sample_workloads[1]],
                           simulate_tls=False, on_error="row")
        assert [type(r) for r in result.rows] == [
            FleetRow, FleetErrorRow, FleetRow]
        assert [r.name for r in result] == [SAMPLE[0], "broken",
                                            SAMPLE[1]]
        bad = result.rows[1]
        assert not bad.ok
        assert bad.error
        assert result.errors == [bad]
        # aggregates cover the healthy rows only
        assert result.median_slowdown > 1.0
        assert "FAILED" in result.render()

    def test_parallel_error_row(self, sample_workloads):
        result = run_fleet([BROKEN, sample_workloads[0]],
                           simulate_tls=False, jobs=2, on_error="row")
        assert not result.rows[0].ok
        assert result.rows[0].trace  # worker traceback shipped home
        assert result.rows[1].ok

    def test_parallel_raise(self, sample_workloads):
        with pytest.raises(PipelineError):
            run_fleet([BROKEN, sample_workloads[0]],
                      simulate_tls=False, jobs=2, on_error="raise")

    def test_invalid_on_error(self):
        with pytest.raises(ValueError):
            FleetExecutor(on_error="ignore")

    def test_invalid_timeout_retries_backoff(self):
        with pytest.raises(ValueError):
            FleetExecutor(timeout=0)
        with pytest.raises(ValueError):
            FleetExecutor(retries=-1)
        with pytest.raises(ValueError):
            FleetExecutor(backoff=-0.1)


class TestRaiseSemantics:
    """on_error="raise" contracts on the parallel path: the sweep
    drains, then the first failure *in workload order* surfaces with
    the worker's traceback, carrying the merged cache stats of the
    rows that did complete."""

    def test_first_failure_in_workload_order_not_completion_order(
            self, sample_workloads, tmp_path):
        # IDEA fails late (injected in the profile stage) while BROKEN
        # fails instantly in the parser — completion order is BROKEN
        # first, workload order is IDEA first, and workload order must
        # win
        plan = FaultPlan(str(tmp_path / "faults"))
        plan.raise_in_stage("IDEA", STAGE_PROFILE)
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        with pytest.raises(PipelineError) as excinfo:
            run_fleet([sample_workloads[0], BROKEN,
                       sample_workloads[1]],
                      simulate_tls=False, jobs=2, cache=cache,
                      fault_plan=plan, on_error="raise")
        message = str(excinfo.value)
        assert "'IDEA'" in message
        assert "broken" not in message.split("Traceback")[0]

    def test_worker_traceback_preserved(self, sample_workloads,
                                        tmp_path):
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        with pytest.raises(PipelineError) as excinfo:
            run_fleet([BROKEN, sample_workloads[0]],
                      simulate_tls=False, jobs=2, cache=cache,
                      on_error="raise")
        assert "Traceback" in str(excinfo.value)

    def test_merged_cache_stats_ride_on_the_exception(
            self, sample_workloads, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        with pytest.raises(PipelineError) as excinfo:
            run_fleet([BROKEN] + sample_workloads[:2],
                      simulate_tls=False, jobs=2, cache=cache,
                      on_error="raise")
        stats = excinfo.value.cache_stats
        # the two healthy workloads completed and their worker
        # counters were merged before the raise
        assert sum(c.get("misses", 0) for c in stats.values()) >= 8
        assert excinfo.value.exec_stats == {
            "retries": 0, "timeouts": 0, "crashes": 0}


class TestRetrySemantics:
    def test_transient_parallel_failure_retried_to_success(
            self, sample_workloads, tmp_path):
        plan = FaultPlan(str(tmp_path / "faults"))
        plan.raise_in_stage("IDEA", STAGE_PROFILE)
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        result = run_fleet(sample_workloads[:2], simulate_tls=False,
                           jobs=2, cache=cache, retries=1,
                           backoff=0.0, fault_plan=plan)
        assert all(r.ok for r in result.rows)
        assert result.retry_count == 1

    def test_exhausted_retries_report_attempts(self, sample_workloads,
                                               tmp_path):
        plan = FaultPlan(str(tmp_path / "faults"))
        plan.raise_in_stage("IDEA", STAGE_PROFILE, times=3)
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        result = run_fleet(sample_workloads[:2], simulate_tls=False,
                           jobs=2, cache=cache, on_error="row",
                           retries=2, backoff=0.0, fault_plan=plan)
        row = result.rows[0]
        assert isinstance(row, FleetErrorRow)
        assert row.attempts == 3
        assert result.retry_count == 2
        assert result.rows[1].ok


class TestCacheStatsPlumbing:
    def test_serial_stats_cover_this_run_only(self, sample_workloads):
        cache = ArtifactCache()
        first = run_fleet(sample_workloads[:2], simulate_tls=False,
                          cache=cache)
        assert first.cache_hits == 0
        assert first.cache_misses == 8  # 2 workloads x 4 stages
        second = run_fleet(sample_workloads[:2], simulate_tls=False,
                           cache=cache)
        # the delta, not the cache's lifetime counters
        assert second.cache_hits == 8
        assert second.cache_misses == 0

    def test_parallel_stats_merged_from_workers(self, sample_workloads,
                                                tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        cold = run_fleet(sample_workloads[:2], simulate_tls=False,
                         jobs=2, cache=cache)
        assert cold.cache_misses == 8
        warm = run_fleet(sample_workloads[:2], simulate_tls=False,
                         jobs=2, cache=cache)
        assert warm.cache_hits == 8
        assert warm.cache_misses == 0

    def test_no_cache_no_stats(self, sample_workloads):
        result = run_fleet(sample_workloads[:1], simulate_tls=False)
        assert result.cache_stats == {}
        assert result.cache_hits == 0


class TestSeedableJitter:
    def test_retry_delay_uses_injected_rng(self):
        import random

        a = FleetExecutor(retries=2, backoff=0.5,
                          rng=random.Random(1234))
        b = FleetExecutor(retries=2, backoff=0.5,
                          rng=random.Random(1234))
        delays_a = [a._retry_delay(n) for n in (1, 2, 3)]
        delays_b = [b._retry_delay(n) for n in (1, 2, 3)]
        assert delays_a == delays_b
        # exponential envelope with up-to-25% jitter on top
        for n, delay in zip((1, 2, 3), delays_a):
            base = 0.5 * 2 ** (n - 1)
            assert base <= delay <= base * 1.25

    def test_different_seeds_jitter_differently(self):
        import random

        a = FleetExecutor(backoff=0.5, rng=random.Random(1))
        b = FleetExecutor(backoff=0.5, rng=random.Random(2))
        assert [a._retry_delay(n) for n in (1, 2, 3)] \
            != [b._retry_delay(n) for n in (1, 2, 3)]

    def test_default_rng_still_jitters(self):
        delays = {FleetExecutor(backoff=0.5)._retry_delay(1)
                  for _ in range(8)}
        for delay in delays:
            assert 0.5 <= delay <= 0.625


class TestPersistentPool:
    def test_per_run_overrides(self, sample_workloads):
        """One resident executor serves mixed traffic: run() accepts
        workloads, config, and simulate_tls per call (the service
        scheduler's batching depends on this)."""
        from repro.hydra import HydraConfig

        with FleetExecutor(persistent=True) as ex:
            base = ex.run(sample_workloads[:1], simulate_tls=False)
            tls = ex.run(sample_workloads[:1], simulate_tls=True)
            tuned = ex.run(sample_workloads[:1], simulate_tls=False,
                           config=HydraConfig(n_cpus=8))
        assert base.rows[0].report.outcome is None
        assert tls.rows[0].report.outcome is not None
        assert tuned.rows[0].name == base.rows[0].name

    def test_serial_close_is_idempotent(self, sample_workloads):
        ex = FleetExecutor(persistent=True)
        ex.run(sample_workloads[:1], simulate_tls=False)
        ex.close()
        ex.close()

    def test_parallel_pool_survives_runs(self, sample_workloads,
                                         tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        ex = FleetExecutor(jobs=2, cache=cache, persistent=True)
        try:
            first = ex.run(sample_workloads[:2], simulate_tls=False)
            assert ex._pool is not None
            pool = ex._pool
            second = ex.run(sample_workloads[:2], simulate_tls=False)
            assert ex._pool is pool  # reused, not respawned
        finally:
            ex.close()
        assert ex._pool is None
        assert [r.name for r in first] == [r.name for r in second]
        assert second.cache_hits > 0

    def test_non_persistent_run_leaves_no_pool(self, sample_workloads,
                                               tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        ex = FleetExecutor(jobs=2, cache=cache)
        ex.run(sample_workloads[:1], simulate_tls=False)
        assert ex._pool is None
