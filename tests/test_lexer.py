"""Unit tests for the minijava lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokKind.EOF

    def test_integer_literal(self):
        tok = tokenize("42")[0]
        assert tok.kind is TokKind.INT
        assert tok.text == "42"

    def test_float_literal(self):
        tok = tokenize("3.25")[0]
        assert tok.kind is TokKind.FLOAT
        assert tok.text == "3.25"

    def test_float_with_exponent(self):
        assert tokenize("1.5e3")[0].kind is TokKind.FLOAT
        assert tokenize("2e10")[0].kind is TokKind.FLOAT
        assert tokenize("2e-4")[0].kind is TokKind.FLOAT

    def test_integer_then_method_like_dot_is_error(self):
        # "1.x" — digit, dot, letter: dot isn't part of the number, and
        # '.' is not a legal character in minijava
        with pytest.raises(LexError):
            tokenize("1.x")

    def test_identifier(self):
        tok = tokenize("foo_bar123")[0]
        assert tok.kind is TokKind.IDENT
        assert tok.text == "foo_bar123"

    def test_keywords_recognized(self):
        for kw in ("func", "var", "if", "else", "while", "for",
                   "return", "break", "continue", "print"):
            assert tokenize(kw)[0].kind is TokKind.KEYWORD

    def test_ident_prefixed_by_keyword_is_ident(self):
        assert tokenize("iffy")[0].kind is TokKind.IDENT
        assert tokenize("variable")[0].kind is TokKind.IDENT


class TestOperators:
    def test_multi_char_operators_greedy(self):
        assert texts("a <= b") == ["a", "<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("a == b") == ["a", "==", "b"]
        assert texts("a && b") == ["a", "&&", "b"]
        assert texts("a || b") == ["a", "||", "b"]
        assert texts("a != b") == ["a", "!=", "b"]

    def test_adjacent_single_operators(self):
        # "<" then "=" would be "<=", but "=<" stays two tokens
        assert texts("a =< b") == ["a", "=", "<", "b"]

    def test_punctuation(self):
        assert texts("( ) [ ] { } , ;") == [
            "(", ")", "[", "]", "{", "}", ",", ";"]

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("a @ b")
        assert exc.value.line == 1
        assert exc.value.column == 3


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_comment_does_not_break_line_numbers(self):
        toks = tokenize("// one\n// two\nx")
        assert toks[0].line == 3


class TestRealSnippets:
    def test_statement_token_stream(self):
        stream = texts("var x = a[i] + 1;")
        assert stream == ["var", "x", "=", "a", "[", "i", "]", "+", "1",
                          ";"]

    def test_describe_is_readable(self):
        tok = tokenize("foo")[0]
        assert "foo" in tok.describe()
        assert tokenize("")[0].describe() == "end of input"
