"""Unit tests for Equation 2 STL selection."""

from repro.hydra import HydraConfig
from repro.tracer import TestDevice, select_stls
from repro.tracer.stats import STLStats


def loop_stats(device, loop_id, cycles, threads, entries=1,
               arcs_prev=0, arc_len_prev=0, parent=-1):
    st = device.stats_for(loop_id)
    st.cycles = cycles
    st.threads = threads
    st.entries = entries
    st.profiled_threads = threads
    st.profiled_entries = entries
    st.arcs_prev = arcs_prev
    st.arc_len_prev = arc_len_prev
    device.dynamic_parents.setdefault(loop_id, {})
    device.dynamic_parents[loop_id][parent] = 1
    return st


class TestNestChoice:
    def test_parallel_outer_beats_serial_inner(self):
        dev = TestDevice()
        # outer: arc-free; inner: fully serialized by short arcs
        loop_stats(dev, 0, cycles=100_000, threads=100)
        loop_stats(dev, 1, cycles=90_000, threads=1000, arcs_prev=999,
                   arc_len_prev=999 * 5, parent=0)
        sel = select_stls(dev, total_cycles=120_000)
        assert sel.selected_ids() == [0]

    def test_serial_outer_delegates_to_parallel_inner(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=100_000, threads=100, arcs_prev=99,
                   arc_len_prev=99 * 10)
        loop_stats(dev, 1, cycles=90_000, threads=1000, parent=0)
        sel = select_stls(dev, total_cycles=120_000)
        assert sel.selected_ids() == [1]

    def test_sibling_loops_both_selected(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=50_000, threads=100)
        loop_stats(dev, 1, cycles=60_000, threads=100)
        sel = select_stls(dev, total_cycles=120_000)
        assert sorted(sel.selected_ids()) == [0, 1]

    def test_slow_loops_not_selected(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=100_000, threads=1000, arcs_prev=999,
                   arc_len_prev=999 * 3)
        sel = select_stls(dev, total_cycles=120_000)
        assert sel.selected_ids() == []
        assert sel.coverage == 0.0

    def test_three_level_nest_picks_middle(self):
        dev = TestDevice()
        # outer serial, middle parallel, inner tiny threads (overheads)
        loop_stats(dev, 0, cycles=200_000, threads=10, arcs_prev=9,
                   arc_len_prev=9 * 100)
        loop_stats(dev, 1, cycles=190_000, threads=500, parent=0)
        loop_stats(dev, 2, cycles=180_000, threads=100_000, parent=1)
        sel = select_stls(dev, total_cycles=220_000)
        assert sel.selected_ids() == [1]


class TestProgramAccounting:
    def test_coverage_and_serial_remainder(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=60_000, threads=100)
        sel = select_stls(dev, total_cycles=100_000)
        assert sel.covered_cycles == 60_000
        assert sel.serial_cycles == 40_000
        assert abs(sel.coverage - 0.6) < 1e-9

    def test_predicted_time_includes_serial(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=60_000, threads=100)
        sel = select_stls(dev, total_cycles=100_000)
        # serial 40k + parallel 60k / ~3.9
        assert 50_000 < sel.predicted_cycles < 70_000
        assert 1.0 < sel.predicted_speedup < 2.0

    def test_coverage_never_exceeds_one(self):
        # helper loop dynamically nested under two parents must not be
        # double counted (the antichain rule)
        dev = TestDevice()
        loop_stats(dev, 0, cycles=50_000, threads=100)
        loop_stats(dev, 1, cycles=50_000, threads=100)
        helper = loop_stats(dev, 2, cycles=90_000, threads=1000)
        dev.dynamic_parents[2] = {0: 5, 1: 5}
        sel = select_stls(dev, total_cycles=110_000)
        assert sel.coverage <= 1.0
        chosen = set(sel.selected_ids())
        assert chosen == {2} or chosen == {0, 1}

    def test_min_cycles_filter(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=50, threads=10)
        sel = select_stls(dev, total_cycles=100_000, min_cycles=200)
        assert sel.selected_ids() == []

    def test_significant_filter(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=90_000, threads=100)
        loop_stats(dev, 1, cycles=300, threads=10)
        sel = select_stls(dev, total_cycles=100_000)
        significant = sel.significant(min_coverage=0.005)
        assert [s.loop_id for s in significant] == [0]

    def test_min_speedup_threshold_respected(self):
        dev = TestDevice()
        loop_stats(dev, 0, cycles=100_000, threads=1000, arcs_prev=999,
                   arc_len_prev=999 * 55)
        lax = select_stls(dev, total_cycles=120_000, min_speedup=1.0)
        strict = select_stls(dev, total_cycles=120_000, min_speedup=3.9)
        assert len(lax.selected) >= len(strict.selected)
