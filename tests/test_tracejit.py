"""Trace-JIT unit and exactness tests.

The superblock JIT's contract is observational equivalence with the
generic dispatch loops at every exit — same values, same cycle and
instruction counts, same event stream, same errors.  These tests pin
that contract deterministically (guard failures, budget exits, live
code patching, blacklisting) and cover the surrounding plumbing:
trace verification, env switches, cache-key separation, report and
service observability.
"""

import pytest

from repro.bytecode import BinOp, Op
from repro.bytecode.instructions import Instr
from repro.errors import ExecutionError
from repro.lang import compile_source
from repro.runtime import RecordingListener, TraceListener, run_program
from repro.runtime.interpreter import Interpreter
from repro.runtime.tracejit import (
    TraceJIT,
    TraceJITError,
    resolve_threshold,
    resolve_trace_jit,
    verify_trace,
)

NESTED_LOOPS = """
func main() {
  var a = array(64);
  var s = 0;
  for (var r = 0; r < 6; r = r + 1) {
    for (var i = 0; i < 64; i = i + 1) {
      a[i] = (a[(i + 11) % 64] + r * i) % 997;
    }
  }
  for (var i = 0; i < 64; i = i + 1) { s = (s + a[i]) % 65536; }
  return s;
}
"""


def _observables(result):
    return (result.return_value, result.cycles, result.instructions,
            result.heap.snapshot(), result.printed)


class TestExactness:
    def test_fast_path_identical_with_jit(self):
        program = compile_source(NESTED_LOOPS)
        off = run_program(program, trace_jit=False)
        on = run_program(program, trace_jit=True,
                         trace_jit_threshold=2)
        assert _observables(on) == _observables(off)
        assert on.jit["traces_linked"] >= 1
        assert on.jit["iterations"] > 100

    def test_traced_path_identical_event_stream(self):
        program = compile_source(NESTED_LOOPS)
        ref, jit = RecordingListener(), RecordingListener()
        off = run_program(program, listener=ref, trace_jit=False)
        on = run_program(program, listener=jit, trace_jit=True,
                         trace_jit_threshold=2)
        assert _observables(on) == _observables(off)
        assert [(e.kind, e.address, e.cycle) for e in ref.mem] == \
               [(e.kind, e.address, e.cycle) for e in jit.mem]
        assert [(m.kind, m.cycle, m.loop_id) for m in ref.marks] == \
               [(m.kind, m.cycle, m.loop_id) for m in jit.marks]
        assert on.jit["traces_linked"] >= 1

    def test_jit_disabled_reports_no_stats(self):
        program = compile_source("func main() { return 7; }")
        assert run_program(program, trace_jit=False).jit is None
        assert run_program(program, trace_jit=True).jit is not None

    def test_print_inside_hot_loop(self):
        src = "func main() { var s = 0; " \
              "for (var i = 0; i < 40; i = i + 1) " \
              "{ print i; s = s + i; } return s; }"
        program = compile_source(src)
        off = run_program(program, trace_jit=False)
        on = run_program(program, trace_jit=True, trace_jit_threshold=2)
        assert _observables(on) == _observables(off)
        assert on.printed == list(range(40))


class TestGuardFailure:
    #: branch direction flips at i == 50: the linked trace speculated
    #: the i < 50 arm, so iteration 50 must abort through the guard
    FLIP = """
    func main() {
      var s = 0;
      for (var i = 0; i < 100; i = i + 1) {
        if (i < 50) { s = s + 1; } else { s = s + 3; }
      }
      return s;
    }
    """

    def test_guard_abort_restores_state_exactly(self):
        program = compile_source(self.FLIP)
        off = run_program(program, trace_jit=False)
        on = run_program(program, trace_jit=True, trace_jit_threshold=2)
        assert _observables(on) == _observables(off)
        assert on.return_value == 50 * 1 + 50 * 3
        assert on.jit["guard_failures"] >= 1

    def test_unprofitable_trace_gets_blacklisted(self, monkeypatch):
        # raise the payoff bar above anything this loop can commit:
        # every trace must miss it at the probe point, so the probe
        # must blacklist and execution must fall back to plain
        # dispatch — with identical observables
        import repro.runtime.interpreter as interp_mod
        monkeypatch.setattr(interp_mod, "BLACKLIST_MIN_OPS", 10 ** 6)
        src = """
        func main() {
          var s = 0;
          for (var i = 0; i < 400; i = i + 1) {
            if (i < 8) { s = s + 1; } else { s = s + 2; }
          }
          return s;
        }
        """
        program = compile_source(src)
        off = run_program(program, trace_jit=False)
        on = run_program(program, trace_jit=True, trace_jit_threshold=2)
        assert _observables(on) == _observables(off)
        assert on.jit["traces_blacklisted"] >= 1
        # blacklisted traces stop being invoked at the probe point
        for tr in on.jit["traces"]:
            assert tr["invocations"] <= 32

    def test_alternating_branch_loop_trace_stays_linked(self):
        # every other iteration takes the other arm, so half the
        # invocations side-exit — but each exit still commits the full
        # iteration recorded before it, so the loop trace pays for
        # itself and the payoff probe must keep it; the hot side exit
        # additionally links a tail trace covering the other arm
        src = """
        func main() {
          var s = 0;
          for (var i = 0; i < 400; i = i + 1) {
            if (i % 2) { s = s + 1; } else { s = s + 2; }
          }
          return s;
        }
        """
        program = compile_source(src)
        off = run_program(program, trace_jit=False)
        on = run_program(program, trace_jit=True, trace_jit_threshold=2)
        assert _observables(on) == _observables(off)
        loop_traces = [t for t in on.jit["traces"]
                       if t["exit_pc"] is None]
        # invocations past the probe point == the payoff probe kept it
        assert loop_traces
        assert all(t["invocations"] > 32 for t in loop_traces)
        assert any(t["exit_pc"] is not None for t in on.jit["traces"])
        assert on.jit["guard_failures"] >= 100
        assert on.jit["ops_committed"] > 0

    def test_error_inside_superblock_is_canonical(self):
        # the faulting ASTORE deoptimizes before executing; the generic
        # loop re-raises with the canonical message and location
        src = "func main() { var a = array(32); var i = 0; " \
              "while (1) { a[i] = i; i = i + 1; } }"
        program = compile_source(src)
        with pytest.raises(ExecutionError) as off:
            run_program(program, trace_jit=False)
        with pytest.raises(ExecutionError) as on:
            run_program(program, trace_jit=True, trace_jit_threshold=2)
        assert str(on.value) == str(off.value)

    def test_budget_exhausts_at_exact_instruction(self):
        src = "func main() { var s = 0; " \
              "while (1) { s = (s + 1) % 7; } }"
        program = compile_source(src)
        with pytest.raises(ExecutionError) as off:
            run_program(program, trace_jit=False, max_instructions=5000)
        with pytest.raises(ExecutionError) as on:
            run_program(program, trace_jit=True, trace_jit_threshold=2,
                        max_instructions=5000)
        assert str(on.value) == str(off.value)
        assert "budget" in str(on.value)


class TestRecordingStopRules:
    def test_call_in_loop_blacklists_anchor(self):
        src = """
        func inc(x) { return x + 1; }
        func main() {
          var s = 0;
          for (var i = 0; i < 80; i = i + 1) { s = inc(s); }
          return s;
        }
        """
        program = compile_source(src)
        off = run_program(program, trace_jit=False)
        on = run_program(program, trace_jit=True, trace_jit_threshold=2)
        assert _observables(on) == _observables(off)
        assert on.jit["traces_linked"] == 0
        assert on.jit["traces_blacklisted"] >= 1

    def test_inner_loop_gets_its_own_trace(self):
        program = compile_source(NESTED_LOOPS)
        on = run_program(program, trace_jit=True, trace_jit_threshold=2)
        anchors = {(t["fn"], t["anchor"]) for t in on.jit["traces"]}
        assert len(anchors) >= 2  # inner and trailing loop at least

    def test_rerun_reuses_linked_traces(self):
        program = compile_source(NESTED_LOOPS)
        interp = Interpreter(program, trace_jit=True,
                             trace_jit_threshold=2)
        first = interp.run()
        second = interp.run()
        assert first.cycles == second.cycles
        assert first.return_value == second.return_value
        # same trace cache: linked superblocks are reused (invocation
        # counts accumulate, no new loop traces appear); anchors still
        # inside their foreign-backedge retry budget and side exits
        # that cross the tail hotness threshold may still record
        def loop_traces(result):
            return sum(1 for t in result.jit["traces"]
                       if t["exit_pc"] is None)
        assert loop_traces(second) == loop_traces(first)
        assert second.jit["invocations"] > first.jit["invocations"]


class TestPatchInvalidation:
    MUL_LOOP = "func main() { var s = 1; " \
               "for (var i = 0; i < 50; i = i + 1) " \
               "{ s = (s * 3) % 1000003; } return s; }"

    def _mul_site(self, program):
        fn = program.functions["main"]
        for pc, ins in enumerate(fn.code):
            if ins.op == Op.BIN and ins.sub == int(BinOp.MUL):
                return fn, pc
        raise AssertionError("no MUL emitted")

    def test_patch_after_warm_run_drops_stale_superblocks(self):
        # regression: a linked trace bakes cost prefixes in as
        # constants; patching a site after a warm run must invalidate
        # it, or the rerun would charge the old MUL cost
        program = compile_source(self.MUL_LOOP)
        fn, pc = self._mul_site(program)
        interp = Interpreter(program, trace_jit=True,
                             trace_jit_threshold=2)
        warm = interp.run()
        assert warm.jit["traces_linked"] >= 1
        fn.code[pc] = Instr(Op.NOP)
        interp.patch_cost(fn.name, pc, Op.NOP, fn.code[pc].sub)
        patched = interp.run()
        reference = Interpreter(program, trace_jit=False).run()
        assert patched.cycles == reference.cycles
        assert patched.cycles < warm.cycles
        assert patched.jit["invalidations"] == 1

    def test_mid_run_convergence_patching_stays_exact(self):
        # the profiling runtime rewrites READSTATS sites to NOPs while
        # the run is in flight; epoch side exits must keep the traced
        # superblocks cycle-exact through the patch
        from repro.cfg.candidates import find_candidates
        from repro.hydra.config import DEFAULT_HYDRA
        from repro.jit.annotate import AnnotationLevel, annotate_program
        from repro.jrpm.runtime import ProfilingRuntime
        from repro.runtime.events import (
            ColumnarRecording,
            MulticastListener,
        )
        from repro.tracer.device import TestDevice

        src = """
        func main() {
          var a = array(32);
          var s = 0;
          for (var r = 0; r < 40; r = r + 1) {
            for (var i = 0; i < 32; i = i + 1) {
              a[i] = (a[i] + r + i) % 4093;
            }
            s = (s + a[r % 32]) % 65536;
          }
          return s;
        }
        """

        def profiled(trace_jit):
            program = compile_source(src)
            candidates = find_candidates(program)
            annotated = annotate_program(program, candidates,
                                         AnnotationLevel.OPTIMIZED)
            device = TestDevice(DEFAULT_HYDRA)
            device.convergence_threshold = 8
            for lid, cand in annotated.annotated_loops.items():
                device.register_loop_locals(lid, cand.tracked_locals)
            recording = ColumnarRecording()
            interp = Interpreter(
                annotated.program,
                listener=MulticastListener([device, recording]),
                trace_jit=trace_jit, trace_jit_threshold=2)
            runtime = ProfilingRuntime(annotated.program, interp)
            device.on_converged = runtime.on_converged
            result = interp.run()
            device.finish()
            return result, len(recording)

        off, off_events = profiled(False)
        on, on_events = profiled(True)
        assert (on.return_value, on.cycles, on.instructions) == \
               (off.return_value, off.cycles, off.instructions)
        assert on_events == off_events
        # the convergence callback really fired mid-run
        assert on.jit["invalidations"] >= 1


class TestSwitches:
    def test_env_override_disables(self, monkeypatch):
        monkeypatch.setenv("JRPM_TRACE_JIT", "0")
        program = compile_source(NESTED_LOOPS)
        assert run_program(program).jit is None
        monkeypatch.setenv("JRPM_TRACE_JIT", "1")
        assert run_program(program).jit is not None

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("JRPM_TRACE_JIT", "0")
        assert resolve_trace_jit(True) is True
        monkeypatch.setenv("JRPM_TRACE_JIT", "1")
        assert resolve_trace_jit(False) is False

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("JRPM_TRACE_JIT", raising=False)
        assert resolve_trace_jit(None) is True

    def test_threshold_env(self, monkeypatch):
        monkeypatch.setenv("JRPM_TRACE_JIT_THRESHOLD", "5")
        assert resolve_threshold(None) == 5
        assert resolve_threshold(9) == 9
        monkeypatch.delenv("JRPM_TRACE_JIT_THRESHOLD")
        assert resolve_threshold(0) == 1  # clamped


class TestVerifier:
    def _decoded(self, source="func main() { var s = 0; "
                              "for (var i = 0; i < 9; i = i + 1) "
                              "{ s = s + i; } return s; }"):
        from repro.runtime.interpreter import _decode_one
        program = compile_source(source)
        fn = program.functions["main"]
        return fn, [_decode_one(ins) for ins in fn.code]

    def test_empty_recording_rejected(self):
        fn, code = self._decoded()
        with pytest.raises(TraceJITError):
            verify_trace("main", 0, [], len(code), fn.n_slots)

    def test_call_in_trace_rejected(self):
        fn, code = self._decoded()
        call = (int(Op.CALL), 0, -1, -1, 0, None, "main", ())
        jmp = (int(Op.JMP), 1, -1, -1, 0, None, None, ())
        with pytest.raises(TraceJITError) as exc:
            verify_trace("main", 1, [(1, call, None), (2, jmp, None)],
                         len(code), fn.n_slots)
        assert "may not appear" in str(exc.value)

    def test_unclosed_trace_rejected(self):
        fn, code = self._decoded()
        mov = (int(Op.MOV), 0, 1, -1, 0, None, None, ())
        with pytest.raises(TraceJITError) as exc:
            verify_trace("main", 1, [(1, mov, None)], len(code),
                         fn.n_slots)
        assert "branch or jump" in str(exc.value)

    def test_out_of_frame_slot_rejected(self):
        fn, code = self._decoded()
        mov = (int(Op.MOV), fn.n_slots + 3, 0, -1, 0, None, None, ())
        jmp = (int(Op.JMP), 1, -1, -1, 0, None, None, ())
        with pytest.raises(TraceJITError) as exc:
            verify_trace("main", 1, [(1, mov, None), (2, jmp, None)],
                         len(code), fn.n_slots)
        assert "outside frame" in str(exc.value)

    def test_branch_without_direction_rejected(self):
        fn, code = self._decoded()
        br = (int(Op.BR), 0, 1, 3, 0, None, None, ())
        with pytest.raises(TraceJITError) as exc:
            verify_trace("main", 1, [(1, br, None)], len(code),
                         fn.n_slots)
        assert "no recorded direction" in str(exc.value)


class TestObservability:
    def test_report_carries_trace_jit_block(self, huffman_report):
        from repro.jrpm.report import report_to_dict, validate_report_dict
        data = report_to_dict(huffman_report)
        validate_report_dict(data)
        block = data["trace_jit"]
        assert block is not None
        assert block["sequential"]["traces_linked"] >= 1
        assert block["profiled"]["traces_linked"] >= 1
        for row in block["sequential"]["traces"]:
            assert row["mode"] == "fast"
            assert row["invocations"] >= 1

    def test_render_trace_jit(self, huffman_report):
        from repro.jrpm.report import render_trace_jit
        text = render_trace_jit(huffman_report)
        assert "trace jit" in text
        assert "linked=" in text

    def test_scheduler_merges_counters_into_metrics(self, huffman_report):
        from repro.service.metrics import ServiceMetrics
        from repro.service.scheduler import RequestScheduler

        class _Shell:
            pass

        shell = _Shell()
        shell.metrics = ServiceMetrics()
        RequestScheduler._merge_trace_jit(shell, huffman_report)
        counters = shell.metrics.counters
        assert counters["trace_jit_traces_linked"] >= 2
        assert counters["trace_jit_iterations"] > 0

    def test_jit_snapshot_survives_pickle_without_closures(self):
        import pickle
        program = compile_source(NESTED_LOOPS)
        interp = Interpreter(program, trace_jit=True,
                             trace_jit_threshold=2)
        result = interp.run()
        clone = pickle.loads(pickle.dumps(interp))
        assert isinstance(clone._jit, TraceJIT)
        assert clone._jit.linked == interp._jit.linked
        # and a revived interpreter still runs correctly (re-warms)
        assert clone.run().cycles == result.cycles

    def test_cache_never_aliases_jit_modes(self, tmp_path):
        from repro.jrpm import ArtifactCache, Jrpm
        src = "func main() { var s = 0; " \
              "for (var i = 0; i < 30; i = i + 1) { s = s + i; } " \
              "return s; }"
        cache = ArtifactCache(directory=str(tmp_path))
        on = Jrpm(source=src, name="alias", cache=cache,
                  trace_jit=True).run(simulate_tls=False)
        off = Jrpm(source=src, name="alias", cache=cache,
                   trace_jit=False).run(simulate_tls=False)
        # a shared stage key would have served the JIT-on artifact
        # (with its counter snapshot) to the JIT-off run
        assert getattr(on.sequential, "jit", None) is not None
        assert getattr(off.sequential, "jit", None) is None
        assert on.sequential.cycles == off.sequential.cycles


class TestOptimizeJitComposition:
    """``optimize`` and ``trace_jit`` compose: the flags must neither
    perturb observable semantics together nor alias each other's
    cached artifacts."""

    SRC = NESTED_LOOPS

    def _observables(self, result):
        return (result.return_value, result.heap.snapshot(),
                result.printed)

    def test_all_four_combinations_agree(self):
        from repro.jrpm import Jrpm
        runs = {}
        for optimize in (False, True):
            for jit in (False, True):
                runs[optimize, jit] = Jrpm(
                    source=self.SRC, optimize=optimize,
                    trace_jit=jit).run(simulate_tls=False).sequential
        reference = self._observables(runs[False, False])
        for combo, result in runs.items():
            assert self._observables(result) == reference, combo
        # the JIT is timing-transparent at either optimize setting;
        # the optimizer is not (that is its job), but never slower
        for optimize in (False, True):
            assert runs[optimize, True].cycles \
                == runs[optimize, False].cycles
        assert runs[True, False].cycles <= runs[False, False].cycles
        # both flags really did engage in the combined run
        assert runs[True, True].jit["traces_linked"] >= 1

    def test_cache_keys_compose_without_aliasing(self):
        from repro.jrpm import ArtifactCache, Jrpm
        cache = ArtifactCache()  # memory-only
        combos = [(False, False), (False, True),
                  (True, False), (True, True)]
        for optimize, jit in combos:
            Jrpm(source=self.SRC, cache=cache, optimize=optimize,
                 trace_jit=jit).run(simulate_tls=False)
        # the compile artifact only depends on optimize: two keys,
        # each hit once by the second run sharing its optimize value
        assert cache.misses.get("compile") == 2
        assert cache.hits.get("compile") == 2
        # the sequential artifact depends on both flags: four distinct
        # composed keys, no combination served another's blob
        assert cache.misses.get("sequential") == 4
        assert not cache.hits.get("sequential")
        # warm repeat of every combination hits all stages
        for optimize, jit in combos:
            rerun = Jrpm(source=self.SRC, cache=cache,
                         optimize=optimize,
                         trace_jit=jit).run(simulate_tls=False)
            assert (getattr(rerun.sequential, "jit", None)
                    is not None) == jit
        assert cache.hits.get("sequential") == 4
        assert cache.misses.get("sequential") == 4


class TestFifthPath:
    def test_conformance_fifth_path_runs(self):
        from repro.conformance.invariants import check_source
        outcome = check_source(NESTED_LOOPS, name="tracejit-smoke")
        assert outcome.jit_traces >= 1

    def test_fifth_path_catches_injected_divergence(self, monkeypatch):
        # sanity-check the net itself: force the JIT to mis-handle
        # iteration accounting and the fifth path must trip
        from repro.conformance import invariants
        from repro.conformance.invariants import ConformanceViolation

        real = run_program

        def poisoned(program, **kwargs):
            result = real(program, **kwargs)
            if kwargs.get("trace_jit") is True:
                result.cycles += 1
            return result

        monkeypatch.setattr(invariants, "run_program", poisoned)
        with pytest.raises(ConformanceViolation) as exc:
            invariants.check_source(NESTED_LOOPS, name="poisoned")
        assert exc.value.kind == "trace-jit-divergence"
