"""Coverage for the supporting pieces: error hierarchy, event
multicasting, runtime code patching, program copying, stats merging,
and program-level TLS accounting."""

import pytest

from repro import errors
from repro.bytecode import Instr, Op
from repro.lang import compile_source
from repro.runtime import (
    MulticastListener,
    RecordingListener,
    run_program,
)
from repro.runtime.interpreter import Interpreter
from repro.jrpm.runtime import ProfilingRuntime
from repro.tracer.stats import STLStats


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.LexError, errors.SourceError)
        assert issubclass(errors.ParseError, errors.SourceError)
        assert issubclass(errors.SemanticError, errors.SourceError)
        assert issubclass(errors.SourceError, errors.ReproError)
        assert issubclass(errors.HeapError, errors.ExecutionError)
        for name in ("CodegenError", "BytecodeError", "TracerError",
                     "SimulationError", "PipelineError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_source_error_positions(self):
        err = errors.LexError("bad", 3, 7)
        assert err.line == 3 and err.column == 7
        assert "line 3" in str(err)

    def test_execution_error_location(self):
        err = errors.ExecutionError("boom", pc=12, function="main")
        assert "main" in str(err) and "12" in str(err)


class TestMulticast:
    def test_all_events_fan_out(self):
        a, b = RecordingListener(), RecordingListener()
        multi = MulticastListener([a, b])
        src = """
        func main() {
          var arr = array(4);
          var s = 0;
          for (var i = 0; i < 4; i = i + 1) { arr[i] = i; }
          for (var k = 0; k < 4; k = k + 1) { s = s + arr[k]; }
          return s;
        }
        """
        from repro.cfg import find_candidates
        from repro.jit import annotate_program
        program = compile_source(src)
        ann = annotate_program(program, find_candidates(program))
        run_program(ann.program, listener=multi)
        assert a.mem == b.mem
        assert a.marks == b.marks
        assert a.sloop_frames == b.sloop_frames
        assert a.mem and a.marks


class TestProfilingRuntime:
    def _program_with_readstats(self):
        from repro.cfg import find_candidates
        from repro.jit import annotate_program
        src = ("func main() { var s = 0; "
               "for (var i = 0; i < 5; i = i + 1) { s = s + i; } "
               "return s; }")
        program = compile_source(src)
        ann = annotate_program(program, find_candidates(program))
        return ann.program

    def test_patches_readstats_to_nop(self):
        program = self._program_with_readstats()
        interp = Interpreter(program)
        runtime = ProfilingRuntime(program, interp)
        sites = [(fn, pc) for fn in program.functions.values()
                 for pc, ins in enumerate(fn.code)
                 if ins.op == Op.READSTATS]
        assert sites
        loop_id = sites[0][0].code[sites[0][1]].a
        runtime.on_converged(loop_id)
        for fn, pc in sites:
            assert fn.code[pc].op == Op.NOP
        assert runtime.patched == [loop_id]

    def test_patched_program_still_runs(self):
        program = self._program_with_readstats()
        interp = Interpreter(program)
        runtime = ProfilingRuntime(program, interp)
        runtime.on_converged(0)
        assert interp.run().return_value == 10

    def test_cost_cache_kept_coherent(self):
        program = self._program_with_readstats()
        interp = Interpreter(program)
        # force the cost cache to be built, then patch
        first = Interpreter(program).run()
        runtime = ProfilingRuntime(program, interp)
        costs = interp._costs_for(program.main)
        runtime.on_converged(0)
        nop_cost = interp.cost_model.cost(Op.NOP)
        for pc, ins in enumerate(program.main.code):
            if ins.op == Op.NOP:
                assert costs[pc] == nop_cost
        # and the patched run is cheaper than the unpatched one
        second = interp.run()
        assert second.cycles < first.cycles

    def test_unknown_loop_is_noop(self):
        program = self._program_with_readstats()
        runtime = ProfilingRuntime(program, Interpreter(program))
        runtime.on_converged(999)
        assert runtime.patched == [999]


class TestProgramCopy:
    def test_copy_is_deep(self):
        program = compile_source("func main() { return 1 + 2; }")
        clone = program.copy()
        clone.main.code[0] = Instr(Op.NOP)
        assert program.main.code[0].op != Op.NOP
        assert run_program(program).return_value == 3

    def test_copy_preserves_metadata(self):
        program = compile_source(
            "func f(a, b) { return a + b; } "
            "func main() { return f(1, 2); }")
        clone = program.copy()
        fn = clone.functions["f"]
        assert fn.n_params == 2
        assert fn.slot_names == program.functions["f"].slot_names


class TestStatsUtilities:
    def test_merge_accumulates(self):
        a, b = STLStats(0), STLStats(0)
        a.cycles, a.threads, a.entries = 100, 10, 1
        a.profiled_threads, a.profiled_entries = 10, 1
        a.arcs_prev, a.arc_len_prev = 4, 40
        b.cycles, b.threads, b.entries = 200, 20, 2
        b.profiled_threads, b.profiled_entries = 20, 2
        b.arcs_prev, b.arc_len_prev = 6, 30
        b.max_load_lines = 9
        a.merge(b)
        assert a.cycles == 300
        assert a.threads == 30
        assert a.arcs_prev == 10
        assert a.avg_arc_len_prev == 7.0
        assert a.max_load_lines == 9

    def test_render_contains_all_counters(self):
        st = STLStats(3)
        text = st.render()
        for field in ("# cycles", "# threads", "Critical arc freq",
                      "Overflow frequency"):
            assert field in text


class TestProgramOutcome:
    def test_actual_cycles_math(self, huffman_report):
        out = huffman_report.outcome
        covered = sum(r.sequential_cycles for r in out.results.values())
        parallel = sum(r.parallel_cycles for r in out.results.values())
        expected = max(0, out.total_cycles - covered) + parallel
        assert out.actual_cycles == expected

    def test_per_stl_rows_align_with_selection(self, huffman_report):
        out = huffman_report.outcome
        rows = out.per_stl_rows()
        assert [r[0] for r in rows] \
            == huffman_report.selection.selected_ids()
        for _, cycles, pred, actual, vrate in rows:
            assert cycles > 0
            assert pred >= 1.0 or pred > 0
            assert actual > 0
            assert vrate >= 0
