"""Unit tests for the interpreter, heap, values, and cost model."""

import pytest

from repro.bytecode import BinOp, Op, UnOp
from repro.errors import ExecutionError, HeapError
from repro.lang import compile_source
from repro.runtime import (
    CostModel,
    Heap,
    LINE_SIZE,
    RecordingListener,
    WORD_SIZE,
    line_of,
    run_program,
)
from repro.runtime.values import apply_binop, apply_unop, java_div, java_mod


class TestValues:
    def test_java_div_signs(self):
        assert java_div(7, 2) == 3
        assert java_div(-7, 2) == -3
        assert java_div(7, -2) == -3
        assert java_div(-7, -2) == 3

    def test_java_mod_signs(self):
        assert java_mod(7, 3) == 1
        assert java_mod(-7, 3) == -1
        assert java_mod(7, -3) == 1
        assert java_mod(-7, -3) == -1

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            java_div(1, 0)
        with pytest.raises(ExecutionError):
            java_mod(1, 0)

    def test_float_division(self):
        assert java_div(7.0, 2) == 3.5

    def test_bitops_require_ints(self):
        with pytest.raises(ExecutionError):
            apply_binop(BinOp.AND, 1.5, 2)
        with pytest.raises(ExecutionError):
            apply_binop(BinOp.SHL, 1, 2.0)

    def test_negative_shift_rejected(self):
        with pytest.raises(ExecutionError):
            apply_binop(BinOp.SHL, 1, -1)

    def test_unops(self):
        assert apply_unop(UnOp.NEG, 5) == -5
        assert apply_unop(UnOp.NOT, 0) == 1
        assert apply_unop(UnOp.NOT, 9) == 0
        assert apply_unop(UnOp.INV, 0) == -1
        assert apply_unop(UnOp.I2F, 3) == 3.0
        assert apply_unop(UnOp.F2I, 3.9) == 3


class TestHeap:
    def test_allocation_and_access(self):
        heap = Heap()
        h = heap.allocate(4)
        heap.store(h, 0, 42)
        assert heap.load(h, 0) == 42
        assert heap.load(h, 1) == 0
        assert heap.length(h) == 4

    def test_bounds_checking(self):
        heap = Heap()
        h = heap.allocate(4)
        with pytest.raises(HeapError):
            heap.load(h, 4)
        with pytest.raises(HeapError):
            heap.store(h, -1, 0)

    def test_invalid_handle(self):
        heap = Heap()
        with pytest.raises(HeapError):
            heap.load(12345, 0)

    def test_negative_length(self):
        with pytest.raises(HeapError):
            Heap().allocate(-1)

    def test_float_length_rejected(self):
        with pytest.raises(HeapError):
            Heap().allocate(2.5)

    def test_addresses_line_aligned_and_disjoint(self):
        heap = Heap()
        a = heap.allocate(10)
        b = heap.allocate(10)
        assert a % LINE_SIZE == 0
        assert b % LINE_SIZE == 0
        # no overlap: last byte of a is before b
        assert heap.address(a, 9) + WORD_SIZE <= b

    def test_element_addresses(self):
        heap = Heap()
        a = heap.allocate(8)
        assert heap.address(a, 3) == a + 3 * WORD_SIZE
        assert line_of(a) == a // LINE_SIZE

    def test_zero_length_array_allowed(self):
        heap = Heap()
        a = heap.allocate(0)
        assert heap.length(a) == 0


class TestInterpreter:
    def test_deterministic_cycles(self):
        src = "func main() { var s = 0; for (var i = 0; i < 100; " \
              "i = i + 1) { s = s + i; } return s; }"
        p1 = compile_source(src)
        r1 = run_program(p1)
        r2 = run_program(compile_source(src))
        assert r1.cycles == r2.cycles
        assert r1.instructions == r2.instructions
        assert r1.return_value == r2.return_value == 4950

    def test_instruction_budget(self):
        src = "func main() { while (1) { } }"
        with pytest.raises(ExecutionError) as exc:
            run_program(compile_source(src), max_instructions=1000)
        assert "budget" in str(exc.value)

    def test_runtime_error_carries_location(self):
        src = "func main() { var a = array(2); return a[5]; }"
        with pytest.raises(ExecutionError) as exc:
            run_program(compile_source(src))
        assert "main" in str(exc.value)

    def test_division_by_zero_at_runtime(self):
        src = "func main() { var x = 0; return 1 / x; }"
        with pytest.raises(ExecutionError):
            run_program(compile_source(src))

    def test_print_collects(self):
        src = "func main() { print 1; print 2 + 3; return 0; }"
        assert run_program(compile_source(src)).printed == [1, 5]

    def test_deep_recursion_does_not_blow_host_stack(self):
        src = """
        func down(n) { if (n == 0) { return 0; } return down(n - 1); }
        func main() { return down(5000); }
        """
        assert run_program(compile_source(src)).return_value == 0

    def test_cost_model_scales_cycles(self):
        src = "func main() { var a = array(8); var s = 0; " \
              "for (var i = 0; i < 8; i = i + 1) { s = s + a[i]; } " \
              "return s; }"
        program = compile_source(src)
        cheap = run_program(program, cost_model=CostModel())
        pricey = run_program(
            program, cost_model=CostModel(op_costs={Op.ALOAD: 50}))
        assert pricey.cycles > cheap.cycles
        assert pricey.return_value == cheap.return_value

    def test_listener_sees_heap_events_in_order(self):
        src = "func main() { var a = array(2); a[0] = 1; a[1] = 2; " \
              "return a[0] + a[1]; }"
        rec = RecordingListener()
        run_program(compile_source(src), listener=rec)
        kinds = [e.kind for e in rec.mem]
        assert kinds == ["st", "st", "ld", "ld"]
        cycles = [e.cycle for e in rec.mem]
        assert cycles == sorted(cycles)

    def test_heap_state_in_result(self):
        src = "func main() { var a = array(3); a[2] = 9; return 0; }"
        res = run_program(compile_source(src))
        snapshot = res.heap.snapshot()
        assert list(snapshot.values()) == [[0, 0, 9]]


class TestDispatchPaths:
    """The interpreter has two specialized loops — no-listener and
    traced — plus batched memory-event delivery.  They must agree with
    each other on every observable."""

    MEMORY_HEAVY = """
    func main() {
      var a = array(512);
      var s = 0;
      for (var r = 0; r < 8; r = r + 1) {
        for (var i = 0; i < 512; i = i + 1) {
          a[i] = (a[(i + 37) % 512] + r * i) % 9973;
        }
      }
      for (var i = 0; i < 512; i = i + 1) { s = (s + a[i]) % 65536; }
      return s;
    }
    """

    def test_fast_and_traced_paths_agree(self):
        program = compile_source(self.MEMORY_HEAVY)
        fast = run_program(program)
        rec = RecordingListener()
        traced = run_program(program, listener=rec)
        assert fast.return_value == traced.return_value
        assert fast.cycles == traced.cycles
        assert fast.instructions == traced.instructions
        assert fast.heap.snapshot() == traced.heap.snapshot()
        # enough events to cross several flush boundaries, in cycle order
        assert len(rec.mem) > 2048
        cycles = [e.cycle for e in rec.mem]
        assert cycles == sorted(cycles)

    def test_errors_agree_across_paths(self):
        src = "func main() { var a = array(4); var i = 0; " \
              "while (1) { a[i] = i; i = i + 1; } }"
        program = compile_source(src)
        with pytest.raises(ExecutionError) as fast_exc:
            run_program(program)
        with pytest.raises(ExecutionError) as traced_exc:
            run_program(program, listener=RecordingListener())
        assert str(fast_exc.value) == str(traced_exc.value)
        assert "main" in str(fast_exc.value)

    def test_events_before_error_are_flushed(self):
        src = "func main() { var a = array(4); a[0] = 7; a[9] = 1; " \
              "return 0; }"
        rec = RecordingListener()
        with pytest.raises(ExecutionError):
            run_program(compile_source(src), listener=rec)
        assert [e.kind for e in rec.mem] == ["st"]

    def test_rerun_same_interpreter_instance(self):
        from repro.runtime.interpreter import Interpreter
        program = compile_source(self.MEMORY_HEAVY)
        interp = Interpreter(program)
        first = interp.run()
        second = interp.run()
        assert first.return_value == second.return_value
        assert first.cycles == second.cycles


class TestPatchCost:
    MUL_LOOP = "func main() { var s = 1; " \
               "for (var i = 0; i < 50; i = i + 1) " \
               "{ s = (s * 3) % 1000003; } return s; }"

    def _mul_site(self, program):
        fn = program.functions["main"]
        for pc, ins in enumerate(fn.code):
            if ins.op == Op.BIN and ins.sub == int(BinOp.MUL):
                return fn, pc
        raise AssertionError("no MUL emitted")

    def test_identity_repatch_keeps_cycles(self):
        # re-pricing an instruction as itself must be a no-op; the old
        # patch_cost dropped the sub operand, so a BIN MUL site fell
        # from the 4-cycle multiply cost to the 1-cycle default
        from repro.runtime.interpreter import Interpreter
        program = compile_source(self.MUL_LOOP)
        fn, pc = self._mul_site(program)
        interp = Interpreter(program)
        baseline = interp.run()
        interp.patch_cost(fn.name, pc, fn.code[pc].op, fn.code[pc].sub)
        assert interp.run().cycles == baseline.cycles

    def test_patched_cost_uses_sub_opcode(self):
        from repro.runtime.costs import DEFAULT_COSTS
        from repro.runtime.interpreter import Interpreter
        program = compile_source(self.MUL_LOOP)
        fn, pc = self._mul_site(program)
        interp = Interpreter(program)
        interp.run()
        interp.patch_cost(fn.name, pc, Op.BIN, int(BinOp.MUL))
        priced = interp._cost_cache[fn.name][pc]
        assert priced == DEFAULT_COSTS.bin_costs[BinOp.MUL]
        assert priced != DEFAULT_COSTS.bin_costs[BinOp.ADD]

    def test_patch_to_nop_changes_timing_and_decode(self):
        from repro.bytecode.instructions import Instr
        from repro.runtime.interpreter import Interpreter
        program = compile_source(self.MUL_LOOP)
        fn, pc = self._mul_site(program)
        interp = Interpreter(program)
        baseline = interp.run()
        # emulate ProfilingRuntime: overwrite the site and re-price it
        fn.code[pc] = Instr(Op.NOP)
        interp.patch_cost(fn.name, pc, Op.NOP, fn.code[pc].sub)
        patched = interp.run()
        assert patched.cycles < baseline.cycles
