"""Unit tests for CFG construction, dominators, and natural loops."""

import pytest

from repro.bytecode import Instr, Op
from repro.cfg import (
    build_cfg,
    compute_dominators,
    find_loops,
)
from repro.errors import BytecodeError
from repro.lang import compile_source
from repro.runtime import run_program

NESTED = """
func main() {
  var s = 0;
  for (var i = 0; i < 4; i = i + 1) {
    for (var j = 0; j < 4; j = j + 1) {
      s = s + i * j;
    }
  }
  while (s > 100) { s = s - 10; }
  return s;
}
"""


def cfg_of(source, fn="main"):
    program = compile_source(source)
    return program, build_cfg(program.functions[fn])


class TestCFGConstruction:
    def test_entry_is_block_zero(self):
        _, cfg = cfg_of(NESTED)
        assert cfg.entry == 0

    def test_every_block_ends_with_terminator(self):
        _, cfg = cfg_of(NESTED)
        for block in cfg.blocks.values():
            assert block.terminator.op in (Op.JMP, Op.BR, Op.RET)

    def test_branch_targets_are_block_ids(self):
        _, cfg = cfg_of(NESTED)
        for bid in cfg.blocks:
            for succ in cfg.successors(bid):
                assert succ in cfg.blocks

    def test_predecessors_inverse_of_successors(self):
        _, cfg = cfg_of(NESTED)
        preds = cfg.predecessors_map()
        for bid in cfg.blocks:
            for succ in cfg.successors(bid):
                assert bid in preds[succ]

    def test_reverse_postorder_starts_at_entry(self):
        _, cfg = cfg_of(NESTED)
        rpo = cfg.reverse_postorder()
        assert rpo[0] == cfg.entry
        assert len(rpo) == len(set(rpo))

    def test_linearize_roundtrip_preserves_semantics(self):
        program, cfg = cfg_of(NESTED)
        rebuilt = cfg.linearize()
        from repro.bytecode import Program, verify_program
        p2 = Program()
        p2.add(rebuilt)
        verify_program(p2)
        assert run_program(p2).return_value \
            == run_program(program).return_value

    def test_split_edge_redirects(self):
        _, cfg = cfg_of(NESTED)
        # pick any edge and split it
        src = cfg.entry
        dst = cfg.successors(src)[0]
        mid = cfg.split_edge(src, dst, [Instr(Op.NOP)])
        assert cfg.successors(src) == [mid]
        assert cfg.successors(mid) == [dst]

    def test_split_nonexistent_edge_rejected(self):
        _, cfg = cfg_of(NESTED)
        with pytest.raises(BytecodeError):
            cfg.split_edge(cfg.entry, cfg.entry, [Instr(Op.NOP)])

    def test_split_edge_payload_rejects_terminators(self):
        _, cfg = cfg_of(NESTED)
        src = cfg.entry
        dst = cfg.successors(src)[0]
        with pytest.raises(BytecodeError):
            cfg.split_edge(src, dst, [Instr(Op.RET)])


class TestDominators:
    def test_entry_dominates_everything(self):
        _, cfg = cfg_of(NESTED)
        dom = compute_dominators(cfg)
        for bid in cfg.reachable():
            assert dom.dominates(cfg.entry, bid)

    def test_self_domination(self):
        _, cfg = cfg_of(NESTED)
        dom = compute_dominators(cfg)
        for bid in cfg.reachable():
            assert dom.dominates(bid, bid)

    def test_idom_is_unique_and_acyclic(self):
        _, cfg = cfg_of(NESTED)
        dom = compute_dominators(cfg)
        assert dom.idom[cfg.entry] is None
        for bid in dom.idom:
            chain = dom.dominators_of(bid)
            assert len(chain) == len(set(chain))
            assert chain[-1] == cfg.entry

    def test_dominance_is_antisymmetric(self):
        _, cfg = cfg_of(NESTED)
        dom = compute_dominators(cfg)
        blocks = sorted(cfg.reachable())
        for a in blocks:
            for b in blocks:
                if a != b and dom.dominates(a, b):
                    assert not dom.dominates(b, a)

    def test_diamond_join_dominated_by_fork(self):
        src = """
        func main() {
          var x = 1;
          if (x) { x = 2; } else { x = 3; }
          return x;
        }
        """
        _, cfg = cfg_of(src)
        dom = compute_dominators(cfg)
        # the fork block (entry) dominates the join; neither arm does
        preds = cfg.predecessors_map()
        joins = [b for b, ps in preds.items() if len(ps) >= 2]
        assert joins
        for join in joins:
            for p in preds[join]:
                if len(cfg.successors(p)) == 1:
                    assert not dom.dominates(p, join)


class TestNaturalLoops:
    def test_loop_count_and_nesting(self):
        _, cfg = cfg_of(NESTED)
        forest = find_loops(cfg)
        assert len(forest.loops) == 3
        assert forest.max_depth == 2
        depths = sorted(lp.depth for lp in forest.loops)
        assert depths == [1, 1, 2]

    def test_header_in_own_loop(self):
        _, cfg = cfg_of(NESTED)
        for lp in find_loops(cfg).loops:
            assert lp.header in lp.blocks

    def test_inner_loop_contained_in_outer(self):
        _, cfg = cfg_of(NESTED)
        forest = find_loops(cfg)
        inner = [lp for lp in forest.loops if lp.depth == 2][0]
        assert inner.parent is not None
        assert inner.blocks < inner.parent.blocks

    def test_back_edges_point_at_header(self):
        _, cfg = cfg_of(NESTED)
        for lp in find_loops(cfg).loops:
            for src, dst in lp.back_edges():
                assert dst == lp.header
                assert src in lp.blocks

    def test_entry_edges_come_from_outside(self):
        _, cfg = cfg_of(NESTED)
        for lp in find_loops(cfg).loops:
            for src, dst in lp.entry_edges(cfg):
                assert dst == lp.header
                assert src not in lp.blocks

    def test_exit_edges_leave_the_loop(self):
        _, cfg = cfg_of(NESTED)
        for lp in find_loops(cfg).loops:
            for src, dst in lp.exit_edges(cfg):
                assert src in lp.blocks
                assert dst not in lp.blocks

    def test_heights(self):
        _, cfg = cfg_of(NESTED)
        forest = find_loops(cfg)
        outer = [lp for lp in forest.loops
                 if lp.depth == 1 and lp.children][0]
        inner = outer.children[0]
        assert inner.height1() == 1
        assert outer.height1() == 2

    def test_straightline_code_has_no_loops(self):
        _, cfg = cfg_of("func main() { return 1 + 2; }")
        assert find_loops(cfg).loops == []

    def test_loop_of_block_innermost(self):
        _, cfg = cfg_of(NESTED)
        forest = find_loops(cfg)
        inner = [lp for lp in forest.loops if lp.depth == 2][0]
        for bid in inner.blocks:
            if bid != inner.header:
                found = forest.loop_of_block(bid)
                assert found is not None and found.depth >= 2
