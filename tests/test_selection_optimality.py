"""Equation 2's tree DP versus exhaustive enumeration.

On randomly generated small loop nests (random statistics, proper
containment), the selector's chosen antichain must achieve the same
predicted total time as brute force over *all* antichains.
"""

from itertools import chain, combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hydra import DEFAULT_HYDRA
from repro.tracer import TestDevice, estimate_speedup, select_stls


def build_device(nodes):
    """nodes: list of (loop_id, parent_id, cycles, threads, arc_pairs)
    with child cycles <= parent cycles."""
    dev = TestDevice()
    for loop_id, parent, cycles, threads, arcs in nodes:
        stt = dev.stats_for(loop_id)
        stt.cycles = cycles
        stt.threads = threads
        stt.entries = 1
        stt.profiled_threads = threads
        stt.profiled_entries = 1
        stt.arcs_prev = arcs
        # short arcs (serializing) so speedups vary meaningfully
        stt.arc_len_prev = arcs * 3
        dev.dynamic_parents.setdefault(loop_id, {})[parent] = 1
    return dev


def brute_force_best(nodes, min_speedup=1.05):
    """Minimal predicted time over every antichain of the nest."""
    dev = build_device(nodes)
    ids = [n[0] for n in nodes]
    parents = {n[0]: n[1] for n in nodes}

    def ancestors(x):
        out = set()
        while parents.get(x, -1) >= 0:
            x = parents[x]
            out.add(x)
        return out

    total = sum(n[2] for n in nodes if n[1] == -1)

    def subsets(iterable):
        s = list(iterable)
        return chain.from_iterable(
            combinations(s, r) for r in range(len(s) + 1))

    best = float(total)
    for pick in subsets(ids):
        # antichain check
        ok = all(not (set(pick) & ancestors(x)) for x in pick)
        if not ok:
            continue
        t = float(total)
        feasible = True
        for x in pick:
            est = estimate_speedup(dev.stats[x], DEFAULT_HYDRA)
            if est.speedup < min_speedup:
                feasible = False
                break
            t -= dev.stats[x].cycles
            t += dev.stats[x].cycles / est.speedup
        if feasible and t < best:
            best = t
    return best, total


@st.composite
def random_nests(draw):
    """A forest of <= 6 loops with containment-consistent cycles."""
    n = draw(st.integers(min_value=1, max_value=6))
    nodes = []
    # remaining cycle budget per parent: in a real trace the children
    # of a loop together run inside it, so sibling cycles must fit
    remaining = {-1: 4_000_000}
    for loop_id in range(n):
        parent = -1
        if loop_id > 0 and draw(st.booleans()):
            parent = draw(st.integers(min_value=0,
                                      max_value=loop_id - 1))
        budget = remaining.get(parent, 0)
        if budget < 10_000:
            parent = -1
            budget = remaining[-1]
        cycles = draw(st.integers(min_value=10_000,
                                  max_value=max(10_001, budget)))
        cycles = min(cycles, budget)
        remaining[parent] = budget - cycles
        remaining[loop_id] = cycles
        threads = draw(st.sampled_from([4, 16, 64, 256]))
        arcs = draw(st.integers(min_value=0, max_value=threads - 1))
        nodes.append((loop_id, parent, cycles, threads, arcs))
    return nodes


@given(random_nests())
@settings(max_examples=80, deadline=None)
def test_dp_matches_exhaustive_enumeration(nodes):
    dev = build_device(nodes)
    total = sum(n[2] for n in nodes if n[1] == -1)
    sel = select_stls(dev, total_cycles=total, min_cycles=1)

    dp_time = sel.predicted_cycles
    best_time, _ = brute_force_best(nodes)
    # the DP must achieve the optimum (small float tolerance)
    assert dp_time <= best_time * (1 + 1e-9) + 1e-6, (
        dp_time, best_time, nodes)
    # and never beat it (it only picks valid antichains)
    assert dp_time >= best_time * (1 - 1e-9) - 1e-6


@given(random_nests())
@settings(max_examples=60, deadline=None)
def test_selection_always_an_antichain(nodes):
    dev = build_device(nodes)
    total = sum(n[2] for n in nodes if n[1] == -1)
    sel = select_stls(dev, total_cycles=total, min_cycles=1)
    parents = {n[0]: n[1] for n in nodes}
    chosen = set(sel.selected_ids())
    for x in chosen:
        walk = parents.get(x, -1)
        while walk >= 0:
            assert walk not in chosen, (x, walk, nodes)
            walk = parents.get(walk, -1)
