"""Tests for the fleet/batch API."""

import pytest

from repro.hydra import HydraConfig
from repro.jrpm.batch import FleetResult, run_fleet
from repro.workloads import get_workload

SAMPLE = ["IDEA", "monteCarlo", "raytrace"]


@pytest.fixture(scope="module")
def fleet():
    return run_fleet([get_workload(n) for n in SAMPLE])


class TestFleet:
    def test_rows_in_order(self, fleet):
        assert [r.name for r in fleet] == SAMPLE
        assert len(fleet) == 3

    def test_lookup_by_name(self, fleet):
        row = fleet.by_name["IDEA"]
        assert row.loop_count >= 2
        assert row.selected_count >= 1
        assert row.thread_size > 0
        assert row.threads_per_entry > 0

    def test_aggregates(self, fleet):
        assert 1.0 < fleet.median_slowdown < 1.5
        assert 0.5 < fleet.geomean_prediction_ratio < 2.0

    def test_render(self, fleet):
        text = fleet.render()
        for name in SAMPLE:
            assert name in text
        assert "Pred" in text and "Actual" in text

    def test_table6_columns_consistent_with_reports(self, fleet):
        for row in fleet:
            assert row.loop_count \
                == row.report.candidates.loop_count
            assert row.coverage == row.report.coverage
            assert row.dynamic_depth >= 1

    def test_missing_selected_loop_id_raises_not_skews(self, fleet):
        # regression: a selected loop_id absent from the candidate
        # table used to be silently dropped, skewing the Table 6
        # column f average; it is an inconsistency and must raise
        from repro.errors import PipelineError

        row = fleet.by_name["IDEA"]
        assert row.avg_selected_height > 0  # consistent: fine
        by_id = row.report.candidates.by_id
        victim = row.report.selection.significant()[0].loop_id
        stashed = by_id.pop(victim)
        try:
            with pytest.raises(PipelineError) as excinfo:
                row.avg_selected_height
            assert str(victim) in str(excinfo.value)
        finally:
            by_id[victim] = stashed

    def test_exec_stats_default_clean(self, fleet):
        assert fleet.retry_count == 0
        assert fleet.timeout_count == 0
        assert fleet.crash_count == 0
        assert fleet.cache_corrupt == 0

    def test_kwargs_flow_into_pipeline(self):
        w = get_workload("IDEA")
        plain = run_fleet([w], simulate_tls=False)
        assert plain.rows[0].actual_speedup == 1.0  # no TLS run
        custom = run_fleet([w], config=HydraConfig(n_cpus=8),
                           simulate_tls=False)
        # with 8 CPUs the arc-free block loop can predict above 4x
        assert custom.rows[0].predicted_speedup \
            >= plain.rows[0].predicted_speedup
