"""Tests for the sharded serving tier: the consistent-hash ring
(stability, balance, replica sets), the routing frontend end to end
(byte-identity with a single-shard daemon, stable routing, metrics and
health aggregation), cross-replica result-LRU peeking, and the
``jrpm serve --shards N`` process."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.jrpm.report import dumps_canonical, validate_report_dict
from repro.service.protocol import parse_analyze_request
from repro.service.router import HashRing, ShardedFrontend
from repro.service.server import AnalysisService


def _request(port: int, method: str, path: str, body=None,
             headers=None, host: str = "127.0.0.1"):
    """One HTTP exchange; returns (status, parsed_json, headers)."""
    conn = http.client.HTTPConnection(host, port, timeout=300)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        try:
            parsed = json.loads(raw)
        except ValueError:
            parsed = raw.decode("utf-8", "replace")
        return resp.status, parsed, dict(resp.getheaders())
    finally:
        conn.close()


#: cheap request for end-to-end tests: profile stage only, no TLS sim
FAST_BODY = {"workload": "BitOps", "stages": ["profile"]}


# ---------------------------------------------------------------------------
# the ring
# ---------------------------------------------------------------------------

class TestHashRing:
    KEYS = ["key-%d" % i for i in range(2000)]

    def test_deterministic_and_reasonably_balanced(self):
        ring = HashRing(["0", "1", "2", "3"])
        owners = [ring.primary(k) for k in self.KEYS]
        assert owners == [ring.primary(k) for k in self.KEYS]
        counts = {n: owners.count(n) for n in ring.nodes}
        # vnodes keep the split far from degenerate: every shard owns
        # a substantial slice (exact balance is not the contract)
        assert all(count > len(self.KEYS) * 0.10
                   for count in counts.values())

    def test_replica_sets_are_distinct_and_primary_first(self):
        ring = HashRing(["0", "1", "2", "3"])
        for key in self.KEYS[:200]:
            replicas = ring.replicas(key, 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == ring.primary(key)
        # k capped at the ring size
        assert len(ring.replicas("x", 99)) == 4

    def test_adding_a_shard_remaps_about_one_nth(self):
        """The consistent-hash contract: growing 4 -> 5 shards moves
        ~1/5 of the key space, all of it onto the new shard."""
        ring = HashRing(["0", "1", "2", "3"])
        before = {k: ring.primary(k) for k in self.KEYS}
        ring.add("4")
        after = {k: ring.primary(k) for k in self.KEYS}
        moved = [k for k in self.KEYS if before[k] != after[k]]
        fraction = len(moved) / len(self.KEYS)
        assert 0.10 < fraction < 0.35   # ideal 0.20
        # every remapped key landed on the new shard — nothing
        # shuffled between the surviving shards
        assert all(after[k] == "4" for k in moved)

    def test_removing_the_shard_restores_the_mapping(self):
        ring = HashRing(["0", "1", "2", "3"])
        before = {k: ring.primary(k) for k in self.KEYS}
        ring.add("4")
        ring.remove("4")
        assert {k: ring.primary(k) for k in self.KEYS} == before

    def test_empty_and_invalid(self):
        with pytest.raises(ValueError):
            HashRing([]).primary("x")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        ring = HashRing(["0"])
        with pytest.raises(ValueError):
            ring.add("0")


# ---------------------------------------------------------------------------
# the frontend, end to end over two real shard processes
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def frontend():
    fe = ShardedFrontend(port=0, shards=2, replicas=2,
                         shard_options={"queue_depth": 32}).start()
    yield fe
    fe.stop()


class TestShardedFrontend:
    def test_healthz_aggregates_every_shard(self, frontend):
        status, body, _ = _request(frontend.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["shard_count"] == 2
        assert sorted(body["shards"]) == ["0", "1"]
        assert all(s["up"] for s in body["shards"].values())

    def test_workloads_and_404(self, frontend):
        status, body, _ = _request(frontend.port, "GET", "/workloads")
        assert status == 200
        assert "Huffman" in body["workloads"]
        assert _request(frontend.port, "GET", "/zzz")[0] == 404
        assert _request(frontend.port, "POST", "/zzz")[0] == 404

    def test_analyze_routes_by_key_and_matches_single_shard_bytes(
            self, frontend):
        """The sharded tier's contract: an /analyze report is byte-
        identical to the single-shard daemon's for the same request."""
        status, body, headers = _request(frontend.port, "POST",
                                         "/analyze", body=FAST_BODY)
        assert status == 200
        assert headers["X-Jrpm-Shard"] in ("0", "1")
        validate_report_dict(body["report"])

        single = AnalysisService(port=0).start()
        try:
            status2, body2, headers2 = _request(
                single.port, "POST", "/analyze", body=FAST_BODY)
        finally:
            single.stop()
        assert status2 == 200
        assert "X-Jrpm-Shard" not in headers2
        assert dumps_canonical(body2["report"]) \
            == dumps_canonical(body["report"])

    def test_repeat_hits_the_same_shards_result_cache(self, frontend):
        body = {"workload": "BitOps", "stages": ["profile"],
                "config": {"n_cpus": 4}}
        status1, first, headers1 = _request(frontend.port, "POST",
                                            "/analyze", body=body)
        status2, second, headers2 = _request(frontend.port, "POST",
                                             "/analyze", body=body)
        assert status1 == status2 == 200
        # consistent hashing pins the key to one shard, so the repeat
        # lands on the warm result LRU
        assert headers1["X-Jrpm-Shard"] == headers2["X-Jrpm-Shard"]
        assert not first["meta"]["cached"]
        assert second["meta"]["cached"]
        assert second["report"] == first["report"]

    def test_frontend_rejects_malformed_before_routing(self, frontend):
        status, body, headers = _request(frontend.port, "POST",
                                         "/analyze",
                                         body={"workload": "zzz"})
        assert status == 400
        assert "unknown workload" in body["error"]
        # rejected at the frontend: no shard saw it
        assert "X-Jrpm-Shard" not in headers

    def test_peek_warms_the_new_primary(self, frontend):
        """Cross-replica result-LRU peeking: when a key's primary
        misses, it asks the secondary replica before computing — the
        warm-handoff path for ring changes and failovers."""
        body = {"workload": "BitOps", "stages": ["profile"],
                "config": {"n_cpus": 6}}
        request = parse_analyze_request(json.dumps(body).encode())
        primary, secondary = frontend.ring.replicas(request.key, 2)
        # plant the result on the SECONDARY by asking it directly
        sec_host, sec_port = frontend.shard_addrs[secondary]
        status, planted, _ = _request(sec_port, "POST", "/analyze",
                                      body=body, host=sec_host)
        assert status == 200
        # now route through the frontend: the primary has never seen
        # this key, peeks the secondary, and serves without computing
        started = time.perf_counter()
        status, served, headers = _request(frontend.port, "POST",
                                           "/analyze", body=body)
        elapsed = time.perf_counter() - started
        assert status == 200
        assert headers["X-Jrpm-Shard"] == primary
        assert served["meta"]["cached"]
        assert served["report"] == planted["report"]
        assert elapsed < 2.5  # served from a replica LRU, not computed
        snap = frontend.metrics_snapshot()
        assert snap["shards"][primary]["counters"]["peek_hits"] >= 1
        assert snap["shards"][secondary]["counters"]["peek_served"] >= 1

    def test_metrics_aggregation(self, frontend):
        status, snap, _ = _request(
            frontend.port, "GET", "/metrics",
            headers={"Accept": "application/json"})
        assert status == 200
        assert snap["shard_count"] == 2
        assert sorted(snap["shards"]) == ["0", "1"]
        agg = snap["aggregate"]
        per_shard = sum(
            s["counters"].get("analyze_completed", 0)
            for s in snap["shards"].values())
        assert agg["counters"].get("analyze_completed", 0) == per_shard
        assert agg["counters"].get("analyze_completed", 0) >= 1
        assert snap["frontend"]["requests"].get("analyze_200", 0) >= 1
        # routing counters name the shard each request landed on
        routed = [name for name in snap["frontend"]["counters"]
                  if name.startswith("routed_shard_")]
        assert routed

        status, text, _ = _request(frontend.port, "GET", "/metrics")
        assert status == 200
        assert 'jrpm_shard_up{shard="0"} 1' in text
        assert 'jrpm_shard_up{shard="1"} 1' in text
        assert 'jrpm_cluster_counter_total{counter="analyze_completed"}' \
            in text

    def test_keepalive_404_then_analyze_on_frontend(self, frontend):
        """The keep-alive body-drain fix applies to the frontend's
        proxy handler too."""
        conn = http.client.HTTPConnection("127.0.0.1", frontend.port,
                                          timeout=30)
        try:
            conn.request("POST", "/nope",
                         body=json.dumps({"j": "x" * 128}).encode())
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            conn.request("POST", "/analyze",
                         body=json.dumps({"workload": "zzz"}).encode())
            resp = conn.getresponse()
            assert resp.status == 400
            assert "unknown workload" in json.loads(resp.read())["error"]
        finally:
            conn.close()


class TestFrontendFailover:
    def test_result_push_warms_secondary_before_failover(self):
        """Satellite to peeking: a fresh compute PUSHES its result to
        the replica set, so when the primary later dies the secondary
        serves the key from its own LRU — cached, no recompute, no
        peek dependence on the (dead) primary."""
        fe = ShardedFrontend(port=0, shards=2, replicas=2).start()
        try:
            body = {"workload": "BitOps", "stages": ["profile"],
                    "config": {"n_cpus": 5}}
            request = parse_analyze_request(json.dumps(body).encode())
            primary, secondary = fe.ring.replicas(request.key, 2)
            status, first, headers = _request(fe.port, "POST",
                                              "/analyze", body=body)
            assert status == 200
            assert headers["X-Jrpm-Shard"] == primary
            assert not first["meta"]["cached"]
            # the fresh compute pushed the outcome to the secondary
            snap = fe.metrics_snapshot()
            assert snap["shards"][primary]["counters"][
                "replica_pushes"] >= 1
            assert snap["shards"][secondary]["counters"][
                "replica_push_received"] >= 1
            # kill the primary: the failover target is already warm
            fe._procs[int(primary)].request_stop()
            fe._procs[int(primary)].wait(timeout=30)
            started = time.perf_counter()
            status, served, headers = _request(fe.port, "POST",
                                               "/analyze", body=body)
            elapsed = time.perf_counter() - started
            assert status == 200
            assert headers["X-Jrpm-Shard"] == secondary
            assert served["meta"]["cached"]
            assert served["report"] == first["report"]
            assert elapsed < 2.5  # LRU hit, not a recompute
        finally:
            fe.stop()

    def test_failover_to_secondary_when_primary_dies(self):
        fe = ShardedFrontend(port=0, shards=2, replicas=2).start()
        try:
            body = {"workload": "BitOps", "stages": ["profile"]}
            request = parse_analyze_request(json.dumps(body).encode())
            primary, secondary = fe.ring.replicas(request.key, 2)
            # kill the primary out from under the frontend
            fe._procs[int(primary)].request_stop()
            fe._procs[int(primary)].wait(timeout=30)
            status, served, headers = _request(fe.port, "POST",
                                               "/analyze", body=body)
            assert status == 200
            assert headers["X-Jrpm-Shard"] == secondary
            assert fe.metrics.counter("failovers") >= 1
            # health reflects the dead shard
            status, health, _ = _request(fe.port, "GET", "/healthz")
            assert status == 503
            assert health["status"] == "degraded"
            assert not health["shards"][primary]["up"]
            assert health["shards"][secondary]["up"]
        finally:
            fe.stop()


# ---------------------------------------------------------------------------
# the real sharded daemon process: banner, traffic, SIGTERM drain
# ---------------------------------------------------------------------------

class TestServeShardedCLI:
    def test_serve_shards_2_sigterm_drains_cleanly(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(
            env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
        dump = tmp_path / "metrics.json"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.jrpm.cli", "serve",
             "--port", "0", "--shards", "2", "--replicas", "2",
             "--queue-depth", "8", "--metrics-dump", str(dump)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            banner = proc.stdout.readline()
            assert "jrpm-serve listening on http://" in banner
            assert "shards=2" in banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0])
            status, body, headers = _request(port, "POST", "/analyze",
                                             body=FAST_BODY)
            assert status == 200
            validate_report_dict(body["report"])
            assert headers["X-Jrpm-Shard"] in ("0", "1")
            status, health, _ = _request(port, "GET", "/healthz")
            assert status == 200
            assert health["shard_count"] == 2
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            assert "drained and stopped" in out
            snap = json.loads(dump.read_text())
            counters = snap["aggregate"]["counters"]
            assert counters.get("analyze_completed", 0) >= 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
