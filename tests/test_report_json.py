"""Report JSON round-trip and schema-stability tests.

Every bundled workload's selection table must survive
serialize -> parse -> validate through the one shared serializer
(``report_to_dict``/``dumps_canonical``), and the parsed dict must
match :data:`REPORT_SCHEMA` exactly — the same check the service
handler runs on every 200 response, so a schema drift breaks these
tests before it breaks a client.
"""

from __future__ import annotations

import json

import pytest

from repro.jrpm import (
    Jrpm,
    REPORT_SCHEMA_VERSION,
    ReportSchemaError,
    dumps_canonical,
    fleet_to_dict,
    report_json,
    report_to_dict,
    run_fleet,
    validate_report_dict,
)
from repro.jrpm.report import REPORT_SCHEMA, SELECTION_ROW_SCHEMA
from repro.workloads import all_workloads, get_workload, workload_names

#: workloads that additionally run the full TLS simulation (slow), so
#: the nullable predicted_vs_actual/engine branches are exercised too
TLS_SAMPLE = ("Huffman", "BitOps")


def _report(name: str, simulate_tls: bool = False):
    w = get_workload(name)
    return Jrpm(source=w.source(), name=w.name).run(
        simulate_tls=simulate_tls)


# ---------------------------------------------------------------------------
# round-trip: every bundled workload's selection table
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", workload_names())
def test_workload_report_round_trips(name):
    report = _report(name)
    parsed = json.loads(report_json(report))
    validate_report_dict(parsed)
    assert parsed["name"] == name
    assert parsed["schema_version"] == REPORT_SCHEMA_VERSION
    # the selection table survives the trip row for row
    direct = report_to_dict(report)
    assert parsed["selection"] == direct["selection"]
    sel = parsed["selection"]
    assert sel["total_cycles"] >= sel["serial_cycles"] >= 0
    for row in sel["selected"]:
        assert set(row) == set(SELECTION_ROW_SCHEMA)
        assert 0.0 <= row["coverage"] <= 1.0
        assert row["cycles"] <= sel["total_cycles"]
    # profile-only runs leave the nullable branches null
    assert parsed["actual_speedup"] is None
    assert parsed["predicted_vs_actual"] is None


@pytest.mark.parametrize("name", TLS_SAMPLE)
def test_tls_report_round_trips(name):
    report = _report(name, simulate_tls=True)
    parsed = json.loads(report_json(report))
    validate_report_dict(parsed)
    pva = parsed["predicted_vs_actual"]
    assert pva is not None
    for key in ("predicted_normalized_time", "actual_normalized_time",
                "rows"):
        assert key in pva
    for row in pva["rows"]:
        assert set(row) == {"loop_id", "cycles", "predicted_speedup",
                            "actual_speedup", "violations_per_thread",
                            "model"}
        assert row["model"] == "hydra-tls"
    # engine counters serialize without the nondeterministic wall clock
    if parsed["engine"] is not None:
        for counters in parsed["engine"].values():
            assert "seconds" not in counters


def test_serialization_is_deterministic():
    """Two serializations of the same run are byte-identical, and two
    independent runs of the same workload are too (the contract behind
    byte-identical CLI and service output)."""
    a = _report("Huffman", simulate_tls=True)
    b = _report("Huffman", simulate_tls=True)
    assert report_json(a) == report_json(a)
    assert report_json(a) == report_json(b)


# ---------------------------------------------------------------------------
# schema stability: the shape clients (and the service) pin against
# ---------------------------------------------------------------------------

class TestSchemaStability:
    def test_schema_version_is_pinned(self):
        # v4: per-loop "model" in selection rows + nullable "models"
        assert REPORT_SCHEMA_VERSION == 4

    def test_top_level_keys_are_frozen(self):
        # adding or removing a key is a schema-version bump, not a drift
        assert set(REPORT_SCHEMA) == {
            "schema_version", "name", "sequential_cycles",
            "profiled_cycles", "profiling_slowdown", "loops_profiled",
            "coverage", "predicted_speedup", "actual_speedup",
            "selection", "predicted_vs_actual", "engine", "trace_jit",
            "optimize_stats", "models",
        }

    def test_optimize_stats_block_is_nullable(self):
        # optimizer off: null; on: the per-pass counter dict
        plain = report_to_dict(_report("BitOps"))
        assert plain["optimize_stats"] is None
        validate_report_dict(plain)
        w = get_workload("BitOps")
        report = Jrpm(source=w.source(), name=w.name,
                      optimize=True).run(simulate_tls=False)
        data = report_to_dict(report)
        stats = data["optimize_stats"]
        assert isinstance(stats, dict)
        assert stats["rounds"] >= 1
        assert stats["total"] == sum(
            v for k, v in stats.items() if k not in ("rounds", "total"))
        validate_report_dict(data)

    def test_selection_row_keys_are_frozen(self):
        assert set(SELECTION_ROW_SCHEMA) == {
            "loop_id", "cycles", "coverage", "entries", "threads",
            "avg_iters_per_entry", "avg_thread_size",
            "predicted_speedup", "model",
        }

    def test_models_block_is_nullable(self):
        # legacy runs: null; multi-model runs: the per-loop argmax block
        plain = report_to_dict(_report("BitOps"))
        assert plain["models"] is None
        validate_report_dict(plain)
        w = get_workload("BitOps")
        report = Jrpm(source=w.source(), name=w.name,
                      models="all").run(simulate_tls=True)
        data = report_to_dict(report)
        block = data["models"]
        assert block["requested"] == ["sequential", "hydra-tls",
                                      "doacross"]
        assert block["per_loop"], "BitOps profiles loops"
        for row in block["per_loop"]:
            assert set(row) == {"loop_id", "model", "selected",
                                "estimates"}
            assert set(row["estimates"]) == set(block["requested"])
        for row in data["selection"]["selected"]:
            assert row["model"] in block["requested"]
        for row in data["predicted_vs_actual"]["rows"]:
            assert row["model"] in block["requested"]
        validate_report_dict(data)

    def test_validator_rejects_missing_key(self):
        data = report_to_dict(_report("BitOps"))
        del data["coverage"]
        with pytest.raises(ReportSchemaError, match="missing key"):
            validate_report_dict(data)

    def test_validator_rejects_unexpected_key(self):
        data = report_to_dict(_report("BitOps"))
        data["surprise"] = 1
        with pytest.raises(ReportSchemaError, match="unexpected key"):
            validate_report_dict(data)

    def test_validator_rejects_wrong_type(self):
        data = report_to_dict(_report("BitOps"))
        data["sequential_cycles"] = "12"
        with pytest.raises(ReportSchemaError, match="has type"):
            validate_report_dict(data)

    def test_validator_rejects_bool_masquerading_as_int(self):
        data = report_to_dict(_report("BitOps"))
        data["loops_profiled"] = True
        with pytest.raises(ReportSchemaError, match="has type"):
            validate_report_dict(data)

    def test_validator_rejects_version_drift(self):
        data = report_to_dict(_report("BitOps"))
        data["schema_version"] = REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ReportSchemaError, match="schema_version"):
            validate_report_dict(data)

    def test_validator_rejects_bad_selection_row(self):
        data = report_to_dict(_report("Huffman"))
        assert data["selection"]["selected"], "Huffman selects STLs"
        del data["selection"]["selected"][0]["threads"]
        with pytest.raises(ReportSchemaError, match="selected\\[0\\]"):
            validate_report_dict(data)

    def test_validator_reports_every_problem(self):
        with pytest.raises(ReportSchemaError) as exc:
            validate_report_dict({"schema_version": 1})
        message = str(exc.value)
        for key in REPORT_SCHEMA:
            if key != "schema_version":
                assert key in message


# ---------------------------------------------------------------------------
# canonical encoding: the byte-level contract
# ---------------------------------------------------------------------------

class TestCanonicalEncoding:
    def test_sorted_keys_and_fixed_separators(self):
        text = dumps_canonical({"b": 1, "a": {"d": 2, "c": 3}})
        assert text.index('"a"') < text.index('"b"')
        assert text.index('"c"') < text.index('"d"')
        assert ", " not in text.replace(",\n ", "")

    def test_nan_is_rejected_not_emitted(self):
        with pytest.raises(ValueError):
            dumps_canonical({"x": float("nan")})

    def test_report_nan_becomes_null_before_encoding(self):
        # _finite() maps NaN/inf to None so canonical dumps never trip
        report = _report("Huffman", simulate_tls=True)
        text = report_json(report)
        assert "NaN" not in text and "Infinity" not in text
        json.loads(text)  # strict parse succeeds


# ---------------------------------------------------------------------------
# fleet serialization uses the same per-report serializer
# ---------------------------------------------------------------------------

def test_fleet_to_dict_embeds_canonical_reports():
    names = ("BitOps", "Huffman")
    result = run_fleet([get_workload(n) for n in names],
                       simulate_tls=False)
    data = fleet_to_dict(result, elapsed=1.25, jobs=1)
    assert data["schema_version"] == REPORT_SCHEMA_VERSION
    assert data["elapsed_s"] == 1.25 and data["jobs"] == 1
    assert [row["workload"] for row in data["rows"]] == list(names)
    for row in data["rows"]:
        assert row["ok"]
        validate_report_dict(row["report"])
    # the embedded dicts are exactly what jrpm run --json would emit
    for name, row in zip(names, data["rows"]):
        assert dumps_canonical(row["report"]) == report_json(
            _report(name))
    # aggregates are JSON-clean (no NaN leaks through the canonical dump)
    dumps_canonical(data)


def test_every_workload_is_registered_for_round_trip_coverage():
    # the parametrized round-trip above must cover all 26 Table 6 rows
    assert len(all_workloads()) == 26
