"""Fault-injection tests for the fleet's degradation paths.

The executor promises bounded recovery: a killed worker, a hung
workload, a corrupted cache blob, or an in-stage exception costs at
most one retry or one error row — never the sweep, and never another
workload's numbers.  Every promise here is proven by injecting the
failure deterministically through :class:`repro.jrpm.faults.FaultPlan`
and comparing against an uninjected run.
"""

import os

import pytest

from repro.jrpm.batch import FleetErrorRow, run_fleet
from repro.jrpm.cache import STAGE_COMPILE, STAGE_PROFILE, ArtifactCache
from repro.jrpm.faults import (
    FaultInjected,
    FaultPlan,
    WorkerKilled,
    truncate_stage_blobs,
)
from repro.workloads import get_workload

#: small/fast paper workloads; order matters for the combined test
SAMPLE = ["IDEA", "monteCarlo", "BitOps", "raytrace"]

ROW_FIELDS = [
    "name", "loop_count", "dynamic_depth", "selected_count",
    "avg_selected_height", "threads_per_entry", "thread_size",
    "slowdown", "coverage", "predicted_speedup", "actual_speedup",
]


@pytest.fixture()
def sample_workloads():
    return [get_workload(n) for n in SAMPLE]


def _plan(tmp_path):
    return FaultPlan(str(tmp_path / "fault-state"))


def _assert_rows_match(expected, actual):
    for e_row, a_row in zip(expected, actual):
        assert a_row.ok, a_row
        for field in ROW_FIELDS:
            assert getattr(e_row, field) == getattr(a_row, field), field


class TestFaultPlanMechanics:
    def test_fires_at_most_times(self, tmp_path):
        plan = _plan(tmp_path).raise_in_stage("w", STAGE_COMPILE,
                                              times=2)
        hook = plan.stage_hook("w")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                hook(STAGE_COMPILE)
        hook(STAGE_COMPILE)  # cap reached: clean from now on
        hook(STAGE_COMPILE)

    def test_cap_is_shared_across_plan_copies(self, tmp_path):
        # two unpickled copies in two "workers" share the state dir,
        # so the cap holds fleet-wide, not per-process
        import pickle

        plan = _plan(tmp_path).kill_worker("w")
        clone = pickle.loads(pickle.dumps(plan))
        with pytest.raises(WorkerKilled):
            plan.on_workload_start("w", in_worker=False)
        clone.on_workload_start("w", in_worker=False)  # already spent

    def test_targets_only_named_workload_and_stage(self, tmp_path):
        plan = _plan(tmp_path).raise_in_stage("w", STAGE_PROFILE)
        plan.stage_hook("other")(STAGE_PROFILE)
        plan.stage_hook("w")(STAGE_COMPILE)
        with pytest.raises(FaultInjected):
            plan.stage_hook("w")(STAGE_PROFILE)

    def test_truncate_stage_blobs_is_stage_scoped(self, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        cache.store(STAGE_COMPILE, "k1", [1, 2, 3])
        cache.store(STAGE_PROFILE, "k2", [4, 5, 6])
        assert truncate_stage_blobs(str(tmp_path / "cache"),
                                    STAGE_COMPILE) == 1
        fresh = ArtifactCache(directory=str(tmp_path / "cache"))
        hit, _ = fresh.fetch(STAGE_COMPILE, "k1")
        assert not hit
        hit, got = fresh.fetch(STAGE_PROFILE, "k2")
        assert hit and got == [4, 5, 6]


class TestSerialFaults:
    def test_raise_in_stage_becomes_error_row(self, tmp_path,
                                              sample_workloads):
        plan = _plan(tmp_path).raise_in_stage("IDEA", STAGE_PROFILE)
        result = run_fleet(sample_workloads[:2], simulate_tls=False,
                           on_error="row", fault_plan=plan)
        assert isinstance(result.rows[0], FleetErrorRow)
        assert "FaultInjected" in result.rows[0].error
        assert result.rows[1].ok

    def test_retry_recovers_a_transient_failure(self, tmp_path,
                                                sample_workloads):
        plan = _plan(tmp_path).raise_in_stage("IDEA", STAGE_COMPILE)
        result = run_fleet(sample_workloads[:1], simulate_tls=False,
                           retries=1, backoff=0.0, fault_plan=plan)
        assert result.rows[0].ok
        assert result.retry_count == 1

    def test_kill_degrades_to_exception_outside_workers(
            self, tmp_path, sample_workloads):
        plan = _plan(tmp_path).kill_worker("IDEA")
        result = run_fleet(sample_workloads[:1], simulate_tls=False,
                           on_error="row", fault_plan=plan)
        assert "WorkerKilled" in result.rows[0].error


class TestParallelFaults:
    def test_kill_worker_becomes_error_row_for_its_workload_only(
            self, tmp_path, sample_workloads):
        # retries=0: the killed workload fails, bystanders that shared
        # the broken pool are collateral — but the fleet still drains
        plan = _plan(tmp_path)
        plan.kill_worker("IDEA")
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        result = run_fleet(sample_workloads[:2], simulate_tls=False,
                           jobs=2, cache=cache, on_error="row",
                           retries=1, backoff=0.0, fault_plan=plan)
        assert result.crash_count == 1
        assert result.retry_count >= 1
        assert all(r.ok for r in result.rows)  # retry rescued everyone

    def test_kill_worker_without_retries_fails_only_that_sweep_row(
            self, tmp_path, sample_workloads):
        plan = _plan(tmp_path).kill_worker("IDEA")
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        result = run_fleet(sample_workloads[:1], simulate_tls=False,
                           jobs=2, cache=cache, on_error="row",
                           fault_plan=plan)
        row = result.rows[0]
        assert isinstance(row, FleetErrorRow)
        assert "worker process died" in row.error
        assert result.crash_count == 1

    def test_hang_times_out_and_retry_completes_the_row(
            self, tmp_path, sample_workloads):
        plan = _plan(tmp_path).hang_workload("IDEA", seconds=60.0)
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        result = run_fleet(sample_workloads[:2], simulate_tls=False,
                           jobs=2, cache=cache, on_error="row",
                           timeout=4.0, retries=1, backoff=0.0,
                           fault_plan=plan)
        assert result.timeout_count == 1
        assert all(r.ok for r in result.rows)

    def test_hang_without_retries_is_a_timeout_error_row(
            self, tmp_path, sample_workloads):
        plan = _plan(tmp_path).hang_workload("IDEA", seconds=60.0)
        cache = ArtifactCache(directory=str(tmp_path / "cache"))
        result = run_fleet(sample_workloads[:2], simulate_tls=False,
                           jobs=2, cache=cache, on_error="row",
                           timeout=2.0, fault_plan=plan)
        row = result.rows[0]
        assert isinstance(row, FleetErrorRow)
        assert "timed out after 2.0s" in row.error
        assert result.rows[1].ok  # its neighbour was unharmed
        assert result.timeout_count == 1

    def test_truncate_blob_demotes_to_miss_and_recomputes(
            self, tmp_path, sample_workloads):
        # warm the shared cache, then have the second sweep's first
        # workload find its compile blobs truncated
        cache_dir = str(tmp_path / "cache")
        cache = ArtifactCache(directory=cache_dir)
        baseline = run_fleet(sample_workloads[:2], simulate_tls=False,
                             jobs=2, cache=cache)
        plan = _plan(tmp_path).truncate_blob("IDEA", STAGE_COMPILE)
        injected = run_fleet(sample_workloads[:2], simulate_tls=False,
                             jobs=2, cache=ArtifactCache(cache_dir),
                             fault_plan=plan)
        assert injected.cache_corrupt >= 1
        _assert_rows_match(baseline.rows, injected.rows)
        quarantined = [n for n in os.listdir(cache_dir)
                       if n.endswith(".corrupt")]
        assert quarantined


class TestCombinedDegradation:
    """The ISSUE acceptance scenario: one sweep survives a worker
    kill, a hang, and truncated cache blobs at once, and only the
    workload with a persistent fault loses its row."""

    def test_kill_hang_and_truncated_blob_in_one_sweep(
            self, tmp_path, sample_workloads):
        cache_dir = str(tmp_path / "cache")
        baseline = run_fleet(sample_workloads, simulate_tls=False,
                             cache=ArtifactCache(cache_dir))

        plan = _plan(tmp_path)
        plan.kill_worker("IDEA")                       # idx 0: crash
        plan.truncate_blob("monteCarlo", STAGE_COMPILE)  # idx 1
        plan.raise_in_stage("BitOps", STAGE_PROFILE,     # idx 2:
                            times=2)                     # out-retries
        plan.hang_workload("raytrace", seconds=60.0)     # idx 3

        injected = run_fleet(sample_workloads, simulate_tls=False,
                             jobs=2, cache=ArtifactCache(cache_dir),
                             on_error="row", timeout=4.0, retries=1,
                             backoff=0.0, fault_plan=plan)

        # only the persistently-faulted workload lost its row...
        assert [r.ok for r in injected.rows] == [True, True, False,
                                                 True]
        bad = injected.rows[2]
        assert isinstance(bad, FleetErrorRow)
        assert "FaultInjected" in bad.error
        assert bad.attempts == 2
        # ...every other row is identical to the uninjected run
        survivors = [(b, i) for b, i
                     in zip(baseline.rows, injected.rows) if i.ok]
        _assert_rows_match([b for b, _ in survivors],
                           [i for _, i in survivors])
        # and each degradation path left its fingerprint
        assert injected.crash_count == 1
        assert injected.timeout_count == 1
        assert injected.cache_corrupt >= 1
        assert 3 <= injected.retry_count <= 4
        assert "FAILED" in injected.render()
