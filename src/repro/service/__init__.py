"""The Jrpm analysis service: a long-lived daemon serving pipeline
analyses over HTTP.

The paper's Jrpm is a *resident* system — the JVM stays live while
TEST profiles, selects STLs, and recompiles on the fly (Fig. 1,
Sec. 5.2).  This package is that residency for the reproduction: one
process keeps the :class:`~repro.jrpm.cache.ArtifactCache` and the
:class:`~repro.jrpm.executor.FleetExecutor` worker pool warm across
requests, coalesces duplicate in-flight work, batches compatible
requests into single fleet submissions, sheds load past a bounded
queue, and exposes live metrics.

Entry points: ``jrpm serve`` on the command line, or
:class:`AnalysisService` embedded in-process (tests, benches).
"""

from repro.service.metrics import (
    LatencyHistogram,
    ServiceMetrics,
    aggregate_snapshots,
)
from repro.service.protocol import (
    AnalyzeRequest,
    ProtocolError,
    parse_analyze_request,
)
from repro.service.router import HashRing, ShardedFrontend
from repro.service.scheduler import (
    QueueFullError,
    RequestScheduler,
    SchedulerClosedError,
    Ticket,
)
from repro.service.server import AnalysisService
from repro.service.shard import ShardProcess

__all__ = [
    "AnalysisService",
    "AnalyzeRequest",
    "HashRing",
    "LatencyHistogram",
    "ProtocolError",
    "QueueFullError",
    "RequestScheduler",
    "SchedulerClosedError",
    "ServiceMetrics",
    "ShardProcess",
    "ShardedFrontend",
    "Ticket",
    "aggregate_snapshots",
    "parse_analyze_request",
]
