"""The HTTP daemon: ``jrpm serve``.

Endpoints
---------
``POST /analyze``
    Body per :mod:`repro.service.protocol`; replies 200 with
    ``{"request", "report", "meta"}`` where ``report`` is the exact
    canonical serialization ``jrpm run --json`` prints.  400 on a
    malformed request, 429 + ``Retry-After`` when the queue is at its
    bound, 500 when the pipeline failed, 503 while draining.
``GET /healthz``
    200 ``{"status": "ok", ...}`` while serving; 503 while draining
    (load balancers stop routing before in-flight work is cut off).
``GET /metrics``
    Prometheus text exposition (``Accept: application/json`` for the
    JSON snapshot).
``GET /workloads``
    The bundled workload names (what ``/analyze`` accepts).
``GET /peek/<key>`` / ``POST /push/<key>``
    Shard-to-shard result-LRU exchange: a shard peeks its replicas
    before computing a missing key, and pushes each fresh result to
    them so a failover target is warm before the primary dies.

Shutdown sequence (SIGTERM/SIGINT or :meth:`AnalysisService.stop`):
mark draining (healthz flips to 503, new /analyze gets 503) → drain
the scheduler (queued and in-flight requests resolve; their handler
threads write responses) → stop the HTTP accept loop → close the
resident executor pool → optionally dump the final metrics snapshot.
Everything is stdlib: ``http.server`` threads in front, the scheduler
behind.
"""

from __future__ import annotations

import http.client
import json
import math
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse

from repro.jrpm.cache import ArtifactCache
from repro.jrpm.report import (
    ReportSchemaError,
    dumps_canonical,
    validate_report_dict,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PEERS_HEADER,
    ProtocolError,
    error_body,
    parse_analyze_request,
    parse_peek_path,
    parse_push_path,
    peek_path,
    push_path,
)
from repro.service.scheduler import (
    QueueFullError,
    RequestScheduler,
    SchedulerClosedError,
)

#: default bound on one request's end-to-end wait (queue + compute);
#: generous — admission control, not this, is the overload defense
DEFAULT_REQUEST_TIMEOUT = 600.0

#: default bound on a request body; a hostile Content-Length must not
#: turn into an arbitrary allocation (413 instead)
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: how long a shard waits on a replica's /peek before computing
#: itself; peeking is an optimization and must stay cheap
PEEK_TIMEOUT = 2.0


class _BadBody(Exception):
    """A request body the handler refuses to read.

    After a 413/400 the unread body bytes are still on the wire, so
    the connection cannot be kept alive — the handler must close it.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class JsonHandler(BaseHTTPRequestHandler):
    """Shared plumbing for the daemon's JSON-over-HTTP handlers (the
    single-service :class:`_Handler` and the sharded frontend's):
    canonical JSON responses, bounded keep-alive-safe body reads, and
    quiet logging.  Subclasses route; ``self.server.service`` is the
    owning service object (anything with ``metrics``, ``verbose`` and
    ``max_body_bytes``)."""

    server_version = "jrpm-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    @property
    def service(self):
        return self.server.service

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        if self.service.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send_json(self, status: int, payload: Any,
                   headers: Optional[Dict[str, str]] = None,
                   text: Optional[str] = None) -> None:
        body = (text if text is not None
                else dumps_canonical(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type",
                         "text/plain; charset=utf-8" if text is not None
                         else "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def _read_body(self) -> bytes:
        raw = self.headers.get("Content-Length", 0)
        try:
            length = int(raw)
        except ValueError:
            raise _BadBody(400, "malformed Content-Length: %r" % raw)
        if length > self.service.max_body_bytes:
            raise _BadBody(
                413, "request body of %d bytes exceeds the %d-byte "
                     "limit" % (length, self.service.max_body_bytes))
        return self.rfile.read(length) if length > 0 else b""


class _Handler(JsonHandler):
    """Routes to the owning :class:`AnalysisService`."""

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        started = time.monotonic()
        path = urlparse(self.path).path
        service = self.service
        endpoint = path.lstrip("/") or "root"
        if path == "/healthz":
            status, payload = service.health()
            self._send_json(status, payload)
        elif path == "/metrics":
            status = 200
            if "application/json" in self.headers.get("Accept", ""):
                self._send_json(200, service.metrics.to_dict())
            else:
                self._send_json(200, None,
                                text=service.metrics.render_prometheus())
        elif path == "/workloads":
            from repro.workloads.registry import workload_names
            status = 200
            self._send_json(200, {"workloads": workload_names(
                include_synthetic=True)})
        elif parse_peek_path(path) is not None:
            endpoint = "peek"
            outcome = service.scheduler.peek(parse_peek_path(path))
            if outcome is None:
                status = 404
                self._send_json(404, error_body("no cached result"))
            else:
                status = 200
                service.metrics.inc("peek_served")
                self._send_json(200, {"outcome": outcome})
        else:
            endpoint, status = "other", 404
            self._send_json(404, error_body("no such endpoint: %s"
                                            % path))
        service.metrics.observe_request(
            endpoint, status, time.monotonic() - started)

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        started = time.monotonic()
        path = urlparse(self.path).path
        service = self.service
        endpoint = "analyze" if path == "/analyze" else "other"
        # the body must be consumed (or the connection condemned)
        # before any response: on an HTTP/1.1 keep-alive connection
        # unread body bytes would be parsed as the next request line
        try:
            body = self._read_body()
        except _BadBody as exc:
            # the unread body is still on the wire: advertise and
            # perform a close (send_header('Connection','close') also
            # flips close_connection)
            self._send_json(exc.status, error_body(str(exc)),
                            headers={"Connection": "close"})
            service.metrics.observe_request(
                endpoint, exc.status, time.monotonic() - started)
            return
        push_key = parse_push_path(path)
        if push_key is not None:
            status, payload = service.handle_push(push_key, body)
            self._send_json(status, payload)
            service.metrics.observe_request(
                "push", status, time.monotonic() - started)
            return
        if path != "/analyze":
            self._send_json(404, error_body("no such endpoint: %s"
                                            % path))
            service.metrics.observe_request(
                "other", 404, time.monotonic() - started)
            return
        status, payload, headers = service.handle_analyze(
            body, peers=self.headers.get(PEERS_HEADER))
        self._send_json(status, payload, headers=headers)
        service.metrics.observe_request(
            "analyze", status, time.monotonic() - started)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # the stdlib default listen backlog of 5 resets connections under
    # concurrent fan-in; the daemon must absorb bursts of 32+ connects
    # and shed load at the admission queue (429), not at the socket
    request_queue_size = 128
    service: "AnalysisService"


class AnalysisService:
    """The resident analysis daemon: HTTP front, scheduler behind.

    Embeddable: ``AnalysisService(port=0)`` binds an ephemeral port
    (read :attr:`port` after construction), :meth:`start` serves on a
    background thread, :meth:`stop` drains and shuts down.  The CLI
    wraps this with signal handlers and :meth:`serve_until_signal`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 scheduler: Optional[RequestScheduler] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 cache: Optional[ArtifactCache] = None,
                 request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 verbose: bool = False,
                 metrics_dump: Optional[str] = None,
                 **scheduler_kwargs):
        self.metrics = metrics if metrics is not None else \
            (scheduler.metrics if scheduler is not None
             else ServiceMetrics())
        if scheduler is not None:
            self.scheduler = scheduler
        else:
            self.scheduler = RequestScheduler(
                cache=cache, metrics=self.metrics, **scheduler_kwargs)
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.verbose = verbose
        #: path for the shutdown metrics flush (None: no dump)
        self.metrics_dump = metrics_dump
        self.draining = False
        self._started = time.monotonic()
        self._stop_requested = threading.Event()
        self._stopped = False
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.service = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        #: handler threads still writing responses, and a condition to
        #: wait for them during shutdown
        self._active = 0
        self._active_cond = threading.Condition()

    # -- request handling -------------------------------------------------

    def handle_analyze(self, body: bytes, peers: Optional[str] = None
                       ) -> Tuple[int, Dict[str, Any],
                                  Optional[Dict[str, str]]]:
        """Full /analyze logic; returns (status, payload, headers).

        Kept off the handler class so tests can drive it without a
        socket.  ``peers`` is the sharded frontend's comma-separated
        replica list (see :data:`~repro.service.protocol.PEERS_HEADER`).
        """
        with self._active_cond:
            self._active += 1
        try:
            return self._handle_analyze(body, peers)
        finally:
            with self._active_cond:
                self._active -= 1
                self._active_cond.notify_all()

    def _handle_analyze(self, body: bytes, peers: Optional[str] = None
                        ) -> Tuple[int, Dict[str, Any],
                                   Optional[Dict[str, str]]]:
        if self.draining:
            return 503, error_body("service is draining"), None
        try:
            request = parse_analyze_request(body)
        except ProtocolError as exc:
            return exc.status, error_body(str(exc)), None
        if peers and not request.fresh \
                and self.scheduler.peek(request.key) is None:
            self._peek_replicas(request.key, peers)
        try:
            ticket = self.scheduler.submit(request)
        except QueueFullError as exc:
            # header and JSON body must agree: both carry the same
            # ceil'd estimate ("%d" alone would truncate 1.5 -> 1)
            retry_after = max(1, math.ceil(exc.retry_after))
            return (429,
                    error_body(str(exc), retry_after=retry_after),
                    {"Retry-After": "%d" % retry_after})
        except SchedulerClosedError:
            return 503, error_body("service is draining"), None
        waited = time.monotonic()
        outcome = ticket.wait(timeout=self.request_timeout)
        if outcome is None:
            # the computation keeps running (the pool can't cancel
            # it); release this waiter's claim so the scheduler knows
            # the eventual result is an orphan
            ticket.abandon()
            self.metrics.inc("request_timeouts")
            return (504,
                    error_body("request timed out after %.0fs in the "
                               "service" % self.request_timeout),
                    None)
        if outcome.get("status") != "ok":
            payload = error_body(
                outcome.get("error", "pipeline failed"),
                workload=outcome.get("workload"),
                attempts=outcome.get("attempts", 1))
            if outcome.get("trace"):
                payload["trace"] = outcome["trace"]
            return 500, payload, None
        report = outcome["report"]
        try:
            validate_report_dict(report)
        except ReportSchemaError as exc:
            return (500,
                    error_body("internal schema violation: %s" % exc),
                    None)
        if peers and not ticket.cached and not ticket.coalesced:
            # freshly computed here: push the outcome to the key's
            # replicas so their LRUs are warm before any failover
            # (peeking only heals on a miss; pushing closes the
            # cold window entirely)
            self._push_replicas(request.key, outcome, peers)
        meta = {
            "cached": ticket.cached,
            "coalesced": ticket.coalesced,
            "wait_s": round(time.monotonic() - waited, 6),
            "attempts": outcome.get("attempts", 1),
        }
        if "batch_size" in outcome:
            meta["batch_size"] = outcome["batch_size"]
            meta["compute_s"] = outcome["compute_s"]
        return (200,
                {"request": request.describe(), "key": request.key,
                 "report": report, "meta": meta},
                None)

    def _peek_replicas(self, key: str, peers: str) -> bool:
        """Ask the key's replica shards for a cached result before
        computing; installs a hit into the local result LRU.

        The warm-handoff path after a ring change: a shard newly made
        primary for ``key`` peeks its successor (usually the old
        primary), so adding a shard doesn't cold-start the remapped
        key range.
        """
        for addr in peers.split(","):
            host, _, port = addr.strip().rpartition(":")
            if not host or not port.isdigit():
                continue
            conn = http.client.HTTPConnection(
                host, int(port), timeout=PEEK_TIMEOUT)
            try:
                conn.request("GET", peek_path(key))
                resp = conn.getresponse()
                data = resp.read()
                if resp.status == 200:
                    outcome = json.loads(data)["outcome"]
                    self.scheduler.install_result(key, outcome)
                    self.metrics.inc("peek_hits")
                    return True
            except (OSError, ValueError, KeyError,
                    http.client.HTTPException):
                continue  # peeking is best-effort; compute locally
            finally:
                conn.close()
        self.metrics.inc("peek_misses")
        return False

    def _push_replicas(self, key: str, outcome: Dict[str, Any],
                       peers: str) -> int:
        """POST a freshly computed outcome to the key's replica shards
        (``POST /push/<key>``) so their result LRUs warm immediately.

        Best-effort like peeking: a dead or slow replica costs one
        bounded timeout and a ``replica_push_failures`` tick, never a
        failed response.  Returns the number of replicas warmed.
        """
        body = dumps_canonical({"outcome": outcome}).encode("utf-8")
        pushed = 0
        for addr in peers.split(","):
            host, _, port = addr.strip().rpartition(":")
            if not host or not port.isdigit():
                continue
            conn = http.client.HTTPConnection(
                host, int(port), timeout=PEEK_TIMEOUT)
            try:
                conn.request(
                    "POST", push_path(key), body=body,
                    headers={"Content-Type": "application/json"})
                resp = conn.getresponse()
                resp.read()
                if resp.status == 200:
                    pushed += 1
                    self.metrics.inc("replica_pushes")
                else:
                    self.metrics.inc("replica_push_failures")
            except (OSError, http.client.HTTPException):
                self.metrics.inc("replica_push_failures")
            finally:
                conn.close()
        return pushed

    def handle_push(self, key: str, body: bytes
                    ) -> Tuple[int, Dict[str, Any]]:
        """Adopt a replica's freshly computed outcome into the local
        result LRU (the receiving side of :meth:`_push_replicas`)."""
        try:
            data = json.loads(body.decode("utf-8"))
            outcome = data["outcome"]
        except (ValueError, UnicodeDecodeError, KeyError, TypeError):
            return 400, error_body(
                "push body must be JSON {\"outcome\": {...}}")
        if not isinstance(outcome, dict) \
                or outcome.get("status") != "ok":
            return 400, error_body(
                "push outcome must be a completed ok result")
        self.scheduler.install_result(key, outcome)
        self.metrics.inc("replica_push_received")
        return 200, {"status": "ok", "key": key}

    def health(self) -> Tuple[int, Dict[str, Any]]:
        payload = {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "queued": self.scheduler.queued,
            "in_flight": self.scheduler.in_flight,
        }
        return (503 if self.draining else 200), payload

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AnalysisService":
        """Serve on a background thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="jrpm-http",
            kwargs={"poll_interval": 0.1}, daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown; see the module docstring for the order."""
        if self._stopped:
            return
        self._stopped = True
        self.draining = True
        # let admitted work finish and its handler threads respond
        self.scheduler.stop(drain=drain, timeout=timeout)
        deadline = time.monotonic() + 5.0
        with self._active_cond:
            while self._active and time.monotonic() < deadline:
                self._active_cond.wait(timeout=0.1)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.metrics_dump:
            try:
                with open(self.metrics_dump, "w") as handle:
                    json.dump(self.metrics.to_dict(), handle, indent=2,
                              sort_keys=True)
                    handle.write("\n")
            except OSError:
                pass  # a failed flush must not fail the shutdown

    # -- signals -----------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT request a graceful stop (drain, then exit).

        Only callable from the main thread (signal module rules); the
        CLI path uses it, embedded users call :meth:`stop` directly.
        """
        def _request_stop(signum, frame):  # noqa: ARG001
            self._stop_requested.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    def serve_until_signal(self) -> None:
        """Block until a signal (or :meth:`request_stop`) arrives, then
        drain and stop."""
        self._stop_requested.wait()
        self.stop(drain=True)

    def request_stop(self) -> None:
        """Programmatic equivalent of SIGTERM."""
        self._stop_requested.set()
