"""Wire protocol of the analysis service.

One request shape::

    POST /analyze
    {"workload": "Huffman",              # required: a bundled workload
     "config":   {"n_cpus": 8, ...},     # optional HydraConfig overrides
     "stages":   ["profile", "tls"],     # optional; drop "tls" to skip
                                         #   the timing simulation
     "level":    "optimized" | "base",   # optional annotation level
     "extended": false,                  # optional per-PC profiling
     "optimize": false,                  # optional: run the LVN/LICM/
                                         #   DCE pass pipeline first
     "models":   ["hydra-tls", ...],     # optional: per-loop execution-
                                         #   model argmax over these
                                         #   registered models
     "fresh":    false}                  # optional: bypass the result
                                         #   cache (recompute)

Parsing is strict: unknown top-level keys, unknown workloads, unknown
config fields, and malformed values are all rejected with a 400-shaped
:class:`ProtocolError` *before* any work is admitted, so the bounded
queue only ever holds well-formed requests.

Every request canonicalizes to a content-addressed ``key`` (the same
SHA-256 framing the artifact cache uses).  The scheduler coalesces
concurrent identical keys onto one in-flight computation and serves
repeats of completed keys from its result cache; ``profile_key``
groups *compatible* requests (same config/stages/level) so the
dispatcher can batch them into a single fleet submission.
"""

from __future__ import annotations

import inspect
import json
from typing import Any, Dict, Optional, Tuple

from repro.hydra.config import HydraConfig
from repro.jit.annotate import AnnotationLevel
from repro.jrpm.cache import cache_key
from repro.workloads.registry import Workload, get_workload, workload_names

#: request stages a client may name; "profile" (compile + annotate +
#: profile + select) always runs, "tls" adds the timing simulation
VALID_STAGES = ("profile", "tls")

#: header the sharded frontend sets on a routed ``POST /analyze``:
#: comma-separated ``host:port`` of the key's other replicas, which
#: the owning shard may peek (``GET /peek/<key>``) before computing
PEERS_HEADER = "X-Jrpm-Peers"

#: response header the frontend adds naming the shard that served the
#: request (the body stays byte-identical to a single-shard daemon)
SHARD_HEADER = "X-Jrpm-Shard"


def peek_path(key: str) -> str:
    """The shard-to-shard result-LRU peek endpoint for ``key``."""
    return "/peek/" + key


def parse_peek_path(path: str) -> Optional[str]:
    """The key of a ``GET /peek/<key>`` path, or None if ``path`` is
    not a peek request."""
    if not path.startswith("/peek/"):
        return None
    key = path[len("/peek/"):]
    return key or None


def push_path(key: str) -> str:
    """The shard-to-shard result-push endpoint for ``key``: after a
    fresh compute, the owning shard POSTs the outcome here so its
    replicas' LRUs are warm *before* any failover (peeking only heals
    on a miss; pushing shrinks the cold window to zero)."""
    return "/push/" + key


def parse_push_path(path: str) -> Optional[str]:
    """The key of a ``POST /push/<key>`` path, or None if ``path`` is
    not a push request."""
    if not path.startswith("/push/"):
        return None
    key = path[len("/push/"):]
    return key or None


#: top-level request keys the parser accepts
_REQUEST_KEYS = ("workload", "config", "stages", "level", "extended",
                 "optimize", "models", "fresh")

#: HydraConfig constructor parameters, introspected once — the set of
#: legal "config" override fields
CONFIG_FIELDS = tuple(
    name for name in inspect.signature(HydraConfig.__init__).parameters
    if name != "self")


class ProtocolError(ValueError):
    """A request the service must reject; carries the HTTP status."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class AnalyzeRequest:
    """A validated ``POST /analyze`` body."""

    def __init__(self, workload: Workload,
                 config: HydraConfig,
                 config_overrides: Dict[str, Any],
                 simulate_tls: bool = True,
                 level: AnnotationLevel = AnnotationLevel.OPTIMIZED,
                 extended: bool = False,
                 optimize: bool = False,
                 models: Optional[Tuple[str, ...]] = None,
                 fresh: bool = False):
        self.workload = workload
        self.config = config
        #: the raw override dict (sorted for canonicalization)
        self.config_overrides = dict(sorted(config_overrides.items()))
        self.simulate_tls = simulate_tls
        self.level = level
        self.extended = extended
        self.optimize = optimize
        #: execution models competing per loop (None = legacy)
        self.models = models
        #: bypass the scheduler's result cache (still coalesces with
        #: concurrent identical requests and fills the cache)
        self.fresh = fresh
        #: content-addressed identity: requests with equal keys are
        #: the same computation
        self.key = cache_key(
            "analyze", workload.name, self.config_overrides,
            simulate_tls, level, extended, optimize, models)

    @property
    def profile_key(self) -> Tuple:
        """Execution-profile equality: requests sharing it can run in
        one fleet submission (same config, stages, level, extended,
        optimize, models)."""
        return (tuple(self.config_overrides.items()),
                self.simulate_tls, self.level, self.extended,
                self.optimize, self.models)

    def describe(self) -> Dict[str, Any]:
        """Echo block for responses and logs."""
        return {
            "workload": self.workload.name,
            "config": self.config_overrides,
            "stages": (["profile", "tls"] if self.simulate_tls
                       else ["profile"]),
            "level": self.level.value,
            "extended": self.extended,
            "optimize": self.optimize,
            "models": list(self.models) if self.models else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<AnalyzeRequest %s key=%s...>" % (self.workload.name,
                                                  self.key[:12])


def _parse_config(raw: Any) -> Tuple[HydraConfig, Dict[str, Any]]:
    if raw is None:
        return HydraConfig(), {}
    if not isinstance(raw, dict):
        raise ProtocolError("'config' must be an object, got %s"
                            % type(raw).__name__)
    unknown = sorted(set(raw) - set(CONFIG_FIELDS))
    if unknown:
        raise ProtocolError(
            "unknown config field(s) %s; legal fields: %s"
            % (", ".join(map(repr, unknown)), ", ".join(CONFIG_FIELDS)))
    for field, value in raw.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "config field %r must be a number, got %r"
                % (field, value))
    try:
        config = HydraConfig(**raw)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("invalid config: %s" % exc)
    return config, dict(raw)


def _parse_stages(raw: Any) -> bool:
    """Returns ``simulate_tls``."""
    if raw is None:
        return True
    if not isinstance(raw, list) \
            or not all(isinstance(s, str) for s in raw):
        raise ProtocolError("'stages' must be a list of stage names")
    unknown = sorted(set(raw) - set(VALID_STAGES))
    if unknown:
        raise ProtocolError(
            "unknown stage(s) %s; legal stages: %s"
            % (", ".join(map(repr, unknown)), ", ".join(VALID_STAGES)))
    return "tls" in raw


def _parse_models(raw: Any) -> Optional[Tuple[str, ...]]:
    if raw is None:
        return None
    if not isinstance(raw, list) \
            or not all(isinstance(m, str) and m for m in raw):
        raise ProtocolError(
            "'models' must be a list of execution-model names")
    from repro.models import model_names, resolve_models
    try:
        return resolve_models(raw)
    except KeyError:
        unknown = sorted(set(raw) - set(model_names()))
        raise ProtocolError(
            "unknown model(s) %s; registered models: %s"
            % (", ".join(map(repr, unknown)),
               ", ".join(model_names())))


def _parse_flag(data: Dict[str, Any], key: str) -> bool:
    value = data.get(key, False)
    if not isinstance(value, bool):
        raise ProtocolError("%r must be a boolean, got %r" % (key, value))
    return value


def parse_analyze_request(body: bytes) -> AnalyzeRequest:
    """Parse and validate a raw ``POST /analyze`` body."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("request body is not valid JSON: %s" % exc)
    if not isinstance(data, dict):
        raise ProtocolError("request body must be a JSON object")
    unknown = sorted(set(data) - set(_REQUEST_KEYS))
    if unknown:
        raise ProtocolError(
            "unknown request key(s) %s; legal keys: %s"
            % (", ".join(map(repr, unknown)), ", ".join(_REQUEST_KEYS)))

    name = data.get("workload")
    if not isinstance(name, str) or not name:
        raise ProtocolError("'workload' is required and must be a "
                            "workload name (see GET /workloads)")
    try:
        workload = get_workload(name)
    except KeyError:
        raise ProtocolError(
            "unknown workload %r; choose from: %s"
            % (name, ", ".join(workload_names())))

    config, overrides = _parse_config(data.get("config"))
    simulate_tls = _parse_stages(data.get("stages"))

    level_raw = data.get("level", AnnotationLevel.OPTIMIZED.value)
    try:
        level = AnnotationLevel(level_raw)
    except ValueError:
        raise ProtocolError(
            "unknown level %r; legal levels: %s"
            % (level_raw,
               ", ".join(lv.value for lv in AnnotationLevel)))

    return AnalyzeRequest(
        workload=workload, config=config, config_overrides=overrides,
        simulate_tls=simulate_tls, level=level,
        extended=_parse_flag(data, "extended"),
        optimize=_parse_flag(data, "optimize"),
        models=_parse_models(data.get("models")),
        fresh=_parse_flag(data, "fresh"))


def error_body(message: str, **extra: Any) -> Dict[str, Any]:
    """The uniform JSON error envelope."""
    body = {"error": message}
    body.update(extra)
    return body
