"""One shard of the sharded serving tier.

A shard is a full :class:`~repro.service.server.AnalysisService` — the
scheduler, the resident executor pool, the artifact cache, and the
result LRU — running in its own process on its own port.  The
frontend (:class:`~repro.service.router.ShardedFrontend`) routes each
content-addressed request key to one shard, so a shard's caches stay
warm on a stable slice of the key space.

Run directly (the frontend does this via :class:`ShardProcess`)::

    python -m repro.service.shard --port 0 --index 0 [serve options]

The process prints one banner line naming its bound port, serves until
SIGTERM/SIGINT, drains, prints a summary, and exits 0.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import Any, Dict, Optional, Tuple

#: banner prefix the frontend parses to learn the shard's port
BANNER = "jrpm-shard"


class ShardError(RuntimeError):
    """A shard process failed to start or died unexpectedly."""


class ShardProcess:
    """Owns one shard subprocess: spawn, address discovery, shutdown.

    ``options`` maps serve-option names (``jobs``, ``queue_depth``,
    ``max_batch``, ``result_cache``, ``cache_dir``, ``timeout``,
    ``retries``, ``max_body_bytes``, ``trace_jit``, ``verbose``) to
    values; None values are omitted (shard defaults apply).
    """

    def __init__(self, index: int,
                 options: Optional[Dict[str, Any]] = None,
                 host: str = "127.0.0.1"):
        self.index = index
        self.host = host
        self.options = dict(options or {})
        self.port: Optional[int] = None
        self._proc: Optional[subprocess.Popen] = None

    def _argv(self) -> list:
        # -c, not -m: runpy would re-execute a module the package
        # __init__ already imported and warn about the double import
        argv = [sys.executable, "-c",
                "import sys; from repro.service.shard import main; "
                "sys.exit(main())",
                "--index", str(self.index),
                "--host", self.host, "--port", "0"]
        options = dict(self.options)
        # each shard gets its own artifact-cache subdirectory: the
        # ring already partitions keys, so sharing one directory would
        # only contend on writes without improving hit rates
        cache_dir = options.pop("cache_dir", None)
        if cache_dir:
            argv += ["--cache-dir",
                     os.path.join(cache_dir, "shard-%d" % self.index)]
        trace_jit = options.pop("trace_jit", None)
        if trace_jit is not None:
            argv.append("--trace-jit" if trace_jit
                        else "--no-trace-jit")
        if options.pop("verbose", False):
            argv.append("--verbose")
        for name, value in sorted(options.items()):
            if value is not None:
                argv += ["--" + name.replace("_", "-"), str(value)]
        return argv

    def spawn(self) -> Tuple[str, int]:
        """Start the subprocess; returns ``(host, port)`` once the
        shard's banner names its bound port."""
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        # stdout carries only the banner and the shutdown summary;
        # shard stderr (tracebacks, --verbose logs) stays on ours
        self._proc = subprocess.Popen(
            self._argv(), stdout=subprocess.PIPE, env=env, text=True)
        banner = self._proc.stdout.readline()
        if not banner.startswith(BANNER):
            self._proc.kill()
            self._proc.wait(timeout=10)
            raise ShardError(
                "shard %d failed to start (got %r)"
                % (self.index, banner))
        self.port = int(banner.rsplit(":", 1)[1])
        return self.host, self.port

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def request_stop(self) -> None:
        """SIGTERM: the shard drains and exits on its own."""
        if self.alive:
            self._proc.terminate()

    def wait(self, timeout: float = 30.0) -> Optional[int]:
        """Exit code, killing the shard if the drain exceeds
        ``timeout``."""
        if self._proc is None:
            return None
        try:
            self._proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._proc.kill()
            self._proc.wait(timeout=10)
        finally:
            if self._proc.stdout is not None:
                self._proc.stdout.close()
        return self._proc.returncode


def main(argv=None) -> int:
    """Entry point of one shard process."""
    from repro.jrpm.cache import ArtifactCache
    from repro.service.server import (
        DEFAULT_MAX_BODY_BYTES,
        AnalysisService,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.shard",
        description="one shard of the jrpm sharded serving tier")
    parser.add_argument("--index", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--result-cache", type=int, default=256)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--retries", type=int, default=0)
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY_BYTES)
    parser.add_argument("--trace-jit",
                        action=argparse.BooleanOptionalAction,
                        default=None)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    cache = None
    if args.cache_dir:
        cache = ArtifactCache(directory=args.cache_dir)
    service = AnalysisService(
        host=args.host, port=args.port, cache=cache,
        jobs=args.jobs, queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        result_cache_size=args.result_cache,
        timeout=args.timeout, retries=args.retries,
        max_body_bytes=args.max_body_bytes,
        verbose=args.verbose, trace_jit=args.trace_jit)
    service.install_signal_handlers()
    service.start()
    print("%s %d listening on http://%s:%d"
          % (BANNER, args.index, service.host, service.port),
          flush=True)
    service.serve_until_signal()
    snapshot = service.metrics.to_dict()
    print("%s %d drained: %d analyses, %d cached, %d peek hits"
          % (BANNER, args.index,
             snapshot["counters"].get("analyze_completed", 0),
             snapshot["counters"].get("result_cache_hits", 0),
             snapshot["counters"].get("peek_hits", 0)), flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
