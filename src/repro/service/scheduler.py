"""Request scheduling: coalescing, batching, backpressure.

The scheduler is the service's core.  Requests flow through four
states::

    submit ──▶ coalesced      (identical request already in flight:
               │               attach to it, no new work)
               ├─▶ cached     (identical request completed recently:
               │               served from the result cache, O(lookup))
               ├─▶ queued     (admitted to the bounded queue)
               │     │
               │     ▼
               │   running    (dispatcher drained it into a batch and
               │     │         submitted the batch as one fleet)
               │     ▼
               │   resolved   (result stored, waiters woken, key
               │               published to the result cache)
               └─▶ REJECTED   (queue full: QueueFullError → HTTP 429,
                               or shutting down: SchedulerClosedError)

Coalescing rule: two requests coalesce iff their content-addressed
``key`` matches (same workload, config, stages, level, extended) and
the first is still unresolved.  ``fresh=true`` requests skip the
result cache but still coalesce — two concurrent fresh requests are
one computation.

Batching rule: the single dispatcher thread drains up to ``max_batch``
queued entries sharing the head entry's *execution profile* (equal
config/stages/level/extended — :attr:`AnalyzeRequest.profile_key`)
into one :meth:`FleetExecutor.run` call, amortizing pool dispatch and
letting distinct workloads run in parallel across the warm worker
pool.  Entries with other profiles keep their queue position.

Load shedding: ``submit`` never blocks.  When ``queue_depth`` entries
are already waiting, it raises :class:`QueueFullError` carrying a
``retry_after`` estimate (queue length x recent mean latency), which
the HTTP layer turns into ``429 Retry-After: N`` — the daemon degrades
by refusing, never by collapsing.

Shutdown: :meth:`stop` closes admission (new submits raise
:class:`SchedulerClosedError`), then either drains the queue
(``drain=True``: every admitted request still gets its result) or
fails the queued entries immediately; the dispatcher exits and the
executor's resident pool is closed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional

from repro.jrpm.cache import ArtifactCache, diff_stats
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.report import report_to_dict
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import AnalyzeRequest


class QueueFullError(RuntimeError):
    """Admission control refused the request (queue at its bound)."""

    def __init__(self, depth: int, retry_after: float):
        super().__init__(
            "analysis queue is full (%d waiting); retry in ~%.0fs"
            % (depth, retry_after))
        self.depth = depth
        self.retry_after = retry_after


class SchedulerClosedError(RuntimeError):
    """The scheduler is shutting down and admits no new work."""


class _Entry:
    """One in-flight computation and everyone waiting on it."""

    __slots__ = ("key", "request", "event", "outcome", "coalesced",
                 "enqueued_at", "waiters")

    def __init__(self, request: AnalyzeRequest):
        self.key = request.key
        self.request = request
        self.event = threading.Event()
        #: set exactly once by the dispatcher (or shutdown):
        #: {"status": "ok"|"error", ...}
        self.outcome: Optional[Dict[str, Any]] = None
        #: how many later submits attached to this computation
        self.coalesced = 0
        self.enqueued_at = time.monotonic()
        #: handlers still waiting on the outcome; the submitter plus
        #: one per coalesced attachment.  A 504'd handler abandons its
        #: claim; when every claim is abandoned the computation is an
        #: orphan — it still runs to completion (the pool can't cancel
        #: it), but nobody will read the result
        self.waiters = 1


class Ticket:
    """A handle on one submitted request; ``wait()`` for its outcome.

    ``cached`` marks a result served from the result cache without
    touching the queue; ``coalesced`` marks attachment to an earlier
    identical in-flight request.
    """

    def __init__(self, entry: Optional[_Entry] = None,
                 outcome: Optional[Dict[str, Any]] = None,
                 cached: bool = False, coalesced: bool = False,
                 scheduler: Optional["RequestScheduler"] = None):
        self._entry = entry
        self._outcome = outcome
        self._scheduler = scheduler
        self.cached = cached
        self.coalesced = coalesced

    def wait(self, timeout: Optional[float] = None
             ) -> Optional[Dict[str, Any]]:
        """The outcome dict, or None if ``timeout`` expired first."""
        if self._outcome is not None:
            return self._outcome
        if not self._entry.event.wait(timeout):
            return None
        return self._entry.outcome

    def abandon(self) -> None:
        """Release this waiter's claim on the computation (the handler
        timed out and already answered 504; nobody will read the
        outcome through this ticket)."""
        if self._entry is None or self._scheduler is None:
            return
        self._scheduler._abandon(self._entry)


class RequestScheduler:
    """Coalescing, batching, bounded-queue scheduler over a resident
    :class:`FleetExecutor`.

    ``runner`` (tests, benches) replaces the fleet path: a callable
    ``runner(requests) -> [outcome dict, ...]`` invoked by the
    dispatcher with each batch.
    """

    def __init__(self, jobs: int = 1,
                 queue_depth: int = 64,
                 max_batch: int = 8,
                 result_cache_size: int = 256,
                 cache: Optional[ArtifactCache] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 backoff: float = 0.25,
                 rng=None,
                 runner: Optional[Callable[[List[AnalyzeRequest]],
                                           List[Dict[str, Any]]]] = None,
                 trace_jit: Optional[bool] = None):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1, got %d"
                             % queue_depth)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got %d" % max_batch)
        self.queue_depth = queue_depth
        self.max_batch = max_batch
        self.result_cache_size = result_cache_size
        self.cache = cache if cache is not None else ArtifactCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: resident executor: the worker pool and its PR-3 fault
        #: semantics (timeout/retry/crash recovery) survive across
        #: requests; on_error="row" so one bad workload in a batch
        #: fails only its own requests
        #: interpreter trace JIT for every analysis this service runs
        #: (None consults JRPM_TRACE_JIT, default on)
        self.trace_jit = trace_jit
        self.executor = FleetExecutor(
            jobs=jobs, cache=self.cache, on_error="row",
            timeout=timeout, retries=retries, backoff=backoff,
            rng=rng, persistent=True)
        self._runner = runner or self._run_batch

        self._cond = threading.Condition()
        self._queue: deque = deque()          # _Entry, FIFO
        self._inflight: Dict[str, _Entry] = {}  # key -> queued/running
        self._results: OrderedDict = OrderedDict()  # key -> outcome (LRU)
        self._open = True
        self._drain = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="jrpm-dispatcher",
            daemon=True)
        self._dispatcher.start()

    # -- admission -------------------------------------------------------

    def submit(self, request: AnalyzeRequest) -> Ticket:
        """Admit one request; never blocks.

        Raises :class:`SchedulerClosedError` after :meth:`stop`, and
        :class:`QueueFullError` when the bounded queue is at depth.
        """
        metrics = self.metrics
        with self._cond:
            if not self._open:
                raise SchedulerClosedError(
                    "scheduler is shutting down")
            entry = self._inflight.get(request.key)
            if entry is not None:
                entry.coalesced += 1
                entry.waiters += 1
                metrics.inc("coalesced")
                return Ticket(entry=entry, coalesced=True,
                              scheduler=self)
            if not request.fresh:
                outcome = self._results.get(request.key)
                if outcome is not None:
                    self._results.move_to_end(request.key)
                    metrics.inc("result_cache_hits")
                    return Ticket(outcome=outcome, cached=True)
            if len(self._queue) >= self.queue_depth:
                metrics.inc("load_shed")
                raise QueueFullError(
                    len(self._queue), self._retry_after_estimate())
            entry = _Entry(request)
            self._inflight[request.key] = entry
            self._queue.append(entry)
            metrics.set_gauge("queue_depth", len(self._queue))
            self._cond.notify()
        return Ticket(entry=entry, scheduler=self)

    def _abandon(self, entry: _Entry) -> None:
        with self._cond:
            entry.waiters -= 1
            if entry.waiters <= 0:
                self.metrics.inc("requests_abandoned")

    # -- result-LRU peeking (cross-replica warm handoff) -----------------

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached outcome for a raw content-addressed ``key``, or
        None — no queueing, no coalescing; the shard-to-shard
        ``GET /peek/<key>`` path and the pre-submit local check."""
        with self._cond:
            outcome = self._results.get(key)
            if outcome is not None:
                self._results.move_to_end(key)
            return outcome

    def install_result(self, key: str, outcome: Dict[str, Any]) -> None:
        """Adopt a completed outcome fetched from a replica's result
        LRU, so the local cache warms without recomputing."""
        if outcome.get("status") != "ok" or self.result_cache_size <= 0:
            return
        with self._cond:
            self._results[key] = outcome
            self._results.move_to_end(key)
            while len(self._results) > self.result_cache_size:
                self._results.popitem(last=False)

    def _retry_after_estimate(self) -> float:
        """Seconds until the queue has plausibly drained: queued work
        times recent mean latency, clamped to [1, 120]."""
        mean = self.metrics.avg_latency("analyze") or 1.0
        return min(120.0, max(1.0, len(self._queue) * mean))

    # -- introspection ---------------------------------------------------

    @property
    def queued(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Distinct computations admitted but unresolved."""
        with self._cond:
            return len(self._inflight)

    # -- dispatch --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while self._open and not self._queue:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                if not self._open and not self._drain:
                    self._fail_queued_locked("scheduler shut down "
                                             "before this request ran")
                    return
                batch = self._take_batch_locked()
                self.metrics.set_gauge("queue_depth", len(self._queue))
                self.metrics.set_gauge("batch_in_flight", len(batch))
            try:
                outcomes = self._runner([e.request for e in batch])
                if len(outcomes) != len(batch):
                    raise RuntimeError(
                        "runner returned %d outcomes for %d requests"
                        % (len(outcomes), len(batch)))
            except Exception as exc:  # noqa: BLE001 - must resolve waiters
                outcomes = [{"status": "error",
                             "error": "scheduler runner failed: %r" % exc,
                             "trace": "", "attempts": 1}
                            for _ in batch]
            self._resolve(batch, outcomes)

    def _take_batch_locked(self) -> List[_Entry]:
        """Pop the head entry plus every same-profile entry behind it,
        up to ``max_batch``; other profiles keep their positions."""
        head = self._queue.popleft()
        batch = [head]
        profile = head.request.profile_key
        if len(batch) < self.max_batch:
            keep: List[_Entry] = []
            while self._queue:
                entry = self._queue.popleft()
                if len(batch) < self.max_batch \
                        and entry.request.profile_key == profile:
                    batch.append(entry)
                else:
                    keep.append(entry)
            self._queue.extend(keep)
        if len(batch) > 1:
            self.metrics.inc("batched_requests", len(batch))
        self.metrics.inc("batches")
        return batch

    def _resolve(self, batch: List[_Entry],
                 outcomes: List[Dict[str, Any]]) -> None:
        with self._cond:
            for entry, outcome in zip(batch, outcomes):
                entry.outcome = outcome
                self._inflight.pop(entry.key, None)
                abandoned = entry.waiters <= 0
                if abandoned:
                    self.metrics.inc("abandoned_results")
                # an abandoned fresh=true computation must not smuggle
                # its result into the cache: the client asked for a
                # recompute-and-bypass, nobody received the answer,
                # and a later non-fresh request would otherwise see a
                # result no response ever carried
                if outcome.get("status") == "ok" \
                        and self.result_cache_size > 0 \
                        and not (abandoned and entry.request.fresh):
                    self._results[entry.key] = outcome
                    self._results.move_to_end(entry.key)
                    while len(self._results) > self.result_cache_size:
                        self._results.popitem(last=False)
                entry.event.set()
            self.metrics.inc("analyze_completed", len(batch))
            self.metrics.set_gauge("batch_in_flight", 0)

    def _fail_queued_locked(self, message: str) -> None:
        while self._queue:
            entry = self._queue.popleft()
            entry.outcome = {"status": "error", "error": message,
                             "trace": "", "attempts": 0}
            self._inflight.pop(entry.key, None)
            entry.event.set()
        self.metrics.set_gauge("queue_depth", 0)

    # -- the fleet path --------------------------------------------------

    def _run_batch(self, requests: List[AnalyzeRequest]
                   ) -> List[Dict[str, Any]]:
        """Run one same-profile batch through the resident executor."""
        first = requests[0]
        before = self.cache.snapshot()
        started = time.monotonic()
        result = self.executor.run(
            [r.workload for r in requests],
            config=first.config,
            simulate_tls=first.simulate_tls,
            level=first.level,
            extended=first.extended,
            trace_jit=self.trace_jit,
            optimize=first.optimize,
            models=first.models)
        elapsed = time.monotonic() - started
        self.metrics.merge_cache(
            diff_stats(self.cache.snapshot(), before))
        self.metrics.merge_faults(result.exec_stats)
        outcomes: List[Dict[str, Any]] = []
        for request, row in zip(requests, result.rows):
            if row.ok:
                self._merge_trace_jit(row.report)
                self._merge_optimize(row.report)
                self._merge_models(row.report)
                outcomes.append({
                    "status": "ok",
                    "workload": row.name,
                    "report": report_to_dict(row.report),
                    "attempts": 1,
                    "batch_size": len(requests),
                    "compute_s": round(elapsed, 6),
                })
            else:
                outcomes.append({
                    "status": "error",
                    "workload": row.name,
                    "error": row.error,
                    "trace": row.trace,
                    "attempts": row.attempts,
                })
        return outcomes

    def _merge_trace_jit(self, report) -> None:
        """Fold one report's interpreter trace-JIT counters into the
        service metrics (surfaced on /metrics next to the trace-engine
        stats)."""
        for result in (getattr(report, "sequential", None),
                       getattr(report, "profiled", None)):
            jit = getattr(result, "jit", None)
            if not jit:
                continue
            inc = self.metrics.inc
            inc("trace_jit_recordings", jit["recordings"])
            inc("trace_jit_traces_linked", jit["traces_linked"])
            inc("trace_jit_traces_blacklisted", jit["traces_blacklisted"])
            inc("trace_jit_invocations", jit["invocations"])
            inc("trace_jit_iterations", jit["iterations"])
            inc("trace_jit_guard_failures", jit["guard_failures"])

    def _merge_optimize(self, report) -> None:
        """Fold one report's optimizer pass counters into the service
        metrics (surfaced on /metrics as ``optimize_*``)."""
        stats = getattr(report, "optimize_stats", None)
        if not stats:
            return
        for key, value in stats.items():
            self.metrics.inc("optimize_%s" % key, value)

    def _merge_models(self, report) -> None:
        """Fold one multi-model report's per-loop winners into the
        service metrics (surfaced on /metrics as ``model_selected_*``
        and ``model_won_*``): how often each execution model won the
        argmax, and how often its winner was actually scheduled."""
        if getattr(report, "models", None) is None:
            return
        selection = getattr(report, "selection", None)
        if selection is None:
            return
        chosen = {s.loop_id for s in selection.selected}
        for loop_id in sorted(selection.decisions):
            decision = selection.decisions[loop_id]
            winner = getattr(decision, "model", "hydra-tls")
            self.metrics.inc("model_won_%s" % winner)
            if loop_id in chosen:
                self.metrics.inc("model_selected_%s" % winner)

    # -- shutdown --------------------------------------------------------

    def stop(self, drain: bool = True,
             timeout: Optional[float] = 30.0) -> None:
        """Close admission and stop the dispatcher.

        ``drain=True`` lets every queued request finish first; False
        fails queued (not yet running) requests immediately.  Either
        way the currently running batch completes — the executor has
        its own wall-clock timeout for runaway work.
        """
        with self._cond:
            if not self._open:
                self._cond.notify_all()
            self._open = False
            self._drain = drain
            self._cond.notify_all()
        self._dispatcher.join(timeout=timeout)
        with self._cond:
            # belt and braces: if the dispatcher died or join timed
            # out, nobody may be left hanging on a queued entry
            self._fail_queued_locked("scheduler stopped")
        self.executor.close()
