"""Live service metrics: counters, latency histograms, gauges.

One :class:`ServiceMetrics` registry is shared by the HTTP handlers,
the scheduler, and the fleet executor path.  All mutation goes through
a single lock (handler threads race the dispatcher); rendering
snapshots under the same lock, so ``/metrics`` is always internally
consistent.

The exposition format is Prometheus text (stable names under a
``jrpm_`` prefix), plus :meth:`ServiceMetrics.to_dict` for JSON
consumers (the bench client records it into ``BENCH_service.json``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: log-spaced latency bucket upper bounds, in seconds (the last,
#: implicit bucket is +Inf) — spans a cache hit (~1 ms) to a cold
#: extended profile (tens of seconds)
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class LatencyHistogram:
    """Fixed-bucket histogram (cumulative, Prometheus-style).

    Not internally locked — the owning :class:`ServiceMetrics` holds
    its lock around every observe/snapshot.
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: +Inf
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q`` quantile (the
        usual histogram-quantile approximation); the last finite bound
        when it lands in +Inf; 0.0 when empty."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, bound in enumerate(self.bounds):
            seen += self.counts[i]
            if seen >= target:
                return bound
        return self.bounds[-1]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class ServiceMetrics:
    """The daemon's one metrics registry."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started = time.monotonic()
        #: (endpoint, status) -> count
        self.requests: Dict[Tuple[str, int], int] = {}
        #: endpoint -> latency histogram
        self.latency: Dict[str, LatencyHistogram] = {}
        #: named monotonic counters (coalesced, result_cache_hits,
        #: load_shed, batches, batched_requests, ...)
        self.counters: Dict[str, int] = {}
        #: named point-in-time gauges (queue_depth, in_flight, ...)
        self.gauges: Dict[str, float] = {}
        #: artifact-cache lookups, {stage: {hits,misses,corrupt}}
        self.cache: Dict[str, Dict[str, int]] = {}
        #: fleet fault counters accumulated across submissions
        self.faults: Dict[str, int] = {"retries": 0, "timeouts": 0,
                                       "crashes": 0}

    # -- recording -------------------------------------------------------

    def observe_request(self, endpoint: str, status: int,
                        seconds: float) -> None:
        with self._lock:
            key = (endpoint, status)
            self.requests[key] = self.requests.get(key, 0) + 1
            hist = self.latency.get(endpoint)
            if hist is None:
                hist = self.latency[endpoint] = LatencyHistogram()
            hist.observe(seconds)

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def merge_cache(self, delta: Optional[Dict[str, Dict[str, int]]]
                    ) -> None:
        """Fold an artifact-cache counter delta (diff_stats shape) in."""
        if not delta:
            return
        with self._lock:
            for stage, counts in delta.items():
                slot = self.cache.setdefault(
                    stage, {"hits": 0, "misses": 0, "corrupt": 0})
                for field in ("hits", "misses", "corrupt"):
                    slot[field] += counts.get(field, 0)

    def merge_faults(self, exec_stats: Optional[Dict[str, int]]) -> None:
        """Fold a FleetResult's executor fault counters in."""
        if not exec_stats:
            return
        with self._lock:
            for field in ("retries", "timeouts", "crashes"):
                self.faults[field] += exec_stats.get(field, 0)

    # -- derived ---------------------------------------------------------

    def avg_latency(self, endpoint: str) -> float:
        with self._lock:
            hist = self.latency.get(endpoint)
            return hist.mean if hist else 0.0

    @property
    def uptime(self) -> float:
        return time.monotonic() - self.started

    def counter(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    # -- exposition ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON snapshot of every metric."""
        with self._lock:
            cache_hits = sum(c["hits"] for c in self.cache.values())
            cache_misses = sum(c["misses"] for c in self.cache.values())
            lookups = cache_hits + cache_misses
            coalesced = self.counters.get("coalesced", 0)
            served = self.counters.get("analyze_completed", 0)
            return {
                "uptime_s": round(self.uptime, 3),
                "requests": {
                    "%s_%d" % (endpoint, status): count
                    for (endpoint, status), count
                    in sorted(self.requests.items())
                },
                "latency": {endpoint: hist.snapshot()
                            for endpoint, hist
                            in sorted(self.latency.items())},
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "cache": {stage: dict(counts) for stage, counts
                          in sorted(self.cache.items())},
                "cache_hit_rate": (cache_hits / lookups
                                   if lookups else 0.0),
                "coalesce_rate": (coalesced / (served + coalesced)
                                  if served + coalesced else 0.0),
                "faults": dict(self.faults),
            }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric."""
        lines: List[str] = []
        with self._lock:
            lines.append("# HELP jrpm_uptime_seconds Daemon uptime.")
            lines.append("# TYPE jrpm_uptime_seconds gauge")
            lines.append("jrpm_uptime_seconds %.3f" % self.uptime)

            lines.append("# HELP jrpm_requests_total Requests served "
                         "by endpoint and status.")
            lines.append("# TYPE jrpm_requests_total counter")
            for (endpoint, status), count in sorted(self.requests.items()):
                lines.append(
                    'jrpm_requests_total{endpoint="%s",status="%d"} %d'
                    % (endpoint, status, count))

            lines.append("# HELP jrpm_request_latency_seconds Request "
                         "latency by endpoint.")
            lines.append("# TYPE jrpm_request_latency_seconds histogram")
            for endpoint, hist in sorted(self.latency.items()):
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    lines.append(
                        'jrpm_request_latency_seconds_bucket'
                        '{endpoint="%s",le="%g"} %d'
                        % (endpoint, bound, cumulative))
                lines.append(
                    'jrpm_request_latency_seconds_bucket'
                    '{endpoint="%s",le="+Inf"} %d'
                    % (endpoint, hist.count))
                lines.append(
                    'jrpm_request_latency_seconds_sum{endpoint="%s"} %.6f'
                    % (endpoint, hist.total))
                lines.append(
                    'jrpm_request_latency_seconds_count{endpoint="%s"} %d'
                    % (endpoint, hist.count))

            for name, value in sorted(self.counters.items()):
                metric = "jrpm_%s_total" % name
                lines.append("# TYPE %s counter" % metric)
                lines.append("%s %d" % (metric, value))

            for name, value in sorted(self.gauges.items()):
                metric = "jrpm_%s" % name
                lines.append("# TYPE %s gauge" % metric)
                lines.append("%s %g" % (metric, value))

            lines.append("# HELP jrpm_cache_lookups_total Artifact-"
                         "cache lookups by stage and result.")
            lines.append("# TYPE jrpm_cache_lookups_total counter")
            for stage, counts in sorted(self.cache.items()):
                for result in ("hits", "misses", "corrupt"):
                    lines.append(
                        'jrpm_cache_lookups_total'
                        '{stage="%s",result="%s"} %d'
                        % (stage, result, counts[result]))

            lines.append("# HELP jrpm_fleet_faults_total Executor "
                         "faults survived, by kind.")
            lines.append("# TYPE jrpm_fleet_faults_total counter")
            for kind in ("retries", "timeouts", "crashes"):
                lines.append('jrpm_fleet_faults_total{kind="%s"} %d'
                             % (kind, self.faults[kind]))
        return "\n".join(lines) + "\n"


def aggregate_snapshots(snapshots: Iterable[Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Cluster-wide sums over per-shard :meth:`ServiceMetrics.to_dict`
    snapshots: counters, request counts, cache stages, and faults are
    additive; latency keeps only the mergeable moments (count, sum,
    mean) — bucket-less snapshot percentiles cannot be combined, so
    per-shard percentiles live in the per-shard blocks."""
    counters: Dict[str, int] = {}
    requests: Dict[str, int] = {}
    cache: Dict[str, Dict[str, int]] = {}
    faults = {"retries": 0, "timeouts": 0, "crashes": 0}
    latency: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("requests", {}).items():
            requests[name] = requests.get(name, 0) + value
        for stage, counts in snap.get("cache", {}).items():
            slot = cache.setdefault(
                stage, {"hits": 0, "misses": 0, "corrupt": 0})
            for field in ("hits", "misses", "corrupt"):
                slot[field] += counts.get(field, 0)
        for field in faults:
            faults[field] += snap.get("faults", {}).get(field, 0)
        for endpoint, hist in snap.get("latency", {}).items():
            slot = latency.setdefault(endpoint,
                                      {"count": 0, "sum": 0.0})
            slot["count"] += hist.get("count", 0)
            slot["sum"] += hist.get("sum", 0.0)
    for slot in latency.values():
        slot["sum"] = round(slot["sum"], 6)
        slot["mean"] = round(slot["sum"] / slot["count"], 6) \
            if slot["count"] else 0.0
    cache_hits = sum(c["hits"] for c in cache.values())
    lookups = cache_hits + sum(c["misses"] for c in cache.values())
    return {
        "counters": dict(sorted(counters.items())),
        "requests": dict(sorted(requests.items())),
        "cache": {stage: counts for stage, counts
                  in sorted(cache.items())},
        "cache_hit_rate": cache_hits / lookups if lookups else 0.0,
        "latency": dict(sorted(latency.items())),
        "faults": faults,
    }
