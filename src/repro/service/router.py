"""Consistent-hash routing and the sharded frontend.

The sharded serving tier is a front/worker split:

* N *shard* processes (:mod:`repro.service.shard`), each a full
  :class:`~repro.service.server.AnalysisService` on its own port with
  its own resident :class:`~repro.jrpm.cache.ArtifactCache` and result
  LRU;
* one lightweight *frontend* (:class:`ShardedFrontend`) that owns no
  pipeline state: it parses each ``POST /analyze`` body, routes the
  request's content-addressed key through a :class:`HashRing` to the
  key's primary shard, and proxies the shard's response verbatim
  (adding only an ``X-Jrpm-Shard`` header), so a sharded daemon's
  ``/analyze`` bodies stay byte-identical to a single-shard one.

Routing is *consistent* hashing: every shard projects ``vnodes``
points onto a 64-bit ring and a key belongs to the first point
clockwise of its hash, so adding one shard to an N-shard tier remaps
only ~1/(N+1) of the key space and every other shard's caches stay
warm on their key range.  The first K distinct shards clockwise are
the key's *replica set*; the frontend forwards to the primary with the
remaining replicas named in ``X-Jrpm-Peers``, and a shard that misses
its result LRU peeks those replicas (``GET /peek/<key>``) before
computing — the warm-handoff path across ring changes and failovers.

The frontend aggregates ``/healthz`` (503 unless every shard answers
ok) and ``/metrics`` (its own routing metrics, a per-shard breakdown,
and cluster-wide counter sums) and fails over to the next replica when
a shard connection dies.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import signal
import threading
import time
from http.server import ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlparse

from repro.jrpm.report import dumps_canonical
from repro.service.metrics import ServiceMetrics, aggregate_snapshots
from repro.service.protocol import (
    PEERS_HEADER,
    SHARD_HEADER,
    ProtocolError,
    error_body,
    parse_analyze_request,
)
from repro.service.server import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_REQUEST_TIMEOUT,
    JsonHandler,
    _BadBody,
)
from repro.service.shard import ShardProcess

#: how long the frontend waits on a shard's /healthz or /metrics
STATUS_TIMEOUT = 5.0


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Nodes are opaque string identifiers.  Each projects ``vnodes``
    points onto a 64-bit ring (SHA-256 of ``"node#i"``); a key is
    owned by the first point clockwise from its own hash.  Adding or
    removing one node moves only the ring arcs adjacent to that node's
    points — ~``1/len(nodes)`` of the key space.
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1, got %d" % vnodes)
        self.vnodes = vnodes
        self._nodes: set = set()
        self._points: List[Tuple[int, str]] = []  # sorted (hash, node)
        self._hashes: List[int] = []              # parallel, for bisect
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def _reindex(self) -> None:
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError("node %r already on the ring" % node)
        self._nodes.add(node)
        self._points.extend(
            (self._hash("%s#%d" % (node, i)), node)
            for i in range(self.vnodes))
        self._reindex()

    def remove(self, node: str) -> None:
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]
        self._reindex()

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def primary(self, key: str) -> str:
        """The node owning ``key``."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: str, k: int) -> List[str]:
        """The first ``k`` distinct nodes clockwise from ``key``'s
        point: the primary first, then its successors (the peek
        targets).  Fewer than ``k`` when the ring is smaller."""
        if not self._points:
            raise ValueError("hash ring is empty")
        want = min(k, len(self._nodes))
        start = bisect.bisect_right(self._hashes, self._hash(key))
        found: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) == want:
                    break
        return found


class _FrontendHandler(JsonHandler):
    """Routes to the owning :class:`ShardedFrontend`."""

    server_version = "jrpm-frontend/1"

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        started = time.monotonic()
        path = urlparse(self.path).path
        frontend = self.service
        endpoint = path.lstrip("/") or "root"
        if path == "/healthz":
            status, payload = frontend.health()
            self._send_json(status, payload)
        elif path == "/metrics":
            status = 200
            if "application/json" in self.headers.get("Accept", ""):
                self._send_json(200, frontend.metrics_snapshot())
            else:
                self._send_json(200, None,
                                text=frontend.render_prometheus())
        elif path == "/workloads":
            from repro.workloads.registry import workload_names
            status = 200
            self._send_json(200, {"workloads": workload_names(
                include_synthetic=True)})
        else:
            endpoint, status = "other", 404
            self._send_json(404, error_body("no such endpoint: %s"
                                            % path))
        frontend.metrics.observe_request(
            endpoint, status, time.monotonic() - started)

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        started = time.monotonic()
        path = urlparse(self.path).path
        frontend = self.service
        endpoint = "analyze" if path == "/analyze" else "other"
        try:
            body = self._read_body()
        except _BadBody as exc:
            self._send_json(exc.status, error_body(str(exc)),
                            headers={"Connection": "close"})
            frontend.metrics.observe_request(
                endpoint, exc.status, time.monotonic() - started)
            return
        if path != "/analyze":
            self._send_json(404, error_body("no such endpoint: %s"
                                            % path))
            frontend.metrics.observe_request(
                "other", 404, time.monotonic() - started)
            return
        status, raw, headers = frontend.route_analyze(body)
        self._send_raw(status, raw, headers)
        frontend.metrics.observe_request(
            "analyze", status, time.monotonic() - started)

    def _send_raw(self, status: int, body: bytes,
                  headers: Dict[str, str]) -> None:
        self.send_response(status)
        self.send_header("Content-Type",
                         headers.pop("Content-Type", "application/json"))
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage


class _FrontendServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128
    service: "ShardedFrontend"


class ShardedFrontend:
    """The routing frontend of an N-shard serving tier.

    ``start()`` spawns the shard processes, builds the hash ring, and
    serves; ``stop()`` snapshots shard metrics, drains the shards
    (SIGTERM), and shuts the frontend down.  API mirrors
    :class:`~repro.service.server.AnalysisService` (``start``,
    ``stop``, ``install_signal_handlers``, ``serve_until_signal``) so
    the CLI treats both uniformly.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 shards: int = 2, replicas: int = 2, vnodes: int = 64,
                 request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 metrics: Optional[ServiceMetrics] = None,
                 metrics_dump: Optional[str] = None,
                 verbose: bool = False,
                 shard_options: Optional[Dict[str, Any]] = None):
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        if replicas < 1:
            raise ValueError("replicas must be >= 1, got %d" % replicas)
        self.shard_count = shards
        self.replica_count = min(replicas, shards)
        self.vnodes = vnodes
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.metrics_dump = metrics_dump
        self.verbose = verbose
        self.shard_options = dict(shard_options or {})
        self.draining = False
        self._started = time.monotonic()
        self._stop_requested = threading.Event()
        self._stopped = False
        self._final_snapshot: Optional[Dict[str, Any]] = None
        #: shard id ("0".."N-1") -> (host, port); filled by start()
        self.shard_addrs: Dict[str, Tuple[str, int]] = {}
        self._procs: List[ShardProcess] = []
        self.ring: Optional[HashRing] = None
        #: per-thread keep-alive connections, {addr: HTTPConnection}
        self._local = threading.local()
        self._httpd = _FrontendServer((host, port), _FrontendHandler)
        self._httpd.service = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ShardedFrontend":
        """Spawn the shards, build the ring, serve in the background."""
        try:
            for index in range(self.shard_count):
                proc = ShardProcess(index, options=self.shard_options)
                self._procs.append(proc)
                host, port = proc.spawn()
                self.shard_addrs[str(index)] = (host, port)
        except Exception:
            self._terminate_shards()
            raise
        self.ring = HashRing(nodes=sorted(self.shard_addrs),
                             vnodes=self.vnodes)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="jrpm-frontend",
            kwargs={"poll_interval": 0.1}, daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.draining = True
        # capture the cluster's final metrics while the shards can
        # still answer, then let them drain
        self._final_snapshot = self.metrics_snapshot()
        self._terminate_shards(timeout=timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.metrics_dump:
            try:
                with open(self.metrics_dump, "w") as handle:
                    json.dump(self._final_snapshot, handle, indent=2,
                              sort_keys=True)
                    handle.write("\n")
            except OSError:
                pass  # a failed flush must not fail the shutdown

    def _terminate_shards(self, timeout: float = 30.0) -> None:
        for proc in self._procs:
            proc.request_stop()
        for proc in self._procs:
            proc.wait(timeout=timeout)

    def install_signal_handlers(self) -> None:
        def _request_stop(signum, frame):  # noqa: ARG001
            self._stop_requested.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    def serve_until_signal(self) -> None:
        self._stop_requested.wait()
        self.stop(drain=True)

    def request_stop(self) -> None:
        self._stop_requested.set()

    # -- routing ---------------------------------------------------------

    def route_analyze(self, body: bytes
                      ) -> Tuple[int, bytes, Dict[str, str]]:
        """Route one raw ``POST /analyze`` body; returns
        ``(status, response bytes, response headers)``."""
        if self.draining:
            return (503,
                    (dumps_canonical(error_body("service is draining"))
                     + "\n").encode("utf-8"),
                    {})
        try:
            request = parse_analyze_request(body)
        except ProtocolError as exc:
            # reject here, with the exact bytes a shard would produce,
            # instead of spending a round trip on a doomed request
            return (exc.status,
                    (dumps_canonical(error_body(str(exc)))
                     + "\n").encode("utf-8"),
                    {})
        targets = self.ring.replicas(request.key, self.replica_count)
        last_error = "no shards configured"
        for attempt, shard_id in enumerate(targets):
            peers = ",".join("%s:%d" % self.shard_addrs[other]
                             for other in targets if other != shard_id)
            try:
                status, raw, headers = self._forward(
                    shard_id, body, peers)
            except (OSError, http.client.HTTPException) as exc:
                last_error = "shard %s unreachable: %s" % (shard_id, exc)
                self.metrics.inc("shard_errors")
                if attempt + 1 < len(targets):
                    self.metrics.inc("failovers")
                continue
            self.metrics.inc("routed_shard_%s" % shard_id)
            headers[SHARD_HEADER] = shard_id
            return status, raw, headers
        self.metrics.inc("shard_unavailable")
        return (502,
                (dumps_canonical(error_body(
                    "no replica reachable for this key: %s"
                    % last_error)) + "\n").encode("utf-8"),
                {})

    def _forward(self, shard_id: str, body: bytes, peers: str
                 ) -> Tuple[int, bytes, Dict[str, str]]:
        """One proxied exchange on this thread's keep-alive connection
        to ``shard_id``; retries once on a stale pooled connection."""
        addr = self.shard_addrs[shard_id]
        headers = {"Content-Type": "application/json"}
        if peers:
            headers[PEERS_HEADER] = peers
        for retry in (False, True):
            conn = self._connection(addr, fresh=retry)
            try:
                conn.request("POST", "/analyze", body=body,
                             headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
            except (OSError, http.client.HTTPException):
                self._drop_connection(addr)
                if retry:
                    raise
                continue
            out = {"Content-Type": resp.getheader(
                "Content-Type", "application/json")}
            retry_after = resp.getheader("Retry-After")
            if retry_after is not None:
                out["Retry-After"] = retry_after
            return resp.status, raw, out
        raise OSError("unreachable")  # pragma: no cover - loop returns

    def _connection(self, addr: Tuple[str, int],
                    fresh: bool = False) -> http.client.HTTPConnection:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        conn = pool.get(addr)
        if conn is None or fresh:
            if conn is not None:
                conn.close()
            # generous timeout: an /analyze can legitimately wait the
            # shard's whole request_timeout before answering 504
            conn = pool[addr] = http.client.HTTPConnection(
                addr[0], addr[1], timeout=self.request_timeout + 30.0)
        return conn

    def _drop_connection(self, addr: Tuple[str, int]) -> None:
        pool = getattr(self._local, "pool", None)
        if pool and addr in pool:
            pool.pop(addr).close()

    # -- aggregation -----------------------------------------------------

    def _shard_get(self, addr: Tuple[str, int], path: str,
                   headers: Optional[Dict[str, str]] = None
                   ) -> Tuple[int, Any]:
        conn = http.client.HTTPConnection(addr[0], addr[1],
                                          timeout=STATUS_TIMEOUT)
        try:
            conn.request("GET", path, headers=headers or {})
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """Aggregated health: ok only when every shard answers ok."""
        shards: Dict[str, Any] = {}
        all_ok = True
        for shard_id in sorted(self.shard_addrs):
            addr = self.shard_addrs[shard_id]
            try:
                status, payload = self._shard_get(addr, "/healthz")
            except (OSError, ValueError,
                    http.client.HTTPException) as exc:
                shards[shard_id] = {"up": False, "status": "down",
                                    "error": str(exc)}
                all_ok = False
                continue
            payload["up"] = True
            shards[shard_id] = payload
            if status != 200:
                all_ok = False
        status = ("draining" if self.draining
                  else "ok" if all_ok else "degraded")
        payload = {
            "status": status,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "shard_count": self.shard_count,
            "replicas": self.replica_count,
            "shards": shards,
        }
        return (200 if status == "ok" else 503), payload

    def _shard_snapshots(self) -> Dict[str, Dict[str, Any]]:
        snapshots: Dict[str, Dict[str, Any]] = {}
        for shard_id in sorted(self.shard_addrs):
            addr = self.shard_addrs[shard_id]
            try:
                status, payload = self._shard_get(
                    addr, "/metrics",
                    headers={"Accept": "application/json"})
            except (OSError, ValueError, http.client.HTTPException):
                continue
            if status == 200:
                snapshots[shard_id] = payload
        return snapshots

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The shard-aware /metrics JSON: the frontend's own routing
        metrics, each shard's full snapshot, and cluster-wide sums."""
        shards = self._shard_snapshots()
        return {
            "frontend": self.metrics.to_dict(),
            "shard_count": self.shard_count,
            "replicas": self.replica_count,
            "shards": shards,
            "aggregate": aggregate_snapshots(shards.values()),
        }

    def render_prometheus(self) -> str:
        """Frontend exposition plus per-shard and cluster-wide lines."""
        lines = [self.metrics.render_prometheus().rstrip("\n")]
        shards = self._shard_snapshots()
        lines.append("# HELP jrpm_shard_up Shard liveness as seen by "
                     "the frontend.")
        lines.append("# TYPE jrpm_shard_up gauge")
        for shard_id in sorted(self.shard_addrs):
            lines.append('jrpm_shard_up{shard="%s"} %d'
                         % (shard_id, 1 if shard_id in shards else 0))
        lines.append("# HELP jrpm_shard_counter_total Per-shard "
                     "scheduler counters.")
        lines.append("# TYPE jrpm_shard_counter_total counter")
        for shard_id, snap in sorted(shards.items()):
            for name, value in sorted(
                    snap.get("counters", {}).items()):
                lines.append(
                    'jrpm_shard_counter_total{shard="%s",counter="%s"}'
                    ' %d' % (shard_id, name, value))
        aggregate = aggregate_snapshots(shards.values())
        lines.append("# HELP jrpm_cluster_counter_total Cluster-wide "
                     "counter sums across shards.")
        lines.append("# TYPE jrpm_cluster_counter_total counter")
        for name, value in sorted(aggregate["counters"].items()):
            lines.append('jrpm_cluster_counter_total{counter="%s"} %d'
                         % (name, value))
        return "\n".join(lines) + "\n"
