"""Trace-event listener protocol.

The interpreter publishes the events the TEST hardware observes
(Section 5.1 / Table 4 of the paper):

* heap loads and stores with byte addresses (communicated automatically
  by the memory instructions when tracing is enabled);
* annotated local-variable loads/stores (``lwl``/``swl``);
* STL markers (``sloop``/``eoi``/``eloop``) and statistics reads.

Every callback receives the current cycle timestamp.  Local variables
are identified by ``(frame_id, slot)`` so recursion never aliases.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, NamedTuple, Optional


class TraceListener:
    """Base listener; every callback defaults to a no-op.

    Subclasses: the TEST device (:class:`repro.tracer.device.TestDevice`),
    the software-only profiler, and the recording listener below.
    """

    def on_load(self, address: int, cycle: int,
                fn: str = "", pc: int = -1) -> None:
        """A heap load of ``address`` completed at ``cycle``.

        ``fn``/``pc`` identify the load instruction — the extended TEST
        implementation (Section 6.3) bins dependency statistics by load
        PC; basic listeners ignore them.
        """

    def on_store(self, address: int, cycle: int,
                 fn: str = "", pc: int = -1) -> None:
        """A heap store to ``address`` completed at ``cycle``."""

    def on_local_load(self, frame_id: int, slot: int, cycle: int,
                      fn: str = "", pc: int = -1) -> None:
        """An annotated local-variable load (``lwl``)."""

    def on_local_store(self, frame_id: int, slot: int, cycle: int,
                       fn: str = "", pc: int = -1) -> None:
        """An annotated local-variable store (``swl``)."""

    def on_sloop(self, loop_id: int, n_locals: int, cycle: int,
                 frame_id: int = -1) -> None:
        """Entry into a potential STL (``sloop``).

        ``frame_id`` is the activation record executing the loop; banks
        use it to ignore same-numbered local slots of other frames.
        """

    def on_eoi(self, loop_id: int, cycle: int) -> None:
        """End of one STL iteration (``eoi``)."""

    def on_eloop(self, loop_id: int, cycle: int) -> None:
        """Exit from a potential STL (``eloop``)."""

    def on_readstats(self, loop_id: int, cycle: int) -> None:
        """The program read collected statistics for ``loop_id``."""

    def on_mem_batch(self, events) -> None:
        """A batch of memory events in program order.

        The interpreter buffers heap and annotated-local events and
        delivers them in one call per batch (flushing before every loop
        marker), which drops the per-access Python call overhead.  Each
        entry is one of::

            ("ld",  address, cycle, fn, pc)
            ("st",  address, cycle, fn, pc)
            ("lld", frame_id, slot, cycle, fn, pc)
            ("lst", frame_id, slot, cycle, fn, pc)

        ``events`` is only valid for the duration of the call (the
        interpreter reuses the buffer); listeners that retain events
        must copy them.  The default implementation replays the batch
        through the per-event callbacks, so existing listeners work
        unchanged; hot listeners override this for one dispatch per
        batch instead of one per event.
        """
        on_load = self.on_load
        on_store = self.on_store
        on_local_load = self.on_local_load
        on_local_store = self.on_local_store
        for ev in events:
            kind = ev[0]
            if kind == "ld":
                on_load(ev[1], ev[2], ev[3], ev[4])
            elif kind == "st":
                on_store(ev[1], ev[2], ev[3], ev[4])
            elif kind == "lld":
                on_local_load(ev[1], ev[2], ev[3], ev[4], ev[5])
            else:
                on_local_store(ev[1], ev[2], ev[3], ev[4], ev[5])


class MemEvent(NamedTuple):
    """One recorded memory/local event, for trace-driven TLS simulation."""

    cycle: int
    kind: str          # 'ld', 'st', 'lld', 'lst'
    address: int       # byte address; locals use a synthetic space


class LoopMark(NamedTuple):
    """One recorded loop marker."""

    cycle: int
    kind: str          # 'sloop', 'eoi', 'eloop'
    loop_id: int


#: Synthetic address space for local variables: far above any heap
#: address, one "word" per (frame, slot).
LOCAL_ADDRESS_BASE = 1 << 40


def local_address(frame_id: int, slot: int) -> int:
    """Synthetic byte address for a local variable."""
    return LOCAL_ADDRESS_BASE + (frame_id << 16) + slot * 4


class RecordingListener(TraceListener):
    """Records the full event stream, for the TLS trace splitter
    (:mod:`repro.tls.thread_trace`) and for tests.

    ``loop_filter`` optionally restricts loop marks to one loop id; memory
    events are always recorded (the splitter windows them by marks).
    """

    def __init__(self, loop_filter: int = None):
        self.mem: List[MemEvent] = []
        self.marks: List[LoopMark] = []
        #: frame id of each recorded sloop mark, in order
        self.sloop_frames: List[int] = []
        self._loop_filter = loop_filter

    def on_load(self, address, cycle, fn="", pc=-1):
        self.mem.append(MemEvent(cycle, "ld", address))

    def on_store(self, address, cycle, fn="", pc=-1):
        self.mem.append(MemEvent(cycle, "st", address))

    def on_local_load(self, frame_id, slot, cycle, fn="", pc=-1):
        self.mem.append(
            MemEvent(cycle, "lld", local_address(frame_id, slot)))

    def on_local_store(self, frame_id, slot, cycle, fn="", pc=-1):
        self.mem.append(
            MemEvent(cycle, "lst", local_address(frame_id, slot)))

    def _want(self, loop_id: int) -> bool:
        return self._loop_filter is None or loop_id == self._loop_filter

    def on_mem_batch(self, events):
        append = self.mem.append
        for ev in events:
            kind = ev[0]
            if kind == "ld" or kind == "st":
                append(MemEvent(ev[2], kind, ev[1]))
            else:
                append(MemEvent(
                    ev[3], kind, local_address(ev[1], ev[2])))

    def on_sloop(self, loop_id, n_locals, cycle, frame_id=-1):
        if self._want(loop_id):
            self.marks.append(LoopMark(cycle, "sloop", loop_id))
            self.sloop_frames.append(frame_id)

    def on_eoi(self, loop_id: int, cycle: int) -> None:
        if self._want(loop_id):
            self.marks.append(LoopMark(cycle, "eoi", loop_id))

    def on_eloop(self, loop_id: int, cycle: int) -> None:
        if self._want(loop_id):
            self.marks.append(LoopMark(cycle, "eloop", loop_id))


#: integer kind codes of the columnar trace layout (one byte per event)
KIND_LD, KIND_ST, KIND_LLD, KIND_LST = 0, 1, 2, 3
KIND_NAMES = ("ld", "st", "lld", "lst")


class ColumnarRecording(TraceListener):
    """Structure-of-arrays recording of the full event stream.

    Instead of one :class:`MemEvent` tuple per access, events land in
    three parallel flat columns fed directly from the interpreter's
    batched delivery:

    * ``kinds`` — one byte per event (:data:`KIND_LD` .. ``KIND_LST``);
    * ``cycles`` — ``array('q')`` of completion timestamps;
    * ``addresses`` — ``array('q')`` of byte addresses (locals use the
      synthetic :func:`local_address` space).

    The interpreter's cycle counter only ever increases, so ``cycles``
    is sorted by construction: it doubles as the shared cycle index the
    trace splitter bisects, with no per-call rebuild and no per-thread
    event materialization (see :mod:`repro.tls.thread_trace`).

    Loop marks stay row-shaped (:class:`LoopMark`); they are three
    orders of magnitude rarer than memory events.
    """

    def __init__(self, loop_filter: Optional[int] = None):
        self.kinds = bytearray()
        self.cycles = array("q")
        self.addresses = array("q")
        self.marks: List[LoopMark] = []
        #: frame id of each recorded sloop mark, in order
        self.sloop_frames: List[int] = []
        self._loop_filter = loop_filter

    def __len__(self) -> int:
        return len(self.kinds)

    def events(self) -> Iterator[MemEvent]:
        """Row view of the columns (tests / debugging; not a hot path)."""
        names = KIND_NAMES
        for i in range(len(self.kinds)):
            yield MemEvent(self.cycles[i], names[self.kinds[i]],
                           self.addresses[i])

    # -- memory events ---------------------------------------------------

    def on_load(self, address, cycle, fn="", pc=-1):
        self.kinds.append(KIND_LD)
        self.cycles.append(cycle)
        self.addresses.append(address)

    def on_store(self, address, cycle, fn="", pc=-1):
        self.kinds.append(KIND_ST)
        self.cycles.append(cycle)
        self.addresses.append(address)

    def on_local_load(self, frame_id, slot, cycle, fn="", pc=-1):
        self.kinds.append(KIND_LLD)
        self.cycles.append(cycle)
        self.addresses.append(local_address(frame_id, slot))

    def on_local_store(self, frame_id, slot, cycle, fn="", pc=-1):
        self.kinds.append(KIND_LST)
        self.cycles.append(cycle)
        self.addresses.append(local_address(frame_id, slot))

    def on_mem_batch(self, events):
        kinds_append = self.kinds.append
        cycles_append = self.cycles.append
        addr_append = self.addresses.append
        for ev in events:
            kind = ev[0]
            if kind == "ld":
                kinds_append(KIND_LD)
                cycles_append(ev[2])
                addr_append(ev[1])
            elif kind == "st":
                kinds_append(KIND_ST)
                cycles_append(ev[2])
                addr_append(ev[1])
            else:
                kinds_append(KIND_LLD if kind == "lld" else KIND_LST)
                cycles_append(ev[3])
                addr_append(local_address(ev[1], ev[2]))

    # -- loop marks ------------------------------------------------------

    def _want(self, loop_id: int) -> bool:
        return self._loop_filter is None or loop_id == self._loop_filter

    def on_sloop(self, loop_id, n_locals, cycle, frame_id=-1):
        if self._want(loop_id):
            self.marks.append(LoopMark(cycle, "sloop", loop_id))
            self.sloop_frames.append(frame_id)

    def on_eoi(self, loop_id: int, cycle: int) -> None:
        if self._want(loop_id):
            self.marks.append(LoopMark(cycle, "eoi", loop_id))

    def on_eloop(self, loop_id: int, cycle: int) -> None:
        if self._want(loop_id):
            self.marks.append(LoopMark(cycle, "eloop", loop_id))


class MulticastListener(TraceListener):
    """Fans one event stream out to several listeners."""

    def __init__(self, listeners):
        self.listeners = list(listeners)

    def on_load(self, address, cycle, fn="", pc=-1):
        for lst in self.listeners:
            lst.on_load(address, cycle, fn, pc)

    def on_store(self, address, cycle, fn="", pc=-1):
        for lst in self.listeners:
            lst.on_store(address, cycle, fn, pc)

    def on_local_load(self, frame_id, slot, cycle, fn="", pc=-1):
        for lst in self.listeners:
            lst.on_local_load(frame_id, slot, cycle, fn, pc)

    def on_local_store(self, frame_id, slot, cycle, fn="", pc=-1):
        for lst in self.listeners:
            lst.on_local_store(frame_id, slot, cycle, fn, pc)

    def on_mem_batch(self, events):
        for lst in self.listeners:
            lst.on_mem_batch(events)

    def on_sloop(self, loop_id, n_locals, cycle, frame_id=-1):
        for lst in self.listeners:
            lst.on_sloop(loop_id, n_locals, cycle, frame_id)

    def on_eoi(self, loop_id, cycle):
        for lst in self.listeners:
            lst.on_eoi(loop_id, cycle)

    def on_eloop(self, loop_id, cycle):
        for lst in self.listeners:
            lst.on_eloop(loop_id, cycle)

    def on_readstats(self, loop_id, cycle):
        for lst in self.listeners:
            lst.on_readstats(loop_id, cycle)
