"""Sequential cycle-cost interpreter.

This is the reproduction's stand-in for a single Hydra core running
JIT-compiled native code.  It executes bytecode deterministically,
accumulates a cycle count from :class:`~repro.runtime.costs.CostModel`,
and — when a :class:`~repro.runtime.events.TraceListener` is attached —
publishes exactly the events the TEST hardware would observe.

Design notes
------------
* The call stack is explicit (no Python recursion), so deeply recursive
  workloads cannot blow the host stack.
* Each function's instruction stream is predecoded once into a dispatch
  table of flat operand tuples ``(op, a, b, c, sub, imm, name, args)``
  with the opcode as a plain int, alongside a flat cycle-cost list.
  The hot loop dispatches on the precomputed int — no per-instruction
  attribute lookups, no enum comparisons.
* Two specialized execution loops share that decoded form:
  ``_run_fast`` (no listener) strips every piece of event plumbing —
  annotation opcodes reduce to a cost charge and a pc bump — and is the
  path plain sequential runs take; ``_run_traced`` publishes trace
  events, batching memory events (heap *and* annotated locals) into one
  ordered buffer that is delivered via
  :meth:`~repro.runtime.events.TraceListener.on_mem_batch` and flushed
  before every loop marker, so per-event Python call overhead is paid
  once per batch instead of once per access.
* The cycle counter only ever increases, so the event stream (and each
  batch) is emitted in non-decreasing cycle order.  The columnar trace
  engine depends on this invariant: ``ColumnarRecording`` appends
  batches straight into flat columns and the cycles column is sorted by
  construction, which is what lets thread windowing bisect it without
  building a separate index.  Because batches are flushed before every
  loop marker, a whole batch also belongs to one stable activation
  stack — listeners may hoist per-activation state out of the per-event
  loop.
* ``max_instructions`` bounds runaway programs with a clear error.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Function, Program
from repro.errors import ExecutionError, HeapError
from repro.runtime.costs import DEFAULT_COSTS, CostModel
from repro.runtime.events import TraceListener
from repro.runtime.heap import Heap
from repro.runtime.values import apply_binop, apply_intrinsic, apply_unop

# plain-int opcodes for the dispatch loops (enum compares are slow)
_CONST = int(Op.CONST)
_MOV = int(Op.MOV)
_BIN = int(Op.BIN)
_UN = int(Op.UN)
_NEWARR = int(Op.NEWARR)
_ALOAD = int(Op.ALOAD)
_ASTORE = int(Op.ASTORE)
_LEN = int(Op.LEN)
_JMP = int(Op.JMP)
_BR = int(Op.BR)
_CALL = int(Op.CALL)
_RET = int(Op.RET)
_INTRIN = int(Op.INTRIN)
_SLOOP = int(Op.SLOOP)
_EOI = int(Op.EOI)
_ELOOP = int(Op.ELOOP)
_LWL = int(Op.LWL)
_SWL = int(Op.SWL)
_READSTATS = int(Op.READSTATS)
_PRINT = int(Op.PRINT)
_NOP = int(Op.NOP)

#: memory events buffered before delivery in the traced loop
_FLUSH_AT = 512


def _decode_one(ins) -> tuple:
    """One instruction as a flat dispatch-table entry."""
    return (int(ins.op), ins.a, ins.b, ins.c, ins.sub, ins.imm,
            ins.name, ins.args)


class RunResult:
    """Outcome of one program execution."""

    def __init__(self, cycles: int, instructions: int, return_value,
                 heap: Heap, printed: List):
        self.cycles = cycles
        self.instructions = instructions
        self.return_value = return_value
        self.heap = heap
        self.printed = printed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RunResult cycles=%d instrs=%d ret=%r>" % (
            self.cycles, self.instructions, self.return_value)


class Interpreter:
    """Executes a :class:`~repro.bytecode.program.Program`."""

    def __init__(self, program: Program,
                 cost_model: CostModel = None,
                 listener: Optional[TraceListener] = None,
                 max_instructions: int = 200_000_000):
        self.program = program
        self.cost_model = cost_model if cost_model is not None \
            else DEFAULT_COSTS
        self.listener = listener
        self.max_instructions = max_instructions
        self._cost_cache = {}
        self._decoded_cache = {}

    def patch_cost(self, fn_name: str, pc: int, op: Op,
                   sub: int = 0) -> None:
        """Refresh one cached instruction after code patching (the
        runtime overwrites converged loops' READSTATS with NOPs, and
        running frames hold references to the cached cost and dispatch
        lists).  ``sub`` is the sub-opcode (BIN/UN) of the new
        instruction — cycle costs depend on it."""
        cached = self._cost_cache.get(fn_name)
        if cached is not None:
            cached[pc] = self.cost_model.cost(op, sub)
        decoded = self._decoded_cache.get(fn_name)
        if decoded is not None:
            fn = self.program.functions.get(fn_name)
            if fn is not None:
                decoded[pc] = _decode_one(fn.code[pc])

    def _costs_for(self, fn: Function) -> List[int]:
        cached = self._cost_cache.get(fn.name)
        if cached is None:
            cost = self.cost_model.cost
            cached = [cost(ins.op, ins.sub) for ins in fn.code]
            self._cost_cache[fn.name] = cached
        return cached

    def _decoded_for(self, fn: Function) -> List[tuple]:
        cached = self._decoded_cache.get(fn.name)
        if cached is None:
            cached = [_decode_one(ins) for ins in fn.code]
            self._decoded_cache[fn.name] = cached
        return cached

    def run(self) -> RunResult:
        """Execute from the entry function to completion."""
        if self.listener is None:
            return self._run_fast()
        return self._run_traced()

    # -- fast path: no listener attached ---------------------------------

    def _run_fast(self) -> RunResult:
        heap = Heap()
        printed: List = []
        functions = self.program.functions

        entry = self.program.main
        fn_name = entry.name
        code = self._decoded_for(entry)
        costs = self._costs_for(entry)
        slots = [0] * entry.n_slots
        dst = -1
        pc = 0
        #: (code, costs, slots, return pc, dst, fn_name) per caller
        stack: List[tuple] = []

        cycles = 0
        executed = 0
        limit = self.max_instructions

        heap_load = heap.load
        heap_store = heap.store

        while True:
            ins = code[pc]
            op = ins[0]
            cycles += costs[pc]
            executed += 1
            if executed > limit:
                raise ExecutionError(
                    "instruction budget exceeded (%d)" % limit,
                    pc, fn_name)
            if op == _BIN:
                try:
                    slots[ins[1]] = apply_binop(
                        ins[4], slots[ins[2]], slots[ins[3]])
                except ExecutionError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _CONST:
                slots[ins[1]] = ins[5]
                pc += 1
            elif op == _MOV:
                slots[ins[1]] = slots[ins[2]]
                pc += 1
            elif op == _BR:
                pc = ins[2] if slots[ins[1]] else ins[3]
            elif op == _JMP:
                pc = ins[1]
            elif op == _ALOAD:
                try:
                    slots[ins[1]] = heap_load(slots[ins[2]], slots[ins[3]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _ASTORE:
                try:
                    heap_store(slots[ins[1]], slots[ins[2]], slots[ins[3]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _UN:
                try:
                    slots[ins[1]] = apply_unop(ins[4], slots[ins[2]])
                except ExecutionError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _NEWARR:
                try:
                    slots[ins[1]] = heap.allocate(slots[ins[2]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _LEN:
                try:
                    slots[ins[1]] = heap.length(slots[ins[2]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _INTRIN:
                try:
                    slots[ins[1]] = apply_intrinsic(
                        ins[6], [slots[s] for s in ins[7]])
                except ExecutionError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _CALL:
                callee = functions.get(ins[6])
                if callee is None:
                    raise ExecutionError(
                        "call to unknown function %r" % ins[6],
                        pc, fn_name)
                new_slots = [0] * callee.n_slots
                for i, arg_slot in enumerate(ins[7]):
                    new_slots[i] = slots[arg_slot]
                stack.append((code, costs, slots, pc + 1, dst, fn_name))
                dst = ins[1]
                fn_name = callee.name
                code = self._decoded_for(callee)
                costs = self._costs_for(callee)
                slots = new_slots
                pc = 0
            elif op == _RET:
                value = slots[ins[1]] if ins[1] >= 0 else None
                if not stack:
                    return RunResult(cycles, executed, value, heap,
                                     printed)
                code, costs, slots, pc, ret_dst, fn_name = stack.pop()
                if dst >= 0:
                    slots[dst] = value
                dst = ret_dst
            elif op == _PRINT:
                printed.append(slots[ins[1]])
                pc += 1
            elif op == _NOP or op >= _SLOOP:
                # annotations are pure cost with no listener attached
                pc += 1
            else:  # pragma: no cover - exhaustive
                raise ExecutionError("unknown opcode %r" % op, pc, fn_name)

    # -- traced path: publish events to the listener ---------------------

    def _run_traced(self) -> RunResult:
        heap = Heap()
        printed: List = []
        listener = self.listener
        functions = self.program.functions
        next_frame_id = 0

        entry = self.program.main
        fn_name = entry.name
        code = self._decoded_for(entry)
        costs = self._costs_for(entry)
        slots = [0] * entry.n_slots
        dst = -1
        pc = 0
        frame_id = next_frame_id
        next_frame_id += 1
        #: (code, costs, slots, return pc, dst, fn_name, frame_id)
        stack: List[tuple] = []

        cycles = 0
        executed = 0
        limit = self.max_instructions

        heap_load = heap.load
        heap_store = heap.store
        heap_address = heap.address
        on_mem_batch = listener.on_mem_batch
        flush_at = _FLUSH_AT

        # one ordered buffer for heap AND local memory events; flushed
        # before every loop marker so listeners observe the exact event
        # order the unbatched interface delivered
        buf: List[tuple] = []
        buf_append = buf.append

        try:
            while True:
                ins = code[pc]
                op = ins[0]
                cycles += costs[pc]
                executed += 1
                if executed > limit:
                    raise ExecutionError(
                        "instruction budget exceeded (%d)" % limit,
                        pc, fn_name)
                if op == _BIN:
                    try:
                        slots[ins[1]] = apply_binop(
                            ins[4], slots[ins[2]], slots[ins[3]])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _CONST:
                    slots[ins[1]] = ins[5]
                    pc += 1
                elif op == _MOV:
                    slots[ins[1]] = slots[ins[2]]
                    pc += 1
                elif op == _BR:
                    pc = ins[2] if slots[ins[1]] else ins[3]
                elif op == _JMP:
                    pc = ins[1]
                elif op == _ALOAD:
                    try:
                        slots[ins[1]] = heap_load(
                            slots[ins[2]], slots[ins[3]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    buf_append(("ld",
                                heap_address(slots[ins[2]], slots[ins[3]]),
                                cycles, fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _ASTORE:
                    try:
                        heap_store(slots[ins[1]], slots[ins[2]],
                                   slots[ins[3]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    buf_append(("st",
                                heap_address(slots[ins[1]], slots[ins[2]]),
                                cycles, fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _UN:
                    try:
                        slots[ins[1]] = apply_unop(ins[4], slots[ins[2]])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _NEWARR:
                    try:
                        slots[ins[1]] = heap.allocate(slots[ins[2]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _LEN:
                    try:
                        slots[ins[1]] = heap.length(slots[ins[2]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _INTRIN:
                    try:
                        slots[ins[1]] = apply_intrinsic(
                            ins[6], [slots[s] for s in ins[7]])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _CALL:
                    callee = functions.get(ins[6])
                    if callee is None:
                        raise ExecutionError(
                            "call to unknown function %r" % ins[6],
                            pc, fn_name)
                    new_slots = [0] * callee.n_slots
                    for i, arg_slot in enumerate(ins[7]):
                        new_slots[i] = slots[arg_slot]
                    stack.append((code, costs, slots, pc + 1, dst,
                                  fn_name, frame_id))
                    dst = ins[1]
                    fn_name = callee.name
                    code = self._decoded_for(callee)
                    costs = self._costs_for(callee)
                    slots = new_slots
                    pc = 0
                    frame_id = next_frame_id
                    next_frame_id += 1
                elif op == _RET:
                    value = slots[ins[1]] if ins[1] >= 0 else None
                    if not stack:
                        if buf:
                            on_mem_batch(buf)
                            buf.clear()
                        return RunResult(cycles, executed, value, heap,
                                         printed)
                    (code, costs, slots, pc, ret_dst, fn_name,
                     frame_id) = stack.pop()
                    if dst >= 0:
                        slots[dst] = value
                    dst = ret_dst
                # --- annotations ------------------------------------
                elif op == _LWL:
                    buf_append(("lld", frame_id, ins[1], cycles,
                                fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _SWL:
                    buf_append(("lst", frame_id, ins[1], cycles,
                                fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _EOI:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_eoi(ins[1], cycles)
                    pc += 1
                elif op == _SLOOP:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_sloop(ins[1], ins[2], cycles, frame_id)
                    pc += 1
                elif op == _ELOOP:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_eloop(ins[1], cycles)
                    pc += 1
                elif op == _READSTATS:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_readstats(ins[1], cycles)
                    pc += 1
                elif op == _PRINT:
                    printed.append(slots[ins[1]])
                    pc += 1
                elif op == _NOP:
                    pc += 1
                else:  # pragma: no cover - exhaustive
                    raise ExecutionError(
                        "unknown opcode %r" % op, pc, fn_name)
        finally:
            # deliver events observed before an abnormal exit
            if buf:
                on_mem_batch(buf)
                buf.clear()


def run_program(program: Program,
                cost_model: CostModel = None,
                listener: Optional[TraceListener] = None,
                max_instructions: int = 200_000_000) -> RunResult:
    """One-call convenience wrapper around :class:`Interpreter`."""
    interp = Interpreter(program, cost_model=cost_model, listener=listener,
                         max_instructions=max_instructions)
    return interp.run()
