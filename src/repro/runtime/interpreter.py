"""Sequential cycle-cost interpreter.

This is the reproduction's stand-in for a single Hydra core running
JIT-compiled native code.  It executes bytecode deterministically,
accumulates a cycle count from :class:`~repro.runtime.costs.CostModel`,
and — when a :class:`~repro.runtime.events.TraceListener` is attached —
publishes exactly the events the TEST hardware would observe.

Design notes
------------
* The call stack is explicit (no Python recursion), so deeply recursive
  workloads cannot blow the host stack.
* Each function's instruction stream is predecoded once into a dispatch
  table of flat operand tuples ``(op, a, b, c, sub, imm, name, args)``
  with the opcode as a plain int, alongside a flat cycle-cost list.
  The hot loop dispatches on the precomputed int — no per-instruction
  attribute lookups, no enum comparisons.
* Two specialized execution loops share that decoded form:
  ``_run_fast`` (no listener) strips every piece of event plumbing —
  annotation opcodes reduce to a cost charge and a pc bump — and is the
  path plain sequential runs take; ``_run_traced`` publishes trace
  events, batching memory events (heap *and* annotated locals) into one
  ordered buffer that is delivered via
  :meth:`~repro.runtime.events.TraceListener.on_mem_batch` and flushed
  before every loop marker, so per-event Python call overhead is paid
  once per batch instead of once per access.
* The cycle counter only ever increases, so the event stream (and each
  batch) is emitted in non-decreasing cycle order.  The columnar trace
  engine depends on this invariant: ``ColumnarRecording`` appends
  batches straight into flat columns and the cycles column is sorted by
  construction, which is what lets thread windowing bisect it without
  building a separate index.  Because batches are flushed before every
  loop marker, a whole batch also belongs to one stable activation
  stack — listeners may hoist per-activation state out of the per-event
  loop.
* ``max_instructions`` bounds runaway programs with a clear error.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Function, Program
from repro.errors import ExecutionError, HeapError
from repro.runtime.costs import DEFAULT_COSTS, CostModel
from repro.runtime.events import TraceListener
from repro.runtime.heap import Heap
from repro.runtime.tracejit import (
    BLACKLIST_MIN_OPS,
    BLACKLIST_PROBE,
    FLUSH_AT,
    MODE_FAST,
    MODE_FAST_TAIL,
    MODE_TRACED,
    MODE_TRACED_TAIL,
    TraceJIT,
    record_and_link,
    resolve_trace_jit,
)
from repro.runtime.values import apply_binop, apply_intrinsic, apply_unop

# plain-int opcodes for the dispatch loops (enum compares are slow)
_CONST = int(Op.CONST)
_MOV = int(Op.MOV)
_BIN = int(Op.BIN)
_UN = int(Op.UN)
_NEWARR = int(Op.NEWARR)
_ALOAD = int(Op.ALOAD)
_ASTORE = int(Op.ASTORE)
_LEN = int(Op.LEN)
_JMP = int(Op.JMP)
_BR = int(Op.BR)
_CALL = int(Op.CALL)
_RET = int(Op.RET)
_INTRIN = int(Op.INTRIN)
_SLOOP = int(Op.SLOOP)
_EOI = int(Op.EOI)
_ELOOP = int(Op.ELOOP)
_LWL = int(Op.LWL)
_SWL = int(Op.SWL)
_READSTATS = int(Op.READSTATS)
_PRINT = int(Op.PRINT)
_NOP = int(Op.NOP)

#: memory events buffered before delivery in the traced loop (shared
#: with the trace JIT so superblocks flush at identical points)
_FLUSH_AT = FLUSH_AT


def _decode_one(ins) -> tuple:
    """One instruction as a flat dispatch-table entry."""
    return (int(ins.op), ins.a, ins.b, ins.c, ins.sub, ins.imm,
            ins.name, ins.args)


class RunResult:
    """Outcome of one program execution.

    ``jit`` is a deterministic trace-JIT counter snapshot (see
    :meth:`~repro.runtime.tracejit.TraceJIT.snapshot`), or ``None``
    when the trace JIT was disabled for the run.
    """

    def __init__(self, cycles: int, instructions: int, return_value,
                 heap: Heap, printed: List, jit=None):
        self.cycles = cycles
        self.instructions = instructions
        self.return_value = return_value
        self.heap = heap
        self.printed = printed
        self.jit = jit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RunResult cycles=%d instrs=%d ret=%r>" % (
            self.cycles, self.instructions, self.return_value)


def _trace_point_fast(jit, jstate, anchor, fn_name, code, costs, slots,
                      heap, printed, cycles, executed, limit, jenv):
    """Handle a hot backedge target in the fast loop.

    The inline site has already filtered blacklisted anchors; here the
    anchor is either warming (int countdown), due for recording, or
    linked.  Linked traces *chain*: after each invocation the exit pc
    is dispatched to the next linked trace — the loop trace at a
    backedge target, or a tail trace at a hot side exit — so control
    only returns to the generic loop when no superblock covers the
    exit.  Returns ``(pc, cycles, executed)`` for the loop to adopt.
    """
    trace = jstate[anchor]
    if trace.__class__ is int:
        if trace > 1:
            jstate[anchor] = trace - 1
            return anchor, cycles, executed
        return record_and_link(jit, MODE_FAST, fn_name, anchor, code,
                               costs, len(slots), slots, heap, printed,
                               cycles, executed, limit)
    tstate = jit.state_for(fn_name, MODE_FAST_TAIL, len(code))
    state = jstate
    while True:
        res = trace.fn(slots, cycles, executed, jenv)
        delta = res[2] - executed
        trace.invocations += 1
        trace.ops += delta
        full = delta // trace.n_ops
        trace.iterations += full
        if delta - full * trace.n_ops:
            trace.aborts += 1
        if trace.invocations == BLACKLIST_PROBE and \
                trace.ops < BLACKLIST_PROBE * BLACKLIST_MIN_OPS:
            jit.blacklist(state, trace.anchor)
        if delta == 0:
            # budget exit: no progress was committed, so chaining would
            # spin — the generic loop re-executes and raises exactly
            return res
        npc = res[0]
        cycles = res[1]
        executed = res[2]
        nxt = jstate[npc]
        if nxt is not None and nxt.__class__ is not int:
            trace = nxt
            state = jstate
            continue
        nxt = tstate[npc]
        if nxt is None:
            return res
        if nxt.__class__ is int:
            if nxt > 1:
                tstate[npc] = nxt - 1
                return res
            return record_and_link(jit, MODE_FAST, fn_name, npc, code,
                                   costs, len(slots), slots, heap,
                                   printed, cycles, executed, limit,
                                   tail=True)
        trace = nxt
        state = tstate


def _trace_point_traced(jit, jstate, anchor, fn_name, code, costs, slots,
                        heap, printed, cycles, executed, limit, jenv,
                        listener, buf, frame_id):
    """Traced-loop twin of :func:`_trace_point_fast`: superblocks and
    the recorder publish the identical event stream."""
    trace = jstate[anchor]
    if trace.__class__ is int:
        if trace > 1:
            jstate[anchor] = trace - 1
            return anchor, cycles, executed
        return record_and_link(jit, MODE_TRACED, fn_name, anchor, code,
                               costs, len(slots), slots, heap, printed,
                               cycles, executed, limit,
                               listener=listener, buf=buf,
                               frame_id=frame_id)
    tstate = jit.state_for(fn_name, MODE_TRACED_TAIL, len(code))
    state = jstate
    while True:
        res = trace.fn(slots, cycles, executed, frame_id, jenv)
        delta = res[2] - executed
        trace.invocations += 1
        trace.ops += delta
        full = delta // trace.n_ops
        trace.iterations += full
        if delta - full * trace.n_ops:
            trace.aborts += 1
        if trace.invocations == BLACKLIST_PROBE and \
                trace.ops < BLACKLIST_PROBE * BLACKLIST_MIN_OPS:
            jit.blacklist(state, trace.anchor)
        if delta == 0:
            return res
        npc = res[0]
        cycles = res[1]
        executed = res[2]
        nxt = jstate[npc]
        if nxt is not None and nxt.__class__ is not int:
            trace = nxt
            state = jstate
            continue
        nxt = tstate[npc]
        if nxt is None:
            return res
        if nxt.__class__ is int:
            if nxt > 1:
                tstate[npc] = nxt - 1
                return res
            return record_and_link(jit, MODE_TRACED, fn_name, npc, code,
                                   costs, len(slots), slots, heap,
                                   printed, cycles, executed, limit,
                                   listener=listener, buf=buf,
                                   frame_id=frame_id, tail=True)
        trace = nxt
        state = tstate


class Interpreter:
    """Executes a :class:`~repro.bytecode.program.Program`."""

    def __init__(self, program: Program,
                 cost_model: CostModel = None,
                 listener: Optional[TraceListener] = None,
                 max_instructions: int = 200_000_000,
                 trace_jit: Optional[bool] = None,
                 trace_jit_threshold: Optional[int] = None):
        self.program = program
        self.cost_model = cost_model if cost_model is not None \
            else DEFAULT_COSTS
        self.listener = listener
        self.max_instructions = max_instructions
        self._cost_cache = {}
        self._decoded_cache = {}
        # trace JIT: None consults JRPM_TRACE_JIT (default on); linked
        # traces persist across run() calls of this instance, like the
        # decoded/cost caches they are compiled from
        self.trace_jit = resolve_trace_jit(trace_jit)
        self._jit = TraceJIT(threshold=trace_jit_threshold) \
            if self.trace_jit else None

    def patch_cost(self, fn_name: str, pc: int, op: Op,
                   sub: int = 0) -> None:
        """Refresh one cached instruction after code patching (the
        runtime overwrites converged loops' READSTATS with NOPs, and
        running frames hold references to the cached cost and dispatch
        lists).  ``sub`` is the sub-opcode (BIN/UN) of the new
        instruction — cycle costs depend on it."""
        cached = self._cost_cache.get(fn_name)
        if cached is not None:
            cached[pc] = self.cost_model.cost(op, sub)
        decoded = self._decoded_cache.get(fn_name)
        if decoded is not None:
            fn = self.program.functions.get(fn_name)
            if fn is not None:
                decoded[pc] = _decode_one(fn.code[pc])
        if self._jit is not None:
            # superblocks covering this pc baked the old decoded form
            # and cost prefixes in as constants: drop them and re-arm
            # their anchors (one already on the stack side-exits at its
            # next validity check); traces elsewhere stay linked
            self._jit.invalidate_function(fn_name, pc)

    def _costs_for(self, fn: Function) -> List[int]:
        cached = self._cost_cache.get(fn.name)
        if cached is None:
            cost = self.cost_model.cost
            cached = [cost(ins.op, ins.sub) for ins in fn.code]
            self._cost_cache[fn.name] = cached
        return cached

    def _decoded_for(self, fn: Function) -> List[tuple]:
        cached = self._decoded_cache.get(fn.name)
        if cached is None:
            cached = [_decode_one(ins) for ins in fn.code]
            self._decoded_cache[fn.name] = cached
        return cached

    def run(self) -> RunResult:
        """Execute from the entry function to completion."""
        if self.listener is None:
            return self._run_fast()
        return self._run_traced()

    # -- fast path: no listener attached ---------------------------------

    def _run_fast(self) -> RunResult:
        heap = Heap()
        printed: List = []
        functions = self.program.functions

        entry = self.program.main
        fn_name = entry.name
        code = self._decoded_for(entry)
        costs = self._costs_for(entry)
        slots = [0] * entry.n_slots
        dst = -1
        pc = 0
        #: (code, costs, slots, return pc, dst, fn_name, jstate)
        stack: List[tuple] = []

        cycles = 0
        executed = 0
        limit = self.max_instructions

        heap_load = heap.load
        heap_store = heap.store

        jit = self._jit
        if jit is not None:
            jstate = jit.state_for(fn_name, MODE_FAST, len(code))
            jenv = (limit, heap_load, heap_store, heap.allocate,
                    heap.length, printed)
        else:
            jstate = None
            jenv = None

        while True:
            ins = code[pc]
            op = ins[0]
            cycles += costs[pc]
            executed += 1
            if executed > limit:
                raise ExecutionError(
                    "instruction budget exceeded (%d)" % limit,
                    pc, fn_name)
            if op == _BIN:
                try:
                    slots[ins[1]] = apply_binop(
                        ins[4], slots[ins[2]], slots[ins[3]])
                except ExecutionError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _CONST:
                slots[ins[1]] = ins[5]
                pc += 1
            elif op == _MOV:
                slots[ins[1]] = slots[ins[2]]
                pc += 1
            elif op == _BR:
                npc = ins[2] if slots[ins[1]] else ins[3]
                if npc <= pc and jstate is not None \
                        and jstate[npc] is not None:
                    pc, cycles, executed = _trace_point_fast(
                        jit, jstate, npc, fn_name, code, costs, slots,
                        heap, printed, cycles, executed, limit, jenv)
                else:
                    pc = npc
            elif op == _JMP:
                npc = ins[1]
                if npc <= pc and jstate is not None \
                        and jstate[npc] is not None:
                    pc, cycles, executed = _trace_point_fast(
                        jit, jstate, npc, fn_name, code, costs, slots,
                        heap, printed, cycles, executed, limit, jenv)
                else:
                    pc = npc
            elif op == _ALOAD:
                try:
                    slots[ins[1]] = heap_load(slots[ins[2]], slots[ins[3]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _ASTORE:
                try:
                    heap_store(slots[ins[1]], slots[ins[2]], slots[ins[3]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _UN:
                try:
                    slots[ins[1]] = apply_unop(ins[4], slots[ins[2]])
                except ExecutionError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _NEWARR:
                try:
                    slots[ins[1]] = heap.allocate(slots[ins[2]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _LEN:
                try:
                    slots[ins[1]] = heap.length(slots[ins[2]])
                except HeapError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _INTRIN:
                try:
                    slots[ins[1]] = apply_intrinsic(
                        ins[6], [slots[s] for s in ins[7]])
                except ExecutionError as exc:
                    raise ExecutionError(
                        str(exc), pc, fn_name) from None
                pc += 1
            elif op == _CALL:
                callee = functions.get(ins[6])
                if callee is None:
                    raise ExecutionError(
                        "call to unknown function %r" % ins[6],
                        pc, fn_name)
                new_slots = [0] * callee.n_slots
                for i, arg_slot in enumerate(ins[7]):
                    new_slots[i] = slots[arg_slot]
                stack.append((code, costs, slots, pc + 1, dst, fn_name,
                              jstate))
                dst = ins[1]
                fn_name = callee.name
                code = self._decoded_for(callee)
                costs = self._costs_for(callee)
                slots = new_slots
                pc = 0
                if jit is not None:
                    jstate = jit.state_for(fn_name, MODE_FAST, len(code))
            elif op == _RET:
                value = slots[ins[1]] if ins[1] >= 0 else None
                if not stack:
                    return RunResult(
                        cycles, executed, value, heap, printed,
                        None if jit is None else jit.snapshot())
                (code, costs, slots, pc, ret_dst, fn_name,
                 jstate) = stack.pop()
                if dst >= 0:
                    slots[dst] = value
                dst = ret_dst
            elif op == _PRINT:
                printed.append(slots[ins[1]])
                pc += 1
            elif op == _NOP or op >= _SLOOP:
                # annotations are pure cost with no listener attached
                pc += 1
            else:  # pragma: no cover - exhaustive
                raise ExecutionError("unknown opcode %r" % op, pc, fn_name)

    # -- traced path: publish events to the listener ---------------------

    def _run_traced(self) -> RunResult:
        heap = Heap()
        printed: List = []
        listener = self.listener
        functions = self.program.functions
        next_frame_id = 0

        entry = self.program.main
        fn_name = entry.name
        code = self._decoded_for(entry)
        costs = self._costs_for(entry)
        slots = [0] * entry.n_slots
        dst = -1
        pc = 0
        frame_id = next_frame_id
        next_frame_id += 1
        #: (code, costs, slots, return pc, dst, fn_name, frame_id,
        #: jstate)
        stack: List[tuple] = []

        cycles = 0
        executed = 0
        limit = self.max_instructions

        heap_load = heap.load
        heap_store = heap.store
        heap_address = heap.address
        on_mem_batch = listener.on_mem_batch
        flush_at = _FLUSH_AT

        # one ordered buffer for heap AND local memory events; flushed
        # before every loop marker so listeners observe the exact event
        # order the unbatched interface delivered
        buf: List[tuple] = []
        buf_append = buf.append

        jit = self._jit
        if jit is not None:
            jstate = jit.state_for(fn_name, MODE_TRACED, len(code))
            # superblocks share buf by identity (cleared, never
            # rebound), so events they append survive the finally flush
            jenv = (limit, heap.load_addr, heap.store_addr,
                    heap.allocate, heap.length, printed, buf, buf_append,
                    on_mem_batch, listener.on_sloop, listener.on_eoi,
                    listener.on_eloop, listener.on_readstats)
        else:
            jstate = None
            jenv = None

        try:
            while True:
                ins = code[pc]
                op = ins[0]
                cycles += costs[pc]
                executed += 1
                if executed > limit:
                    raise ExecutionError(
                        "instruction budget exceeded (%d)" % limit,
                        pc, fn_name)
                if op == _BIN:
                    try:
                        slots[ins[1]] = apply_binop(
                            ins[4], slots[ins[2]], slots[ins[3]])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _CONST:
                    slots[ins[1]] = ins[5]
                    pc += 1
                elif op == _MOV:
                    slots[ins[1]] = slots[ins[2]]
                    pc += 1
                elif op == _BR:
                    npc = ins[2] if slots[ins[1]] else ins[3]
                    if npc <= pc and jstate is not None \
                            and jstate[npc] is not None:
                        pc, cycles, executed = _trace_point_traced(
                            jit, jstate, npc, fn_name, code, costs,
                            slots, heap, printed, cycles, executed,
                            limit, jenv, listener, buf, frame_id)
                    else:
                        pc = npc
                elif op == _JMP:
                    npc = ins[1]
                    if npc <= pc and jstate is not None \
                            and jstate[npc] is not None:
                        pc, cycles, executed = _trace_point_traced(
                            jit, jstate, npc, fn_name, code, costs,
                            slots, heap, printed, cycles, executed,
                            limit, jenv, listener, buf, frame_id)
                    else:
                        pc = npc
                elif op == _ALOAD:
                    try:
                        slots[ins[1]] = heap_load(
                            slots[ins[2]], slots[ins[3]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    buf_append(("ld",
                                heap_address(slots[ins[2]], slots[ins[3]]),
                                cycles, fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _ASTORE:
                    try:
                        heap_store(slots[ins[1]], slots[ins[2]],
                                   slots[ins[3]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    buf_append(("st",
                                heap_address(slots[ins[1]], slots[ins[2]]),
                                cycles, fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _UN:
                    try:
                        slots[ins[1]] = apply_unop(ins[4], slots[ins[2]])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _NEWARR:
                    try:
                        slots[ins[1]] = heap.allocate(slots[ins[2]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _LEN:
                    try:
                        slots[ins[1]] = heap.length(slots[ins[2]])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _INTRIN:
                    try:
                        slots[ins[1]] = apply_intrinsic(
                            ins[6], [slots[s] for s in ins[7]])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, fn_name) from None
                    pc += 1
                elif op == _CALL:
                    callee = functions.get(ins[6])
                    if callee is None:
                        raise ExecutionError(
                            "call to unknown function %r" % ins[6],
                            pc, fn_name)
                    new_slots = [0] * callee.n_slots
                    for i, arg_slot in enumerate(ins[7]):
                        new_slots[i] = slots[arg_slot]
                    stack.append((code, costs, slots, pc + 1, dst,
                                  fn_name, frame_id, jstate))
                    dst = ins[1]
                    fn_name = callee.name
                    code = self._decoded_for(callee)
                    costs = self._costs_for(callee)
                    slots = new_slots
                    pc = 0
                    frame_id = next_frame_id
                    next_frame_id += 1
                    if jit is not None:
                        jstate = jit.state_for(fn_name, MODE_TRACED,
                                               len(code))
                elif op == _RET:
                    value = slots[ins[1]] if ins[1] >= 0 else None
                    if not stack:
                        if buf:
                            on_mem_batch(buf)
                            buf.clear()
                        return RunResult(
                            cycles, executed, value, heap, printed,
                            None if jit is None else jit.snapshot())
                    (code, costs, slots, pc, ret_dst, fn_name,
                     frame_id, jstate) = stack.pop()
                    if dst >= 0:
                        slots[dst] = value
                    dst = ret_dst
                # --- annotations ------------------------------------
                elif op == _LWL:
                    buf_append(("lld", frame_id, ins[1], cycles,
                                fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _SWL:
                    buf_append(("lst", frame_id, ins[1], cycles,
                                fn_name, pc))
                    if len(buf) >= flush_at:
                        on_mem_batch(buf)
                        buf.clear()
                    pc += 1
                elif op == _EOI:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_eoi(ins[1], cycles)
                    pc += 1
                elif op == _SLOOP:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_sloop(ins[1], ins[2], cycles, frame_id)
                    pc += 1
                elif op == _ELOOP:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_eloop(ins[1], cycles)
                    pc += 1
                elif op == _READSTATS:
                    if buf:
                        on_mem_batch(buf)
                        buf.clear()
                    listener.on_readstats(ins[1], cycles)
                    pc += 1
                elif op == _PRINT:
                    printed.append(slots[ins[1]])
                    pc += 1
                elif op == _NOP:
                    pc += 1
                else:  # pragma: no cover - exhaustive
                    raise ExecutionError(
                        "unknown opcode %r" % op, pc, fn_name)
        finally:
            # deliver events observed before an abnormal exit
            if buf:
                on_mem_batch(buf)
                buf.clear()


def run_program(program: Program,
                cost_model: CostModel = None,
                listener: Optional[TraceListener] = None,
                max_instructions: int = 200_000_000,
                trace_jit: Optional[bool] = None,
                trace_jit_threshold: Optional[int] = None) -> RunResult:
    """One-call convenience wrapper around :class:`Interpreter`."""
    interp = Interpreter(program, cost_model=cost_model, listener=listener,
                         max_instructions=max_instructions,
                         trace_jit=trace_jit,
                         trace_jit_threshold=trace_jit_threshold)
    return interp.run()
