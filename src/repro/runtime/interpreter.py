"""Sequential cycle-cost interpreter.

This is the reproduction's stand-in for a single Hydra core running
JIT-compiled native code.  It executes bytecode deterministically,
accumulates a cycle count from :class:`~repro.runtime.costs.CostModel`,
and — when a :class:`~repro.runtime.events.TraceListener` is attached —
publishes exactly the events the TEST hardware would observe.

Design notes
------------
* The call stack is explicit (no Python recursion), so deeply recursive
  workloads cannot blow the host stack.
* Per-function cycle costs are precomputed into flat lists; the hot loop
  is a single ``if/elif`` dispatch over the opcode int.
* ``max_instructions`` bounds runaway programs with a clear error.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.opcodes import Op
from repro.bytecode.program import Function, Program
from repro.errors import ExecutionError, HeapError
from repro.runtime.costs import DEFAULT_COSTS, CostModel
from repro.runtime.events import TraceListener
from repro.runtime.heap import Heap
from repro.runtime.values import apply_binop, apply_intrinsic, apply_unop


class RunResult:
    """Outcome of one program execution."""

    def __init__(self, cycles: int, instructions: int, return_value,
                 heap: Heap, printed: List):
        self.cycles = cycles
        self.instructions = instructions
        self.return_value = return_value
        self.heap = heap
        self.printed = printed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RunResult cycles=%d instrs=%d ret=%r>" % (
            self.cycles, self.instructions, self.return_value)


class _Frame:
    """One activation record."""

    __slots__ = ("fn", "code", "costs", "pc", "slots", "dst", "frame_id")

    def __init__(self, fn: Function, code, costs, slots, dst: int,
                 frame_id: int):
        self.fn = fn
        self.code = code
        self.costs = costs
        self.pc = 0
        self.slots = slots
        self.dst = dst
        self.frame_id = frame_id


class Interpreter:
    """Executes a :class:`~repro.bytecode.program.Program`."""

    def __init__(self, program: Program,
                 cost_model: CostModel = None,
                 listener: Optional[TraceListener] = None,
                 max_instructions: int = 200_000_000):
        self.program = program
        self.cost_model = cost_model if cost_model is not None \
            else DEFAULT_COSTS
        self.listener = listener
        self.max_instructions = max_instructions
        self._cost_cache = {}

    def patch_cost(self, fn_name: str, pc: int, op: Op) -> None:
        """Refresh one cached instruction cost after code patching (the
        runtime overwrites converged loops' READSTATS with NOPs, and
        running frames hold a reference to the cached cost list)."""
        cached = self._cost_cache.get(fn_name)
        if cached is not None:
            cached[pc] = self.cost_model.cost(op)

    def _costs_for(self, fn: Function) -> List[int]:
        cached = self._cost_cache.get(fn.name)
        if cached is None:
            cost = self.cost_model.cost
            cached = [cost(ins.op, ins.sub) for ins in fn.code]
            self._cost_cache[fn.name] = cached
        return cached

    def run(self) -> RunResult:
        """Execute from the entry function to completion."""
        heap = Heap()
        printed: List = []
        listener = self.listener
        next_frame_id = 0

        entry = self.program.main
        frame = _Frame(entry, entry.code, self._costs_for(entry),
                       [0] * entry.n_slots, -1, next_frame_id)
        next_frame_id += 1
        stack: List[_Frame] = []

        cycles = 0
        executed = 0
        limit = self.max_instructions
        return_value = None

        while True:
            code = frame.code
            costs = frame.costs
            slots = frame.slots
            pc = frame.pc
            # inner loop over the current frame; broken by CALL/RET
            while True:
                ins = code[pc]
                op = ins.op
                cycles += costs[pc]
                executed += 1
                if executed > limit:
                    raise ExecutionError(
                        "instruction budget exceeded (%d)" % limit,
                        pc, frame.fn.name)
                if op == Op.BIN:
                    try:
                        slots[ins.a] = apply_binop(
                            ins.sub, slots[ins.b], slots[ins.c])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, frame.fn.name) from None
                    pc += 1
                elif op == Op.CONST:
                    slots[ins.a] = ins.imm
                    pc += 1
                elif op == Op.MOV:
                    slots[ins.a] = slots[ins.b]
                    pc += 1
                elif op == Op.BR:
                    pc = ins.b if slots[ins.a] else ins.c
                elif op == Op.JMP:
                    pc = ins.a
                elif op == Op.ALOAD:
                    try:
                        slots[ins.a] = heap.load(slots[ins.b], slots[ins.c])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, frame.fn.name) from None
                    if listener is not None:
                        listener.on_load(
                            heap.address(slots[ins.b], slots[ins.c]),
                            cycles, frame.fn.name, pc)
                    pc += 1
                elif op == Op.ASTORE:
                    try:
                        heap.store(slots[ins.a], slots[ins.b], slots[ins.c])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, frame.fn.name) from None
                    if listener is not None:
                        listener.on_store(
                            heap.address(slots[ins.a], slots[ins.b]),
                            cycles, frame.fn.name, pc)
                    pc += 1
                elif op == Op.UN:
                    try:
                        slots[ins.a] = apply_unop(ins.sub, slots[ins.b])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, frame.fn.name) from None
                    pc += 1
                elif op == Op.NEWARR:
                    try:
                        slots[ins.a] = heap.allocate(slots[ins.b])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, frame.fn.name) from None
                    pc += 1
                elif op == Op.LEN:
                    try:
                        slots[ins.a] = heap.length(slots[ins.b])
                    except HeapError as exc:
                        raise ExecutionError(
                            str(exc), pc, frame.fn.name) from None
                    pc += 1
                elif op == Op.INTRIN:
                    try:
                        slots[ins.a] = apply_intrinsic(
                            ins.name, [slots[s] for s in ins.args])
                    except ExecutionError as exc:
                        raise ExecutionError(
                            str(exc), pc, frame.fn.name) from None
                    pc += 1
                elif op == Op.CALL:
                    callee = self.program.functions.get(ins.name)
                    if callee is None:
                        raise ExecutionError(
                            "call to unknown function %r" % ins.name,
                            pc, frame.fn.name)
                    new_slots = [0] * callee.n_slots
                    for i, arg_slot in enumerate(ins.args):
                        new_slots[i] = slots[arg_slot]
                    frame.pc = pc + 1
                    stack.append(frame)
                    frame = _Frame(callee, callee.code,
                                   self._costs_for(callee),
                                   new_slots, ins.a, next_frame_id)
                    next_frame_id += 1
                    break
                elif op == Op.RET:
                    value = slots[ins.a] if ins.a >= 0 else None
                    if not stack:
                        return_value = value
                        return RunResult(cycles, executed, return_value,
                                         heap, printed)
                    caller = stack.pop()
                    if frame.dst >= 0:
                        caller.slots[frame.dst] = value
                    frame = caller
                    break
                # --- annotations --------------------------------------
                elif op == Op.LWL:
                    if listener is not None:
                        listener.on_local_load(
                            frame.frame_id, ins.a, cycles,
                            frame.fn.name, pc)
                    pc += 1
                elif op == Op.SWL:
                    if listener is not None:
                        listener.on_local_store(
                            frame.frame_id, ins.a, cycles,
                            frame.fn.name, pc)
                    pc += 1
                elif op == Op.EOI:
                    if listener is not None:
                        listener.on_eoi(ins.a, cycles)
                    pc += 1
                elif op == Op.SLOOP:
                    if listener is not None:
                        listener.on_sloop(ins.a, ins.b, cycles,
                                          frame.frame_id)
                    pc += 1
                elif op == Op.ELOOP:
                    if listener is not None:
                        listener.on_eloop(ins.a, cycles)
                    pc += 1
                elif op == Op.READSTATS:
                    if listener is not None:
                        listener.on_readstats(ins.a, cycles)
                    pc += 1
                elif op == Op.PRINT:
                    printed.append(slots[ins.a])
                    pc += 1
                elif op == Op.NOP:
                    pc += 1
                else:  # pragma: no cover - exhaustive
                    raise ExecutionError(
                        "unknown opcode %r" % op, pc, frame.fn.name)


def run_program(program: Program,
                cost_model: CostModel = None,
                listener: Optional[TraceListener] = None,
                max_instructions: int = 200_000_000) -> RunResult:
    """One-call convenience wrapper around :class:`Interpreter`."""
    interp = Interpreter(program, cost_model=cost_model, listener=listener,
                         max_instructions=max_instructions)
    return interp.run()
