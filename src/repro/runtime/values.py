"""Arithmetic semantics for bytecode values.

Values are Python ints and floats; array handles are ints issued by the
heap (they live in the same slot file, as on a real register machine).
Arithmetic follows Java-like rules — the paper's substrate is a JVM:

* ``/`` truncates toward zero for int/int, is IEEE for floats;
* ``%`` takes the sign of the dividend (Java remainder), not Python's
  floor-mod;
* shifts and bitwise operators require int operands;
* comparisons yield 0/1 ints.

Integers are unbounded (workloads that need wrap-around mask manually);
this keeps the interpreter simple and deterministic.
"""

from __future__ import annotations

import math

from repro.bytecode.opcodes import BinOp, UnOp
from repro.errors import ExecutionError


def _require_ints(op_name: str, lhs, rhs) -> None:
    if isinstance(lhs, float) or isinstance(rhs, float):
        raise ExecutionError(
            "%s requires int operands, got %r and %r" % (op_name, lhs, rhs))


def java_div(lhs, rhs):
    """Division: truncating for int/int, IEEE for floats."""
    if rhs == 0:
        if isinstance(lhs, float) or isinstance(rhs, float):
            raise ExecutionError("float division by zero")
        raise ExecutionError("integer division by zero")
    if isinstance(lhs, int) and isinstance(rhs, int):
        q = abs(lhs) // abs(rhs)
        return q if (lhs >= 0) == (rhs >= 0) else -q
    return lhs / rhs


def java_mod(lhs, rhs):
    """Remainder with the sign of the dividend (Java semantics)."""
    if rhs == 0:
        raise ExecutionError("modulo by zero")
    if isinstance(lhs, int) and isinstance(rhs, int):
        return lhs - java_div(lhs, rhs) * rhs
    return math.fmod(lhs, rhs)


def apply_binop(sub: int, lhs, rhs):
    """Apply a :class:`~repro.bytecode.opcodes.BinOp` to two values."""
    if sub == BinOp.ADD:
        return lhs + rhs
    if sub == BinOp.SUB:
        return lhs - rhs
    if sub == BinOp.MUL:
        return lhs * rhs
    if sub == BinOp.DIV:
        return java_div(lhs, rhs)
    if sub == BinOp.MOD:
        return java_mod(lhs, rhs)
    if sub == BinOp.LT:
        return 1 if lhs < rhs else 0
    if sub == BinOp.LE:
        return 1 if lhs <= rhs else 0
    if sub == BinOp.GT:
        return 1 if lhs > rhs else 0
    if sub == BinOp.GE:
        return 1 if lhs >= rhs else 0
    if sub == BinOp.EQ:
        return 1 if lhs == rhs else 0
    if sub == BinOp.NE:
        return 1 if lhs != rhs else 0
    if sub == BinOp.AND:
        _require_ints("&", lhs, rhs)
        return lhs & rhs
    if sub == BinOp.OR:
        _require_ints("|", lhs, rhs)
        return lhs | rhs
    if sub == BinOp.XOR:
        _require_ints("^", lhs, rhs)
        return lhs ^ rhs
    if sub == BinOp.SHL:
        _require_ints("<<", lhs, rhs)
        if rhs < 0:
            raise ExecutionError("negative shift count %d" % rhs)
        return lhs << rhs
    if sub == BinOp.SHR:
        _require_ints(">>", lhs, rhs)
        if rhs < 0:
            raise ExecutionError("negative shift count %d" % rhs)
        return lhs >> rhs
    raise ExecutionError("unknown BIN sub-opcode %d" % sub)


def apply_unop(sub: int, value):
    """Apply a :class:`~repro.bytecode.opcodes.UnOp` to a value."""
    if sub == UnOp.NEG:
        return -value
    if sub == UnOp.NOT:
        return 0 if value else 1
    if sub == UnOp.INV:
        if isinstance(value, float):
            raise ExecutionError("~ requires an int operand, got %r" % value)
        return ~value
    if sub == UnOp.I2F:
        return float(value)
    if sub == UnOp.F2I:
        return int(value)
    raise ExecutionError("unknown UN sub-opcode %d" % sub)


def apply_intrinsic(name: str, args):
    """Evaluate a pure intrinsic call."""
    try:
        if name == "sqrt":
            return math.sqrt(args[0])
        if name == "sin":
            return math.sin(args[0])
        if name == "cos":
            return math.cos(args[0])
        if name == "exp":
            return math.exp(args[0])
        if name == "log":
            return math.log(args[0])
        if name == "abs":
            return abs(args[0])
        if name == "floor":
            return math.floor(args[0])
        if name == "min":
            return min(args[0], args[1])
        if name == "max":
            return max(args[0], args[1])
        if name == "pow":
            return math.pow(args[0], args[1])
    except ValueError as exc:
        raise ExecutionError("intrinsic %s%r: %s" % (name, tuple(args), exc))
    raise ExecutionError("unknown intrinsic %r" % name)
