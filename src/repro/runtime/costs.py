"""Cycle-cost model for the interpreter.

The paper's thread sizes and dependency arc lengths are measured in
cycles on Hydra's single-issue pipelined MIPS cores.  We substitute a
deterministic per-opcode cost table; absolute values are calibrated to
plausible single-issue latencies, but what matters to the reproduction
is that they are *consistent* between the sequential run (where TEST
measures) and the TLS timing simulation (where the prediction is
validated).

Annotation costs model Section 5.1's slowdown sources (Figure 6):
``LWL``/``SWL`` are one extra instruction each, loop markers a couple of
cycles, and ``READSTATS`` — reading the comparator-bank counters out of
the TEST device at loop exit — is the expensive one.
"""

from __future__ import annotations

from typing import Dict

from repro.bytecode.opcodes import BinOp, Op


class CostModel:
    """Maps opcodes (and BIN sub-opcodes) to cycle costs."""

    def __init__(self,
                 op_costs: Dict[Op, int] = None,
                 bin_costs: Dict[BinOp, int] = None):
        self.op_costs = dict(_DEFAULT_OP_COSTS)
        if op_costs:
            self.op_costs.update(op_costs)
        self.bin_costs = dict(_DEFAULT_BIN_COSTS)
        if bin_costs:
            self.bin_costs.update(bin_costs)

    def cost(self, op: Op, sub: int = 0) -> int:
        """Cycles consumed by one instruction."""
        if op == Op.BIN:
            return self.bin_costs.get(BinOp(sub), 1)
        return self.op_costs.get(op, 1)

    def annotation_cycles(self, op: Op) -> int:
        """Cost of an annotation op (0 for non-annotations); used by the
        slowdown accounting in :mod:`repro.jit.annotate`."""
        if op in (Op.SLOOP, Op.EOI, Op.ELOOP, Op.LWL, Op.SWL, Op.READSTATS):
            return self.op_costs.get(op, 1)
        return 0


_DEFAULT_OP_COSTS: Dict[Op, int] = {
    Op.CONST: 1,
    Op.MOV: 1,
    Op.UN: 1,
    Op.NEWARR: 30,
    # one IR array access expands to a null check, bounds check,
    # index scaling, address add, and the access itself in JIT-compiled
    # JVM code on a single-issue MIPS, hence several cycles per L1 hit
    Op.ALOAD: 6,
    Op.ASTORE: 6,
    Op.LEN: 1,
    Op.JMP: 1,
    Op.BR: 2,          # compare-and-branch + delay slot
    Op.CALL: 6,        # call linkage + frame setup
    Op.RET: 3,
    Op.INTRIN: 16,     # FP library routine
    Op.PRINT: 1,
    Op.NOP: 1,
    # annotations (Table 4 / Figure 6 cost sources)
    Op.SLOOP: 2,
    Op.EOI: 1,
    Op.ELOOP: 2,
    Op.LWL: 1,
    Op.SWL: 1,
    Op.READSTATS: 64,  # drain comparator-bank counters at loop exit
}

_DEFAULT_BIN_COSTS: Dict[BinOp, int] = {
    BinOp.ADD: 1,
    BinOp.SUB: 1,
    BinOp.MUL: 4,
    BinOp.DIV: 12,
    BinOp.MOD: 12,
    BinOp.AND: 1,
    BinOp.OR: 1,
    BinOp.XOR: 1,
    BinOp.SHL: 1,
    BinOp.SHR: 1,
    BinOp.LT: 1,
    BinOp.LE: 1,
    BinOp.GT: 1,
    BinOp.GE: 1,
    BinOp.EQ: 1,
    BinOp.NE: 1,
}

#: Shared default instance (immutable by convention).
DEFAULT_COSTS = CostModel()
