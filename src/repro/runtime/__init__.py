"""Sequential execution substrate: heap, cost model, events, interpreter.

This package stands in for one Hydra core executing JIT-compiled code
sequentially (stage 2 of the Jrpm pipeline, Figure 1 of the paper).
"""

from repro.runtime.costs import DEFAULT_COSTS, CostModel
from repro.runtime.events import (
    LOCAL_ADDRESS_BASE,
    ColumnarRecording,
    LoopMark,
    MemEvent,
    MulticastListener,
    RecordingListener,
    TraceListener,
    local_address,
)
from repro.runtime.heap import LINE_SIZE, WORD_SIZE, Heap, line_of
from repro.runtime.interpreter import Interpreter, RunResult, run_program
from repro.runtime.tracejit import TraceJIT, TraceJITError, resolve_trace_jit

__all__ = [
    "ColumnarRecording",
    "CostModel",
    "DEFAULT_COSTS",
    "Heap",
    "Interpreter",
    "LINE_SIZE",
    "LOCAL_ADDRESS_BASE",
    "LoopMark",
    "MemEvent",
    "MulticastListener",
    "RecordingListener",
    "RunResult",
    "TraceJIT",
    "TraceJITError",
    "TraceListener",
    "WORD_SIZE",
    "line_of",
    "local_address",
    "resolve_trace_jit",
    "run_program",
]
