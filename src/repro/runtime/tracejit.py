"""Trace-recording speculative fast path for the interpreter (trace JIT).

The dispatch loops in :mod:`repro.runtime.interpreter` pay per
instruction: a dispatch-table index, an opcode compare chain, a cost
lookup, and two counter updates.  The steady state of every hot loop
repeats the same linear instruction path, so that per-instruction tax
buys nothing.  This module removes it with the classic trace-JIT
recipe — the same speculate/guard/commit structure the paper applies to
threads, applied here to the interpreter itself:

1. **Hotness.**  Backedges (a ``JMP``/``BR`` whose target is at or
   before the branch) carry a per-target countdown.  When a target —
   the *anchor* — gets hot, the interpreter switches to recording mode.
2. **Recording.**  The recorder executes instructions with exactly the
   interpreter's semantics while capturing the linear path taken.
   Recording stops successfully when control returns to the anchor
   (a loop closed), and is abandoned at a ``CALL``/``RET``, at a
   backedge to any *other* pc (an inner loop — it gets its own trace),
   at the length limit, or when live code patching invalidates the
   function mid-recording.
3. **Linking.**  A successful recording is verified
   (:func:`verify_trace`) and compiled into a *guarded superblock*: a
   Python function, generated and ``exec``-compiled at link time, that
   runs the straight-line loop body with branches converted to guards.
   Every guard carries its abort pc and the exact cycle/instruction
   prefix to charge, so a failing guard returns control to the generic
   loop with the interpreter state — pc, cycle counter, instruction
   counter, pending event batch — exactly as if the generic loop had
   executed every instruction itself.  Cost lookups and name/pc
   constants are hoisted into the superblock at link time.
4. **Abort statistics / blacklisting.**  Each linked trace counts
   invocations, committed ops, completed iterations, and mid-iteration
   guard failures.  A trace that fails to commit an average of
   :data:`BLACKLIST_MIN_OPS` ops per invocation by its
   :data:`BLACKLIST_PROBE`-th call is discarded and its anchor
   blacklisted, so pathological branch behaviour degrades to plain
   dispatch instead of thrashing.  The metric is committed ops — not
   completed iterations — because a side exit still commits its guard
   prefix at superblock speed; a frequently-aborting trace can pay for
   itself as long as each call retires enough work to cover the call
   overhead.
5. **Tail traces / exit chaining.**  A side exit that gets hot becomes
   an anchor of its own: a *tail trace* records from the exit pc to the
   first taken backedge and compiles to a superblock that runs once and
   exits at the backedge target instead of looping.  The trace point
   chains superblocks — after any invocation it dispatches the exit pc
   to the next linked trace (loop or tail) before falling back to
   generic dispatch, so a loop whose body has a data-dependent branch
   executes entirely at superblock speed: the loop trace covers the
   recorded arm and a tail trace covers the other arm's path back to
   the loop header.  Tail hotness state lives in a separate per-pc
   array (`mode + ":tail"`), so it never collides with backedge
   anchors, and tail traces use the same guard, payoff-probe, and
   invalidation machinery as loop traces.

Exactness contract
------------------
A superblock must be observationally identical to the generic loop:

* same return value, heap, printed output;
* same cycle and instruction counts at every exit;
* in traced mode, the identical event stream — memory events are
  appended to the *same* pending batch buffer with the same timestamps
  and flushed at the same points, and loop markers invoke the same
  listener callbacks;
* any instruction that would raise is **not** executed speculatively:
  the superblock deoptimizes *before* it (charging only the preceding
  prefix) and the generic loop re-executes it, producing the canonical
  error with the canonical location.

Live code patching (:meth:`Interpreter.patch_cost`) drops exactly the
linked traces that cover the patched pc (their baked-in decoded form
and cost prefixes are stale from that instant) by flipping each one's
validity cell; running traced-mode superblocks check the cell after
every listener call and side-exit as soon as their own code is
patched.  Traces elsewhere in the function stay linked, and the JIT
epoch — bumped on every patch — only aborts in-flight recordings,
whose captured instruction tuples alias the patched decoded cache.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.bytecode.opcodes import BinOp, Op
from repro.errors import ExecutionError, ReproError

#: plain-int opcodes (enum compares are slow; mirrors the interpreter)
_CONST = int(Op.CONST)
_MOV = int(Op.MOV)
_BIN = int(Op.BIN)
_UN = int(Op.UN)
_NEWARR = int(Op.NEWARR)
_ALOAD = int(Op.ALOAD)
_ASTORE = int(Op.ASTORE)
_LEN = int(Op.LEN)
_JMP = int(Op.JMP)
_BR = int(Op.BR)
_CALL = int(Op.CALL)
_RET = int(Op.RET)
_INTRIN = int(Op.INTRIN)
_SLOOP = int(Op.SLOOP)
_EOI = int(Op.EOI)
_ELOOP = int(Op.ELOOP)
_LWL = int(Op.LWL)
_SWL = int(Op.SWL)
_READSTATS = int(Op.READSTATS)
_PRINT = int(Op.PRINT)
_NOP = int(Op.NOP)

#: memory events buffered before delivery (shared with the interpreter)
FLUSH_AT = 512

#: backedge executions before an anchor is recorded
DEFAULT_HOT_THRESHOLD = 16

#: recorded ops before a recording is abandoned as too long
MAX_TRACE_OPS = 384

#: invocation count at which a linked trace's payoff is judged
BLACKLIST_PROBE = 32

#: average committed ops per invocation a trace must reach by the
#: probe point to stay linked — roughly the invocation overhead
#: expressed in generic-dispatch op costs, so a trace below this line
#: is slower than not calling it at all
BLACKLIST_MIN_OPS = 4

#: recording attempts an anchor gets before a foreign-backedge abort
#: becomes a blacklist.  Hitting another loop's backedge is usually
#: bad luck — the recording started on the entry's final iteration and
#: ran off the loop exit — so the anchor re-warms and tries again; only
#: an anchor that *always* reaches a foreign backedge (a genuinely
#: outer loop, whose body contains the inner loop) exhausts the budget
MAX_RECORD_ATTEMPTS = 4

#: execution-mode tags; fast and traced superblocks never alias
MODE_FAST = "fast"
MODE_TRACED = "traced"

#: state-array keys for tail-trace hotness: side-exit pcs are armed in
#: their own per-pc array so they never collide with backedge anchors
#: (a pc can be a blacklisted loop anchor and a profitable tail anchor
#: at the same time)
MODE_FAST_TAIL = MODE_FAST + ":tail"
MODE_TRACED_TAIL = MODE_TRACED + ":tail"


class TraceJITError(ReproError):
    """A recorded trace failed verification at link time."""


def resolve_trace_jit(flag: Optional[bool]) -> bool:
    """Resolve the effective trace-JIT switch.

    Explicit ``True``/``False`` wins; ``None`` consults the
    ``JRPM_TRACE_JIT`` environment variable (default: enabled).
    """
    if flag is not None:
        return bool(flag)
    env = os.environ.get("JRPM_TRACE_JIT")
    if env is None:
        return True
    return env.strip().lower() not in ("0", "false", "off", "no", "")


def resolve_threshold(threshold: Optional[int]) -> int:
    """Effective hotness threshold: explicit value, else
    ``JRPM_TRACE_JIT_THRESHOLD``, else :data:`DEFAULT_HOT_THRESHOLD`."""
    if threshold is None:
        env = os.environ.get("JRPM_TRACE_JIT_THRESHOLD")
        threshold = int(env) if env else DEFAULT_HOT_THRESHOLD
    return max(1, int(threshold))


class LinkedTrace:
    """One compiled superblock plus its abort statistics."""

    __slots__ = ("fn", "n_ops", "anchor", "fn_name", "mode", "exit_pc",
                 "invocations", "ops", "iterations", "aborts", "pcs",
                 "valid")

    def __init__(self, fn, n_ops: int, anchor: int, fn_name: str,
                 mode: str, pcs: frozenset, valid: List,
                 exit_pc: Optional[int] = None):
        self.fn = fn
        self.n_ops = n_ops
        self.anchor = anchor
        self.fn_name = fn_name
        self.mode = mode
        #: None for a loop trace; for a tail trace, the backedge target
        #: the straightline exits to after its single pass
        self.exit_pc = exit_pc
        #: every pc this trace baked in (decoded form and cost) — a
        #: patch outside this set leaves the superblock exact
        self.pcs = pcs
        #: one-cell validity flag closed over by the compiled
        #: superblock; flipped by targeted invalidation so a superblock
        #: already on the stack side-exits at its next check
        self.valid = valid
        self.invocations = 0
        #: ops committed inside the superblock across all invocations
        self.ops = 0
        #: completed loop iterations across all invocations
        self.iterations = 0
        #: mid-iteration guard failures (exits not at a loop boundary)
        self.aborts = 0


class TraceJIT:
    """Per-interpreter trace cache, hotness state, and counters.

    The cache key is ``(function name, mode, anchor pc)``: the state
    array for a (function, mode) pair holds, per pc, either an ``int``
    countdown (warming), a :class:`LinkedTrace`, or ``None``
    (blacklisted / never a trace anchor).  One :class:`TraceJIT` serves
    one interpreter, so the cost model and decoded form it bakes into
    superblocks are fixed by construction; targeted invalidation drops
    the covering traces when :meth:`Interpreter.patch_cost` rewrites
    live code.
    """

    def __init__(self, threshold: Optional[int] = None,
                 max_ops: int = MAX_TRACE_OPS):
        self.threshold = resolve_threshold(threshold)
        self.max_ops = max_ops
        #: bumped on every live-code patch; traced superblocks compare
        #: against their link-time value after each listener call
        self.epoch = [0]
        self._state: Dict[Tuple[str, str], List] = {}
        #: (fn, mode, anchor) -> failed recording attempts so far
        self._attempts: Dict[Tuple[str, str, int], int] = {}
        self._all: List[LinkedTrace] = []
        self.recordings = 0
        self.linked = 0
        self.blacklisted = 0
        self.recordings_aborted = 0
        self.invalidations = 0

    def state_for(self, fn_name: str, mode: str, n: int) -> List:
        """The per-pc anchor state array for (``fn_name``, ``mode``)."""
        key = (fn_name, mode)
        state = self._state.get(key)
        if state is None:
            state = [self.threshold] * n
            self._state[key] = state
        return state

    def blacklist(self, state: List, anchor: int) -> None:
        state[anchor] = None
        self.blacklisted += 1

    def invalidate_function(self, fn_name: str,
                            pc: Optional[int] = None) -> None:
        """Drop the linked traces of ``fn_name`` that cover ``pc`` and
        re-arm their anchors; called after live code/cost patching.
        Traces that never touch the patched pc baked nothing stale and
        stay linked — so does every blacklist decision and warming
        countdown.  Flipping a dropped trace's validity cell side-exits
        a superblock already on the stack; the epoch bump aborts any
        in-flight recording (its captured instruction tuples alias the
        decoded cache the patch just rewrote)."""
        self.epoch[0] += 1
        self.invalidations += 1
        threshold = self.threshold
        for (fn, _mode), state in self._state.items():
            if fn != fn_name:
                continue
            for anchor, entry in enumerate(state):
                if entry.__class__ is LinkedTrace and \
                        (pc is None or pc in entry.pcs):
                    entry.valid[0] = False
                    state[anchor] = threshold

    def __getstate__(self) -> Dict:
        # linked superblocks are exec-compiled closures and cannot
        # cross a pickle boundary; they are a cache, so a pickled JIT
        # ships its counters and re-warms its anchors on the other side
        return {
            "threshold": self.threshold,
            "max_ops": self.max_ops,
            "epoch": list(self.epoch),
            "recordings": self.recordings,
            "linked": self.linked,
            "blacklisted": self.blacklisted,
            "recordings_aborted": self.recordings_aborted,
            "invalidations": self.invalidations,
        }

    def __setstate__(self, state: Dict) -> None:
        self.threshold = state["threshold"]
        self.max_ops = state["max_ops"]
        self.epoch = list(state["epoch"])
        self._state = {}
        self._attempts = {}
        self._all = []
        self.recordings = state["recordings"]
        self.linked = state["linked"]
        self.blacklisted = state["blacklisted"]
        self.recordings_aborted = state["recordings_aborted"]
        self.invalidations = state["invalidations"]

    def snapshot(self) -> Dict:
        """Deterministic counters for :class:`RunResult` / reports."""
        invocations = ops_committed = iterations = aborts = 0
        per_trace = []
        for tr in self._all:
            invocations += tr.invocations
            ops_committed += tr.ops
            iterations += tr.iterations
            aborts += tr.aborts
            per_trace.append({
                "fn": tr.fn_name,
                "anchor": tr.anchor,
                "mode": tr.mode,
                "exit_pc": tr.exit_pc,
                "ops": tr.n_ops,
                "invocations": tr.invocations,
                "ops_committed": tr.ops,
                "iterations": tr.iterations,
                "guard_failures": tr.aborts,
            })
        per_trace.sort(key=lambda d: (d["fn"], d["anchor"], d["mode"]))
        return {
            "enabled": True,
            "threshold": self.threshold,
            "recordings": self.recordings,
            "recordings_aborted": self.recordings_aborted,
            "traces_linked": self.linked,
            "traces_blacklisted": self.blacklisted,
            "invalidations": self.invalidations,
            "invocations": invocations,
            "ops_committed": ops_committed,
            "iterations": iterations,
            "guard_failures": aborts,
            "traces": per_trace,
        }


# ---------------------------------------------------------------------------
# trace verification
# ---------------------------------------------------------------------------

#: ops legal inside a trace (CALL/RET stop recording before execution)
_TRACEABLE = frozenset([
    _CONST, _MOV, _BIN, _UN, _NEWARR, _ALOAD, _ASTORE, _LEN, _JMP, _BR,
    _INTRIN, _SLOOP, _EOI, _ELOOP, _LWL, _SWL, _READSTATS, _PRINT, _NOP,
])


def _slot_operands(ins: tuple) -> List[int]:
    """Slot indices an instruction reads or writes."""
    op = ins[0]
    if op == _CONST:
        return [ins[1]]
    if op in (_MOV, _UN, _NEWARR, _LEN):
        return [ins[1], ins[2]]
    if op in (_BIN, _ALOAD, _ASTORE):
        return [ins[1], ins[2], ins[3]]
    if op == _INTRIN:
        return [ins[1]] + list(ins[7])
    if op == _BR:
        return [ins[1]]
    if op in (_PRINT, _LWL, _SWL):
        return [ins[1]]
    return []


def verify_trace(fn_name: str, anchor: int, entries: List[tuple],
                 code_len: int, n_slots: int,
                 exit_pc: Optional[int] = None) -> None:
    """Validate a recorded trace before it is linked.

    The superblock representation never reaches the bytecode verifier
    (it is not bytecode), so this is its equivalent gate: every pc and
    guard abort target must be inside the function, every slot operand
    inside the frame, calls/returns must be absent, branch entries must
    carry a recorded direction, and the trace must close — back to its
    anchor for a loop trace, or to ``exit_pc`` for a tail trace.
    Raises :class:`TraceJITError` on violation.
    """
    def bad(msg: str) -> None:
        raise TraceJITError("trace %s+%d: %s" % (fn_name, anchor, msg))

    if not entries:
        bad("empty recording")
    if not 0 <= anchor < code_len:
        bad("anchor outside code of %d instructions" % code_len)
    if entries[0][0] != anchor:
        bad("first entry at pc %d, not the anchor" % entries[0][0])
    for i, (pc, ins, taken) in enumerate(entries):
        if not 0 <= pc < code_len:
            bad("entry %d at pc %d outside code" % (i, pc))
        op = ins[0]
        if op not in _TRACEABLE:
            bad("entry %d op %d may not appear in a trace" % (i, op))
        if op == _BR:
            if taken not in (True, False):
                bad("entry %d branch has no recorded direction" % i)
            for target in (ins[2], ins[3]):
                if not 0 <= target < code_len:
                    bad("entry %d branch target %d outside code"
                        % (i, target))
        elif op == _JMP:
            if not 0 <= ins[1] < code_len:
                bad("entry %d jump target %d outside code" % (i, ins[1]))
        elif taken is not None:
            bad("entry %d records a direction for a non-branch" % i)
        for slot in _slot_operands(ins):
            if op == _CALL:  # pragma: no cover - excluded above
                continue
            if not (isinstance(slot, int) and 0 <= slot < n_slots):
                bad("entry %d slot %r outside frame of %d slots"
                    % (i, slot, n_slots))
    closes_to = anchor if exit_pc is None else exit_pc
    last_pc, last_ins, last_taken = entries[-1]
    if last_ins[0] == _JMP:
        if last_ins[1] != closes_to:
            bad("final jump targets %d, not %d" % (last_ins[1],
                                                   closes_to))
    elif last_ins[0] == _BR:
        closing = last_ins[2] if last_taken else last_ins[3]
        if closing != closes_to:
            bad("final branch continues to %d, not %d" % (closing,
                                                          closes_to))
    else:
        bad("final entry is not a branch or jump")


# ---------------------------------------------------------------------------
# superblock code generation
# ---------------------------------------------------------------------------

_ARITH_SYMBOL = {int(BinOp.ADD): "+", int(BinOp.SUB): "-",
                 int(BinOp.MUL): "*"}
_CMP_SYMBOL = {int(BinOp.LT): "<", int(BinOp.LE): "<=",
               int(BinOp.GT): ">", int(BinOp.GE): ">=",
               int(BinOp.EQ): "==", int(BinOp.NE): "!="}
_INT_SYMBOL = {int(BinOp.AND): "&", int(BinOp.OR): "|",
               int(BinOp.XOR): "^", int(BinOp.SHL): "<<",
               int(BinOp.SHR): ">>"}


class _Emitter:
    """Builds the superblock source for one recorded trace."""

    def __init__(self, mode: str, fn_name: str, anchor: int,
                 entries: List[tuple], costs: List[int],
                 exit_pc: Optional[int] = None):
        self.mode = mode
        self.fn_name = fn_name
        self.anchor = anchor
        #: tail traces run their straightline once and exit here
        self.exit_pc = exit_pc
        self.entries = entries
        self.costs = [costs[pc] for pc, _ins, _taken in entries]
        self.consts: List = []
        self.lines: List[str] = []
        #: slot -> literal text, when the slot's latest write in this
        #: straightline was a small-int CONST; lets later operands read
        #: the literal instead of the slot (the slot write itself is
        #: still emitted, so deopt exits see canonical frame state)
        self._const_slots: Dict[int, str] = {}

    def _read(self, slot: int) -> str:
        lit = self._const_slots.get(slot)
        return lit if lit is not None else "slots[%d]" % slot

    def _wrote(self, slot: int) -> None:
        self._const_slots.pop(slot, None)

    def const(self, value) -> str:
        """Reference ``value`` from the hoisted constant pool.  Small
        ints inline as literals (faster and more readable)."""
        if isinstance(value, int) and not isinstance(value, bool) \
                and -2**31 < value < 2**31:
            return repr(value)
        self.consts.append(value)
        return "K[%d]" % (len(self.consts) - 1)

    def emit(self, line: str, depth: int = 3) -> None:
        self.lines.append("    " * depth + line)

    # -- exit helpers ----------------------------------------------------

    def _exit(self, pc: int, charged: int, ops: int) -> str:
        """An exit tuple charging ``charged`` cycles / ``ops``
        instructions of this iteration's prefix, resuming at ``pc``."""
        cyc = "cycles" if charged == 0 else "cycles + %d" % charged
        exe = "executed" if ops == 0 else "executed + %d" % ops
        return "return (%d, %s, %s)" % (pc, cyc, exe)

    def _guarded(self, stmt: str, pc: int, before: int, i: int,
                 depth: int = 3) -> None:
        """Emit ``stmt`` so that any exception deoptimizes *before* the
        instruction: the generic loop re-executes it and raises the
        canonical error with the canonical location."""
        self.emit("try:", depth)
        self.emit("    " + stmt, depth)
        self.emit("except Exception:", depth)
        self.emit("    " + self._exit(pc, before, i), depth)

    # -- traced-mode event plumbing --------------------------------------

    def _marker(self, call: str, pc: int, after: int, i: int) -> None:
        """Flush-then-notify for a loop marker, with a patch check:
        convergence callbacks may rewrite this very function."""
        self.emit("if buf:")
        self.emit("    on_mem_batch(buf)")
        self.emit("    buf.clear()")
        self.emit(call)
        self.emit("if not _valid[0]:")
        self.emit("    " + self._exit(pc + 1, after, i + 1))

    # -- per-op lowering -------------------------------------------------

    def lower(self, i: int, pc: int, ins: tuple, taken,
              before: int, after: int, last: bool) -> None:
        op = ins[0]
        traced = self.mode == MODE_TRACED
        if op == _BIN:
            sub = ins[4]
            dst = ins[1]
            lhs, rhs = self._read(ins[2]), self._read(ins[3])
            self._wrote(dst)
            sym = _ARITH_SYMBOL.get(sub)
            if sym is not None:
                self.emit("slots[%d] = %s %s %s" % (dst, lhs, sym, rhs))
                return
            sym = _CMP_SYMBOL.get(sub)
            if sym is not None:
                self.emit("slots[%d] = 1 if %s %s %s else 0"
                          % (dst, lhs, sym, rhs))
                return
            sym = _INT_SYMBOL.get(sub)
            if sym is not None:
                stmt = "slots[%d] = %s %s %s" % (dst, lhs, sym, rhs)
            elif sub == int(BinOp.DIV):
                stmt = "slots[%d] = java_div(%s, %s)" % (dst, lhs, rhs)
            elif sub == int(BinOp.MOD):
                stmt = "slots[%d] = java_mod(%s, %s)" % (dst, lhs, rhs)
            else:
                stmt = "slots[%d] = apply_binop(%d, %s, %s)" \
                    % (dst, sub, lhs, rhs)
            self._guarded(stmt, pc, before, i)
        elif op == _CONST:
            text = self.const(ins[5])
            self.emit("slots[%d] = %s" % (ins[1], text))
            if text.lstrip("-").isdigit():
                self._const_slots[ins[1]] = text
            else:
                self._wrote(ins[1])
        elif op == _MOV:
            src = self._read(ins[2])
            self.emit("slots[%d] = %s" % (ins[1], src))
            if src.lstrip("-").isdigit():
                self._const_slots[ins[1]] = src
            else:
                self._wrote(ins[1])
        elif op == _BR:
            ref = self._read(ins[1])
            cond = "not " + ref if taken else ref
            off = ins[3] if taken else ins[2]
            self.emit("if %s:" % cond)
            self.emit("    " + self._exit(off, after, i + 1))
        elif op == _JMP:
            pass  # cost-only inside a trace; control flow is implicit
        elif op == _ALOAD:
            handle, index = self._read(ins[2]), self._read(ins[3])
            self._wrote(ins[1])
            if traced:
                self._guarded(
                    "slots[%d], _a = heap_load_addr(%s, %s)"
                    % (ins[1], handle, index), pc, before, i)
                self.emit("buf_append((\"ld\", _a, cycles + %d, %s, %d))"
                          % (after, self.const(self.fn_name), pc))
            else:
                self._guarded("slots[%d] = heap_load(%s, %s)"
                              % (ins[1], handle, index), pc, before, i)
        elif op == _ASTORE:
            handle, index = self._read(ins[1]), self._read(ins[2])
            value = self._read(ins[3])
            if traced:
                self._guarded("_a = heap_store_addr(%s, %s, %s)"
                              % (handle, index, value), pc, before, i)
                self.emit("buf_append((\"st\", _a, cycles + %d, %s, %d))"
                          % (after, self.const(self.fn_name), pc))
            else:
                self._guarded("heap_store(%s, %s, %s)"
                              % (handle, index, value), pc, before, i)
        elif op == _UN:
            sub = ins[4]
            dst = ins[1]
            src = self._read(ins[2])
            self._wrote(dst)
            from repro.bytecode.opcodes import UnOp
            if sub == int(UnOp.NEG):
                self.emit("slots[%d] = -%s" % (dst, src))
            elif sub == int(UnOp.NOT):
                self.emit("slots[%d] = 0 if %s else 1" % (dst, src))
            elif sub == int(UnOp.INV):
                self._guarded("slots[%d] = ~%s" % (dst, src),
                              pc, before, i)
            elif sub == int(UnOp.I2F):
                self._guarded("slots[%d] = float(%s)" % (dst, src),
                              pc, before, i)
            elif sub == int(UnOp.F2I):
                self._guarded("slots[%d] = int(%s)" % (dst, src),
                              pc, before, i)
            else:
                self._guarded("slots[%d] = apply_unop(%d, %s)"
                              % (dst, sub, src), pc, before, i)
        elif op == _NEWARR:
            length = self._read(ins[2])
            self._wrote(ins[1])
            self._guarded("slots[%d] = heap_allocate(%s)"
                          % (ins[1], length), pc, before, i)
        elif op == _LEN:
            handle = self._read(ins[2])
            self._wrote(ins[1])
            self._guarded("slots[%d] = heap_length(%s)"
                          % (ins[1], handle), pc, before, i)
        elif op == _INTRIN:
            args = ", ".join(self._read(s) for s in ins[7])
            self._wrote(ins[1])
            self._guarded("slots[%d] = apply_intrinsic(%s, [%s])"
                          % (ins[1], self.const(ins[6]), args),
                          pc, before, i)
        elif op == _PRINT:
            self.emit("printed.append(%s)" % self._read(ins[1]))
        elif op == _LWL:
            if traced:
                self.emit("buf_append((\"lld\", frame_id, %d, "
                          "cycles + %d, %s, %d))"
                          % (ins[1], after, self.const(self.fn_name), pc))
        elif op == _SWL:
            if traced:
                self.emit("buf_append((\"lst\", frame_id, %d, "
                          "cycles + %d, %s, %d))"
                          % (ins[1], after, self.const(self.fn_name), pc))
        elif op == _SLOOP:
            if traced:
                self._marker("on_sloop(%d, %d, cycles + %d, frame_id)"
                             % (ins[1], ins[2], after), pc, after, i)
        elif op == _EOI:
            if traced:
                self._marker("on_eoi(%d, cycles + %d)" % (ins[1], after),
                             pc, after, i)
        elif op == _ELOOP:
            if traced:
                self._marker("on_eloop(%d, cycles + %d)"
                             % (ins[1], after), pc, after, i)
        elif op == _READSTATS:
            if traced:
                self._marker("on_readstats(%d, cycles + %d)"
                             % (ins[1], after), pc, after, i)
        # NOP and fast-mode annotations: cost-only, no code

    # -- assembly --------------------------------------------------------

    def build(self) -> Tuple[str, List]:
        n = len(self.entries)
        total = sum(self.costs)
        lines = self.lines
        lines.append("def _factory(K, java_div, java_mod, apply_binop, "
                     "apply_unop, apply_intrinsic):")
        if self.mode == MODE_TRACED:
            lines.append("    def _superblock(slots, cycles, executed, "
                         "frame_id, env):")
            lines.append("        (limit, heap_load_addr, "
                         "heap_store_addr, heap_allocate, heap_length,")
            lines.append("         printed, buf, buf_append, "
                         "on_mem_batch, on_sloop, on_eoi, on_eloop,")
            lines.append("         on_readstats) = env")
        else:
            lines.append("    def _superblock(slots, cycles, executed, "
                         "env):")
            lines.append("        (limit, heap_load, heap_store, "
                         "heap_allocate, heap_length, printed) = env")
        lines.append("        while True:")
        lines.append("            if executed + %d > limit:" % n)
        lines.append("                " + self._exit(self.anchor, 0, 0))
        prefix = 0
        for i, (pc, ins, taken) in enumerate(self.entries):
            before = prefix
            after = prefix + self.costs[i]
            self.lower(i, pc, ins, taken, before, after,
                       last=(i == n - 1))
            prefix = after
        lines.append("            cycles += %d" % total)
        lines.append("            executed += %d" % n)
        if self.exit_pc is not None:
            # tail trace: one straightline pass, then hand the backedge
            # target back to the trace point for chaining.  Everything
            # is committed at this point, so no validity check is
            # needed after the flush — we exit either way
            if self.mode == MODE_TRACED:
                lines.append("            if len(buf) >= %d:" % FLUSH_AT)
                lines.append("                on_mem_batch(buf)")
                lines.append("                buf.clear()")
            lines.append("            return (%d, cycles, executed)"
                         % self.exit_pc)
        elif self.mode == MODE_TRACED:
            # one flush check per iteration instead of one per event:
            # batch boundaries are not observable (each event carries
            # its exact cycle), only marker ordering is, and markers
            # flush synchronously above
            lines.append("            if len(buf) >= %d:" % FLUSH_AT)
            lines.append("                on_mem_batch(buf)")
            lines.append("                buf.clear()")
            lines.append("                if not _valid[0]:")
            lines.append("                    "
                         + self._exit(self.anchor, 0, 0))
        lines.append("    return _superblock")
        return "\n".join(lines) + "\n", self.consts


def link_trace(jit: TraceJIT, mode: str, fn_name: str, anchor: int,
               entries: List[tuple], costs: List[int],
               n_slots: int, code_len: int,
               exit_pc: Optional[int] = None) -> LinkedTrace:
    """Verify a recording, compile its superblock, register the trace."""
    from repro.runtime.values import (
        apply_binop,
        apply_intrinsic,
        apply_unop,
        java_div,
        java_mod,
    )
    verify_trace(fn_name, anchor, entries, code_len, n_slots, exit_pc)
    emitter = _Emitter(mode, fn_name, anchor, entries, costs, exit_pc)
    source, consts = emitter.build()
    valid = [True]
    namespace: Dict = {"_valid": valid}
    code = compile(source, "<trace %s+%d %s>" % (fn_name, anchor, mode),
                   "exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    fn = namespace["_factory"](tuple(consts), java_div, java_mod,
                               apply_binop, apply_unop, apply_intrinsic)
    trace = LinkedTrace(fn, len(entries), anchor, fn_name, mode,
                        frozenset(pc for pc, _ins, _t in entries), valid,
                        exit_pc)
    jit._all.append(trace)
    jit.linked += 1
    return trace


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------

def record_and_link(jit: TraceJIT, mode: str, fn_name: str, anchor: int,
                    code: List[tuple], costs: List[int], n_slots: int,
                    slots: List, heap, printed: List,
                    cycles: int, executed: int, limit: int,
                    listener=None, buf: Optional[List] = None,
                    frame_id: int = -1,
                    tail: bool = False) -> Tuple[int, int, int]:
    """Execute from ``anchor`` with full interpreter semantics while
    recording the path taken; link a superblock if the trace closes.

    A loop trace (``tail=False``) closes when control returns to the
    anchor; a tail trace (``tail=True``) closes at the *first* taken
    backedge, wherever it leads — the straightline from a hot side
    exit back to some loop header.

    Returns ``(pc, cycles, executed)`` for the interpreter to resume
    from — the recorder *is* execution, so all side effects (heap,
    printed output, published events) are real whether or not the
    recording succeeds.  Failure modes update the anchor state:
    blacklisted (``None``) for structural failures, re-armed countdown
    for a mid-recording code patch.
    """
    from repro.runtime.values import (
        apply_binop,
        apply_intrinsic,
        apply_unop,
    )
    from repro.errors import HeapError

    jit.recordings += 1
    state = jit.state_for(fn_name, mode + ":tail" if tail else mode,
                          len(code))
    epoch0 = jit.epoch[0]
    traced = mode == MODE_TRACED
    entries: List[tuple] = []
    max_ops = jit.max_ops

    heap_load = heap.load
    heap_store = heap.store
    heap_address = heap.address
    if traced:
        on_mem_batch = listener.on_mem_batch
        buf_append = buf.append

    pc = anchor
    while True:
        ins = code[pc]
        op = ins[0]
        if op == _CALL or op == _RET or len(entries) >= max_ops:
            # structural stop before executing: the generic loop takes
            # over at this pc, and the anchor never records again
            jit.blacklist(state, anchor)
            jit.recordings_aborted += 1
            return pc, cycles, executed
        cycles += costs[pc]
        executed += 1
        if executed > limit:
            raise ExecutionError(
                "instruction budget exceeded (%d)" % limit, pc, fn_name)
        taken = None
        npc = pc + 1
        if op == _BIN:
            try:
                slots[ins[1]] = apply_binop(
                    ins[4], slots[ins[2]], slots[ins[3]])
            except ExecutionError as exc:
                raise ExecutionError(str(exc), pc, fn_name) from None
        elif op == _CONST:
            slots[ins[1]] = ins[5]
        elif op == _MOV:
            slots[ins[1]] = slots[ins[2]]
        elif op == _BR:
            taken = bool(slots[ins[1]])
            npc = ins[2] if taken else ins[3]
        elif op == _JMP:
            npc = ins[1]
        elif op == _ALOAD:
            try:
                slots[ins[1]] = heap_load(slots[ins[2]], slots[ins[3]])
            except HeapError as exc:
                raise ExecutionError(str(exc), pc, fn_name) from None
            if traced:
                buf_append(("ld",
                            heap_address(slots[ins[2]], slots[ins[3]]),
                            cycles, fn_name, pc))
                if len(buf) >= FLUSH_AT:
                    on_mem_batch(buf)
                    buf.clear()
        elif op == _ASTORE:
            try:
                heap_store(slots[ins[1]], slots[ins[2]], slots[ins[3]])
            except HeapError as exc:
                raise ExecutionError(str(exc), pc, fn_name) from None
            if traced:
                buf_append(("st",
                            heap_address(slots[ins[1]], slots[ins[2]]),
                            cycles, fn_name, pc))
                if len(buf) >= FLUSH_AT:
                    on_mem_batch(buf)
                    buf.clear()
        elif op == _UN:
            try:
                slots[ins[1]] = apply_unop(ins[4], slots[ins[2]])
            except ExecutionError as exc:
                raise ExecutionError(str(exc), pc, fn_name) from None
        elif op == _NEWARR:
            try:
                slots[ins[1]] = heap.allocate(slots[ins[2]])
            except HeapError as exc:
                raise ExecutionError(str(exc), pc, fn_name) from None
        elif op == _LEN:
            try:
                slots[ins[1]] = heap.length(slots[ins[2]])
            except HeapError as exc:
                raise ExecutionError(str(exc), pc, fn_name) from None
        elif op == _INTRIN:
            try:
                slots[ins[1]] = apply_intrinsic(
                    ins[6], [slots[s] for s in ins[7]])
            except ExecutionError as exc:
                raise ExecutionError(str(exc), pc, fn_name) from None
        elif op == _PRINT:
            printed.append(slots[ins[1]])
        elif traced and op == _LWL:
            buf_append(("lld", frame_id, ins[1], cycles, fn_name, pc))
            if len(buf) >= FLUSH_AT:
                on_mem_batch(buf)
                buf.clear()
        elif traced and op == _SWL:
            buf_append(("lst", frame_id, ins[1], cycles, fn_name, pc))
            if len(buf) >= FLUSH_AT:
                on_mem_batch(buf)
                buf.clear()
        elif traced and op == _SLOOP:
            if buf:
                on_mem_batch(buf)
                buf.clear()
            listener.on_sloop(ins[1], ins[2], cycles, frame_id)
        elif traced and op == _EOI:
            if buf:
                on_mem_batch(buf)
                buf.clear()
            listener.on_eoi(ins[1], cycles)
        elif traced and op == _ELOOP:
            if buf:
                on_mem_batch(buf)
                buf.clear()
            listener.on_eloop(ins[1], cycles)
        elif traced and op == _READSTATS:
            if buf:
                on_mem_batch(buf)
                buf.clear()
            listener.on_readstats(ins[1], cycles)
        elif op == _NOP or op >= _SLOOP:
            pass  # fast mode: annotations are pure cost
        else:  # pragma: no cover - exhaustive
            raise ExecutionError("unknown opcode %r" % op, pc, fn_name)

        entries.append((pc, ins, taken))
        if traced and jit.epoch[0] != epoch0:
            # a convergence callback patched this function while we
            # were recording: the captured instructions and costs are
            # stale — abandon and re-warm the anchor
            state[anchor] = jit.threshold
            jit.recordings_aborted += 1
            return npc, cycles, executed
        if op == _BR or op == _JMP:
            if tail:
                if npc <= pc:
                    break  # first taken backedge: the tail is complete
            elif npc == anchor:
                break  # the loop closed: a complete linear trace
            elif npc <= pc:
                # a backedge belonging to a different anchor.  Usually
                # the recording just started on an entry's final
                # iteration and ran off the loop exit into surrounding
                # code — re-warm and retry; an anchor that hits a
                # foreign backedge on every attempt (a genuinely outer
                # loop) exhausts its budget and blacklists
                jit.recordings_aborted += 1
                key = (fn_name, mode, anchor)
                attempts = jit._attempts.get(key, 0) + 1
                if attempts >= MAX_RECORD_ATTEMPTS:
                    jit.blacklist(state, anchor)
                else:
                    jit._attempts[key] = attempts
                    # re-warm with a phase shift: a loop with a fixed
                    # trip count revisits its anchor a fixed number of
                    # times per entry, so an unchanged countdown would
                    # re-trigger recording on the same (final)
                    # iteration of a later entry forever
                    state[anchor] = jit.threshold + attempts
                return npc, cycles, executed
        pc = npc

    exit_pc = npc if tail else None
    try:
        state[anchor] = link_trace(jit, mode, fn_name, anchor, entries,
                                   costs, n_slots, len(code), exit_pc)
    except TraceJITError:
        jit.blacklist(state, anchor)
    return (anchor if exit_pc is None else exit_pc), cycles, executed
