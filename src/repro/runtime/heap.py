"""Heap model: 1-D numeric arrays at stable byte addresses.

The TEST analyses key on byte addresses (cache-line tags and indices are
extracted from them, exactly as in the paper's Figure 4), so arrays are
laid out in a flat address space: 4 bytes per element, bases aligned to
the 32-byte cache-line size.  Element ``i`` of the array with handle
``h`` lives at address ``h + 4 * i``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import HeapError

#: Bytes per array element (the paper's substrate is a 32-bit MIPS).
WORD_SIZE = 4

#: Cache-line size in bytes (Table 1: 32 B lines).
LINE_SIZE = 32

#: First address handed out; non-zero so handle 0 is always invalid.
_BASE_ADDRESS = 0x10000


class Heap:
    """Allocates arrays and services loads/stores by handle + index."""

    def __init__(self):
        self._arrays: Dict[int, List] = {}
        self._next = _BASE_ADDRESS

    def allocate(self, length) -> int:
        """Allocate a zero-filled array of ``length`` elements."""
        if isinstance(length, float):
            raise HeapError("array length must be an int, got %r" % length)
        if length < 0:
            raise HeapError("negative array length %d" % length)
        handle = self._next
        self._arrays[handle] = [0] * length
        size = max(length, 1) * WORD_SIZE
        # keep bases line-aligned so line indices are well distributed
        size = ((size + LINE_SIZE - 1) // LINE_SIZE) * LINE_SIZE
        self._next += size
        return handle

    def _array(self, handle) -> List:
        arr = self._arrays.get(handle)
        if arr is None:
            raise HeapError("invalid array handle %r" % handle)
        return arr

    def load(self, handle, index):
        """Read element ``index``; returns the value."""
        arr = self._array(handle)
        if isinstance(index, float):
            index = int(index)
        if not 0 <= index < len(arr):
            raise HeapError(
                "index %d out of range [0,%d)" % (index, len(arr)))
        return arr[index]

    def store(self, handle, index, value) -> None:
        """Write element ``index``."""
        arr = self._array(handle)
        if isinstance(index, float):
            index = int(index)
        if not 0 <= index < len(arr):
            raise HeapError(
                "index %d out of range [0,%d)" % (index, len(arr)))
        arr[index] = value

    def load_addr(self, handle, index):
        """Read element ``index``; returns ``(value, byte_address)``.

        One call where the traced paths would otherwise pay
        :meth:`load` plus :meth:`address` per event.
        """
        arr = self._array(handle)
        if isinstance(index, float):
            index = int(index)
        if not 0 <= index < len(arr):
            raise HeapError(
                "index %d out of range [0,%d)" % (index, len(arr)))
        return arr[index], handle + WORD_SIZE * index

    def store_addr(self, handle, index, value) -> int:
        """Write element ``index``; returns its byte address."""
        arr = self._array(handle)
        if isinstance(index, float):
            index = int(index)
        if not 0 <= index < len(arr):
            raise HeapError(
                "index %d out of range [0,%d)" % (index, len(arr)))
        arr[index] = value
        return handle + WORD_SIZE * index

    def length(self, handle) -> int:
        """Element count of the array."""
        return len(self._array(handle))

    def address(self, handle, index) -> int:
        """Byte address of element ``index`` (no bounds check)."""
        return handle + WORD_SIZE * int(index)

    def snapshot(self) -> Dict[int, List]:
        """Copy of all arrays, for result comparisons in tests."""
        return {h: list(a) for h, a in self._arrays.items()}

    @property
    def allocated_arrays(self) -> int:
        """Number of live arrays."""
        return len(self._arrays)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes of address space handed out."""
        return self._next - _BASE_ADDRESS


def line_of(address: int) -> int:
    """Cache-line number of a byte address."""
    return address // LINE_SIZE
