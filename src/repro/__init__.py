"""Reproduction of "TEST: A Tracer for Extracting Speculative Threads"
(Chen & Olukotun, CGO 2003).

The package implements the paper's full system and its substrates:

* :mod:`repro.lang` — the minijava front-end workloads are written in;
* :mod:`repro.bytecode` — the register bytecode ISA;
* :mod:`repro.cfg` — CFGs, natural loops, STL candidates (Section 4.1);
* :mod:`repro.jit` — the annotating/optimizing/speculative microJIT;
* :mod:`repro.runtime` — the cycle-cost interpreter (one Hydra core);
* :mod:`repro.hydra` — the Hydra CMP machine model (Tables 1, 2, 5);
* :mod:`repro.tracer` — **TEST itself** (Sections 4-5);
* :mod:`repro.tls` — the trace-driven TLS timing simulator;
* :mod:`repro.jrpm` — the end-to-end pipeline (Figure 1) and CLI;
* :mod:`repro.workloads` — the paper's 26 benchmarks (Table 6);
* :mod:`repro.fuzz` — random-program generation for differential tests.

Quick start::

    from repro import run_pipeline, render_summary
    report = run_pipeline(source_text, name="demo")
    print(render_summary(report))

See README.md for the architecture overview, DESIGN.md for the
paper-to-module map, and EXPERIMENTS.md for the reproduction ledger.
"""

from repro.jrpm.pipeline import Jrpm, JrpmReport, run_pipeline
from repro.jrpm.report import render_summary
from repro.lang.codegen import compile_source
from repro.runtime.interpreter import run_program

__version__ = "1.0.0"

__all__ = [
    "Jrpm",
    "JrpmReport",
    "compile_source",
    "render_summary",
    "run_pipeline",
    "run_program",
    "__version__",
]
