"""Execution-model interface and registry.

The paper's Jrpm pipeline targets exactly one execution model — Hydra
TLS — so the selector's Eq. 2 nest comparison only ever asks "speculate
here or not".  This module generalizes that choice: a
:class:`SpeculationModel` packages a per-loop analytic *estimate* (the
Eq. 1 role) and a trace-driven *simulate* (the Hydra-simulator role)
behind one interface, and the selector runs an argmax over every
registered model so each loop independently picks the backend that the
estimates say will win.

Models register themselves in a process-global ordered registry.  Order
matters twice: it is the tie-break for equal estimates (earlier
registration wins) and the display order everywhere models are listed.
The canonical order is ``sequential``, ``hydra-tls``, ``doacross`` —
see :mod:`repro.models`.
"""

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple, Union

# The model the legacy (single-backend) pipeline is equivalent to.
DEFAULT_MODEL = "hydra-tls"


class SpeculationModel:
    """One execution backend the selector can assign a loop to.

    Subclasses provide:

    ``name``
        Registry key, also the value stored in selection rows and
        reports.

    ``description``
        One line for ``jrpm models`` output.

    ``estimate(stats, config)``
        Analytic speedup prediction from tracer statistics alone
        (the Eq. 1 role).  Must return an object with at least the
        :class:`repro.tracer.estimator.SpeedupEstimate` attributes
        ``loop_id``, ``speedup``, ``base_speedup``, ``spec_time``,
        ``orig_time`` and ``overflow_freq`` — report code and the
        conformance oracle consume estimates polymorphically.

    ``simulate(compilation, entries, config, engine=None)``
        Cycle-level replay of the recorded entries under this model.
        Must return a :class:`repro.tls.simulator.TLSResult` (or a
        subclass) so ``ProgramTLSOutcome`` and the invariant checks
        apply unchanged.  ``engine`` is the columnar
        :class:`repro.tls.engine.TraceEngine` when one is active;
        models may use its memoized kernels or ignore it.
    """

    name = ""
    description = ""

    def estimate(self, stats, config):
        raise NotImplementedError

    def simulate(self, compilation, entries, config, engine=None):
        raise NotImplementedError

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


_REGISTRY = OrderedDict()  # type: Dict[str, SpeculationModel]


def register_model(model, replace=False):
    """Add *model* to the registry; re-registration needs ``replace``."""
    if not model.name:
        raise ValueError("model must have a non-empty name")
    if model.name in _REGISTRY and not replace:
        raise ValueError("model %r already registered" % model.name)
    _REGISTRY[model.name] = model
    return model


def get_model(name):
    # type: (str) -> SpeculationModel
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown execution model %r (registered: %s)"
            % (name, ", ".join(_REGISTRY) or "none")
        )


def model_names():
    # type: () -> List[str]
    """Registered model names, in registration (priority) order."""
    return list(_REGISTRY)


def resolve_models(spec):
    # type: (Union[None, bool, str, Iterable[str]]) -> Optional[Tuple[str, ...]]
    """Normalize a user-facing model spec to a tuple of registered names.

    ``None``/``False`` → ``None`` (legacy single-backend behaviour);
    ``True`` or ``"all"`` → every registered model; a comma-separated
    string or iterable of names → that list, validated and de-duplicated
    with order preserved.  Unknown names raise ``KeyError``.
    """
    if spec is None or spec is False:
        return None
    if spec is True or spec == "all":
        return tuple(model_names())
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = list(spec)
    if not names:
        return None
    seen = []
    for name in names:
        get_model(name)  # raises on unknown names
        if name not in seen:
            seen.append(name)
    return tuple(seen)
