"""The paper's execution model, wrapped as a pluggable backend.

Delegates to the existing Eq. 1 estimator and the Hydra TLS trace
simulator unchanged, so a run with models enabled produces exactly the
numbers a legacy run produces for every loop that picks ``hydra-tls``.
"""

from repro.hydra.config import DEFAULT_HYDRA
from repro.tls.simulator import simulate_stl
from repro.tracer.estimator import estimate_speedup

from repro.models.base import SpeculationModel


class HydraTLSModel(SpeculationModel):
    name = "hydra-tls"
    description = ("Hydra speculative thread-level speculation "
                   "(the paper's backend)")

    def estimate(self, stats, config=DEFAULT_HYDRA):
        return estimate_speedup(stats, config)

    def simulate(self, compilation, entries, config=DEFAULT_HYDRA,
                 engine=None):
        return simulate_stl(compilation, entries, config, engine=engine)
