"""Last-value/stride predictor for DOACROSS loop live-ins.

Prophet-style value prediction breaks the post/wait serialization of a
DOACROSS loop: when the consumer iteration can predict the value a
live-in will take, it starts immediately instead of waiting for the
producer's post, and only a misprediction pays a restart.

The tracer records timing events, not data values, so we predict the
deterministic trace-visible proxy for a regular recurrence: the
*relative cycle at which the producer iteration stores the live-in*.
An induction-like update (``i += step`` compiled to the same code every
iteration) stores at a stable per-iteration offset; its store-offset
sequence is constant or strided, exactly the pattern a last-value/stride
predictor captures.  An irregular live-in (stored from data-dependent
paths) jitters the offset and the predictor loses confidence — the same
loops where real value prediction fails.

Training happens at *produce* time: when iteration ``i`` stores a local
live-in, :meth:`observe` first grades the prediction that was
outstanding for that store (made from history strictly before it), then
folds the new observation in.  Consumers query :meth:`consume`, which
reports how the most recent store of an address was covered:
``"hit"`` (confident prediction, correct — no wait), ``"miss"``
(confident prediction, wrong — restart penalty), or ``None`` (no
prediction attempted — fall back to post/wait).  Because the producer
always publishes before its consumers are scheduled, grading at
produce time is deterministic and causally sound.
"""


class LiveInPredictor:
    """Per-address last-value/stride table over producer-store offsets."""

    # Consecutive same-stride observations required before the
    # predictor commits to a prediction for the next store.
    CONFIDENCE_THRESHOLD = 2

    __slots__ = ("_table", "trains", "predictions", "hits")

    def __init__(self):
        # addr -> [last_rel, stride, streak, outcome]; outcome is the
        # coverage of the most recent store: "hit", "miss", or None.
        self._table = {}
        self.trains = 0
        self.predictions = 0
        self.hits = 0

    @property
    def mispredictions(self):
        return self.predictions - self.hits

    @property
    def hit_rate(self):
        if self.predictions == 0:
            return 0.0
        return self.hits / self.predictions

    def observe(self, addr, rel):
        """Train on a producer store of *addr* at relative cycle *rel*.

        Grades the outstanding prediction for this store (if the table
        was confident) before updating the stride history.
        """
        self.trains += 1
        entry = self._table.get(addr)
        if entry is None:
            self._table[addr] = [rel, None, 0, None]
            return
        last_rel, stride, streak, _ = entry
        new_stride = rel - last_rel
        if stride is None:
            entry[0] = rel
            entry[1] = new_stride
            entry[2] = 1
            entry[3] = None
            return
        correct = new_stride == stride
        if streak >= self.CONFIDENCE_THRESHOLD:
            self.predictions += 1
            if correct:
                self.hits += 1
                entry[3] = "hit"
            else:
                entry[3] = "miss"
        else:
            entry[3] = None
        if correct:
            entry[0] = rel
            entry[2] = streak + 1
        else:
            entry[0] = rel
            entry[1] = new_stride
            entry[2] = 1

    def consume(self, addr):
        """How the latest store of *addr* was covered.

        Returns ``"hit"``, ``"miss"``, or ``None`` (no prediction was
        attempted, or the address was never stored).
        """
        entry = self._table.get(addr)
        if entry is None:
            return None
        return entry[3]
