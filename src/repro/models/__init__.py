"""Pluggable execution models for the Jrpm pipeline.

The registry is populated at import time in canonical priority order —
``sequential``, ``hydra-tls``, ``doacross`` — which is also the
argmax tie-break order in the selector (earlier wins on equal
estimates, so the paper's backend keeps a loop when DOACROSS merely
ties it).
"""

from repro.models.base import (
    DEFAULT_MODEL,
    SpeculationModel,
    get_model,
    model_names,
    register_model,
    resolve_models,
)
from repro.models.doacross import (
    DoacrossEstimate,
    DoacrossModel,
    DoacrossResult,
    DoacrossSimulator,
    estimate_doacross,
    simulate_doacross,
)
from repro.models.hydra_tls import HydraTLSModel
from repro.models.predictor import LiveInPredictor
from repro.models.sequential import SequentialModel

register_model(SequentialModel())
register_model(HydraTLSModel())
register_model(DoacrossModel())

__all__ = [
    "DEFAULT_MODEL",
    "SpeculationModel",
    "get_model",
    "model_names",
    "register_model",
    "resolve_models",
    "SequentialModel",
    "HydraTLSModel",
    "DoacrossModel",
    "DoacrossEstimate",
    "DoacrossResult",
    "DoacrossSimulator",
    "estimate_doacross",
    "simulate_doacross",
    "LiveInPredictor",
]
