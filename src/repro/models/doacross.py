"""Speculative DOACROSS: synchronized cross-iteration scheduling with
live-in value prediction.

Where Hydra TLS runs iterations fully speculatively — buffering state,
detecting RAW violations after the fact, and restarting — a DOACROSS
schedule (Salamanca et al., PAPERS.md) makes every observed
cross-iteration dependence an explicit post/wait arc: the consumer
iteration *waits* for the producer's store plus the store-load
communication latency, and commits non-speculatively.  The structural
consequences drive the cost model:

* **No overflow stalls.**  Iterations commit as they go, so there is no
  speculative buffer to overflow — the term that serializes
  high-footprint loops under TLS simply disappears.  This is the lever
  that lets DOACROSS win loops whose TLS estimate collapses under
  ``overflow_freq``.
* **Every arc pays.**  TLS only loses cycles on arcs that actually
  violate; post/wait synchronizes *every* dependence, violated or not.
  Arc-free loops therefore never prefer DOACROSS.
* **Prediction breaks the chain.**  A Prophet-style last-value/stride
  predictor (:mod:`repro.models.predictor`) covers regular local
  live-ins; a confident, correct prediction skips the wait entirely,
  while a misprediction waits for the real value *and* pays the
  violation-restart penalty on top.

The analytic estimate (:func:`estimate_doacross`) mirrors Eq. 1's shape
— arc-frequency-weighted inter-thread separation plus Table 2 overheads
— and the trace simulator (:class:`DoacrossSimulator`) mirrors the TLS
simulator's in-order round-robin dispatch, so the predicted-vs-actual
error of this model is directly comparable to hydra-tls's in the
conformance oracle and in ``benchmarks/bench_models.py``.
"""

from typing import Dict, Tuple

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.tls.simulator import (
    EntryResult,
    TLSResult,
    elimination_key,
    prepare_thread,
    prepare_view,
)
from repro.tls.thread_trace import ThreadView

from repro.models.base import SpeculationModel
from repro.models.predictor import LiveInPredictor

DOACROSS_MODEL_NAME = "doacross"

#: Analytic stand-in for the live-in predictor's expected coverage of
#: regular local arcs — the fraction of predictable post/wait arcs the
#: estimate assumes are broken.  The simulator measures the real rate;
#: the gap between the two is part of the per-model conformance error.
PREDICTOR_COVERAGE = 0.75


class DoacrossEstimate:
    """Analytic DOACROSS speedup, interface-compatible with
    :class:`repro.tracer.estimator.SpeedupEstimate`."""

    #: DOACROSS commits non-speculatively; nothing can overflow.
    overflow_freq = 0.0

    def __init__(self, loop_id, speedup, base_speedup, spec_time,
                 orig_time, predicted_arc_share):
        self.loop_id = loop_id
        self.speedup = speedup
        self.base_speedup = base_speedup
        self.spec_time = spec_time
        self.orig_time = orig_time
        #: fraction of critical arcs the live-in predictor is assumed
        #: to cover (hit) in this estimate
        self.predicted_arc_share = predicted_arc_share

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<DoacrossEstimate L%d %.2fx (base %.2fx, pred %.2f)>" % (
            self.loop_id, self.speedup, self.base_speedup,
            self.predicted_arc_share)


def estimate_doacross(stats, config=DEFAULT_HYDRA):
    # type: (..., HydraConfig) -> DoacrossEstimate
    """Eq. 1-shaped analytic estimate for the DOACROSS schedule."""
    orig_time = stats.cycles
    if stats.threads == 0 or stats.profiled_threads == 0 \
            or orig_time <= 0:
        return DoacrossEstimate(stats.loop_id, 1.0, 1.0,
                                float(orig_time), orig_time, 0.0)

    p = config.n_cpus
    comm = config.store_load_comm_overhead
    t_size = stats.avg_thread_size
    f_prev = min(1.0, stats.arc_freq_prev)
    f_earl = min(1.0 - f_prev, stats.arc_freq_earlier)
    arc_rate = f_prev + f_earl

    # Predictor coverage: the share of arcs that are local (live-in)
    # recurrences, scaled by the assumed hit rate.  Covered arcs skip
    # the wait; the missed remainder of attempted predictions pays the
    # restart penalty on top of the wait.
    local_share = 0.0
    if arc_rate > 0:
        local_share = min(1.0, stats.local_arc_freq / arc_rate)
    covered = local_share * PREDICTOR_COVERAGE
    missed = local_share * (1.0 - PREDICTOR_COVERAGE)

    # Inter-thread separation forced by a post/wait arc: the consumer
    # cannot start before (producer start + store offset + comm -
    # load offset); averaged over arcs this is T - A + comm for the
    # previous-thread bin and its span-2 analogue for the earlier bin.
    # CPU reuse bounds separation below by T/p regardless.
    floor = t_size / p if t_size > 0 else 0.0
    s_prev = max(floor, t_size - stats.avg_arc_len_prev + comm)
    s_earl = max(floor, (2.0 * t_size - stats.avg_arc_len_earlier) / 2.0
                 + comm)

    f_prev_eff = f_prev * (1.0 - covered)
    f_earl_eff = f_earl * (1.0 - covered)
    f_none = max(0.0, 1.0 - f_prev_eff - f_earl_eff)
    sep = f_prev_eff * s_prev + f_earl_eff * s_earl + f_none * floor
    if t_size > 0 and sep > 0:
        base = max(1.0, min(float(p), t_size / sep))
    else:
        base = float(p)
    iters = stats.avg_iters_per_entry
    if 0 < iters < p:
        base = min(base, max(1.0, iters))

    entry_overhead = (config.startup_overhead
                      + config.shutdown_overhead) * stats.entries
    thread_overhead = config.eoi_overhead * stats.threads
    # every uncovered arc waits for a post (communication latency);
    # every attempted-but-missed prediction restarts on top of it
    sync_overhead = comm * arc_rate * (1.0 - covered) * stats.threads
    miss_overhead = (config.violation_restart_overhead
                     * arc_rate * missed * stats.threads)

    spec_time = (entry_overhead + thread_overhead + sync_overhead
                 + miss_overhead + orig_time / base)
    speedup = orig_time / spec_time if spec_time > 0 else 1.0
    speedup = min(float(p), speedup)
    return DoacrossEstimate(stats.loop_id, speedup, base, spec_time,
                            orig_time, covered * arc_rate)


class DoacrossResult(TLSResult):
    """TLS-shaped aggregate with post/wait and predictor accounting.

    ``violations`` counts live-in mispredictions (each charges the
    restart penalty, the DOACROSS analogue of a TLS violation);
    ``overflows`` is structurally zero.
    """

    model = DOACROSS_MODEL_NAME

    def __init__(self, loop_id):
        TLSResult.__init__(self, loop_id)
        #: post/wait synchronizations honoured (waits actually taken)
        self.posts = 0
        #: confident live-in predictions consumed by a waiter
        self.predictions = 0
        #: of those, predictions that were correct (wait skipped)
        self.predicted_hits = 0

    @property
    def prediction_hit_rate(self):
        if self.predictions == 0:
            return 0.0
        return self.predicted_hits / self.predictions

    def __repr__(self):  # pragma: no cover - debugging aid
        return ("<DoacrossResult L%d %.2fx posts=%d pred=%d/%d>"
                % (self.loop_id, self.speedup, self.posts,
                   self.predicted_hits, self.predictions))


class DoacrossSimulator:
    """Schedules one STL's thread traces under post/wait DOACROSS.

    Mirrors :class:`repro.tls.simulator.TLSSimulator`'s dispatch (in
    sequential order, round-robin over ``p`` CPUs, in-order commit) but
    resolves every cross-thread dependence by waiting instead of
    violating, gates local-arc waits through one
    :class:`LiveInPredictor` shared across the STL's entries (the
    predictor warms on early entries exactly as a persistent hardware
    table would), and never stalls for buffer overflow.
    """

    def __init__(self, compilation, config=DEFAULT_HYDRA, engine=None):
        self.compilation = compilation
        self.config = config
        self.engine = engine
        self._eliminated = elimination_key(compilation)

    def simulate(self, entries):
        result = DoacrossResult(self.compilation.loop_id)
        predictor = LiveInPredictor()
        engine = self.engine
        if engine is None:
            for entry in entries:
                result.add(self._simulate_entry(entry, predictor, result))
        else:
            with engine.stats.timed_exclusive("resolve"):
                for entry in entries:
                    result.add(self._simulate_entry(entry, predictor,
                                                    result))
        return result

    # -- internals ------------------------------------------------------------

    def _prepared(self, entry):
        threads = entry.threads
        engine = self.engine
        if engine is not None and type(threads[0]) is ThreadView:
            return engine.prepare_entry(self.compilation.loop_id, entry,
                                        self._eliminated)
        eliminated = self._eliminated
        out = []
        for t in threads:
            if type(t) is ThreadView:
                out.append(prepare_view(t, eliminated))
            else:
                out.append(prepare_thread(t.events, eliminated))
        return out

    def _simulate_entry(self, entry, predictor, result):
        # type: (..., LiveInPredictor, DoacrossResult) -> EntryResult
        cfg = self.config
        p = cfg.n_cpus
        threads = entry.threads
        n = len(threads)
        if n == 0:
            return EntryResult(0, entry.total_cycles, 0, 0, 0)

        prepared = self._prepared(entry)
        comm = cfg.store_load_comm_overhead
        restart = cfg.violation_restart_overhead
        eoi = cfg.eoi_overhead

        #: address -> (producer thread index, absolute store time, local?)
        last_store = {}  # type: Dict[int, Tuple[int, int, bool]]
        cpu_free = [0] * p
        commit_prev = 0
        clock0 = cfg.startup_overhead
        prev_start = clock0
        mispredicts = 0
        hits = 0
        posts = 0

        for j, thread in enumerate(threads):
            dep_loads, stores, _heap_seq = prepared[j]

            start = max(cpu_free[j % p], prev_start)
            if j == 0:
                start = max(start, clock0)

            for rel, addr, is_local in dep_loads:
                prod = last_store.get(addr)
                if prod is None or prod[0] >= j:
                    continue
                store_abs = prod[1]
                if is_local:
                    outcome = predictor.consume(addr)
                    if outcome == "hit":
                        # predicted live-in: consume the predicted value,
                        # no wait at all
                        hits += 1
                        continue
                    if outcome == "miss":
                        # proceeded on a wrong prediction: wait for the
                        # real post, then re-execute from the load
                        mispredicts += 1
                        need = store_abs + comm + restart - rel
                    else:
                        posts += 1
                        need = store_abs + comm - rel
                else:
                    posts += 1
                    need = store_abs + comm - rel
                if need > start:
                    start = need

            finish = start + thread.size + eoi
            commit = max(finish, commit_prev)
            commit_prev = commit
            cpu_free[j % p] = commit
            prev_start = start

            for rel, addr, is_local in stores:
                last_store[addr] = (j, start + rel, is_local)
                if is_local:
                    predictor.observe(addr, rel)

        # consumption-side books: a prediction counts when a waiter
        # actually used it, so violations == predictions - hits by
        # construction and the conformance checker can hold the
        # accumulation paths to it.  (The predictor's own counters are
        # the training-side view and include unconsumed predictions.)
        result.predictions += hits + mispredicts
        result.predicted_hits += hits
        result.posts += posts
        parallel = commit_prev + cfg.shutdown_overhead
        return EntryResult(parallel, entry.total_cycles, mispredicts,
                           0, n)


def simulate_doacross(compilation, entries, config=DEFAULT_HYDRA,
                      engine=None):
    """One-call wrapper: simulate all entries of one STL as DOACROSS."""
    return DoacrossSimulator(compilation, config, engine=engine) \
        .simulate(entries)


class DoacrossModel(SpeculationModel):
    name = DOACROSS_MODEL_NAME
    description = ("synchronized post/wait DOACROSS with last-value/"
                   "stride live-in prediction")

    def estimate(self, stats, config=DEFAULT_HYDRA):
        return estimate_doacross(stats, config)

    def simulate(self, compilation, entries, config=DEFAULT_HYDRA,
                 engine=None):
        return simulate_doacross(compilation, entries, config,
                                 engine=engine)
