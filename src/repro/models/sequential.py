"""The trivial execution model: run the loop as-is on one CPU.

Sequential is the baseline every speculative model competes against.
Its estimate is identity (speedup 1.0), so under the selector's argmax
it wins exactly when no speculative model clears the profitability
threshold — making "stay sequential" an explicit per-loop decision
instead of an absence of one.
"""

from repro.hydra.config import DEFAULT_HYDRA
from repro.tls.simulator import EntryResult, TLSResult
from repro.tracer.estimator import SpeedupEstimate

from repro.models.base import SpeculationModel


class SequentialModel(SpeculationModel):
    name = "sequential"
    description = "run the loop unmodified on one CPU (baseline)"

    def estimate(self, stats, config=DEFAULT_HYDRA):
        orig = stats.cycles
        return SpeedupEstimate(stats.loop_id, 1.0, 1.0, float(orig),
                               orig, 0.0)

    def simulate(self, compilation, entries, config=DEFAULT_HYDRA,
                 engine=None):
        # One CPU, no speculation: parallel time is the measured
        # sequential time and no overheads are charged.  (The TLSResult
        # startup/shutdown floor rule does not apply here; the selector
        # never schedules this model, so conformance exercises it only
        # through the estimate path.)
        result = TLSResult(compilation.loop_id)
        for entry in entries:
            result.add(EntryResult(entry.total_cycles, entry.total_cycles,
                                   0, 0, len(entry.threads)))
        return result
