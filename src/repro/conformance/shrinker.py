"""Structure-aware delta debugging for failing fuzz programs.

:func:`shrink_source` greedily minimizes a minijava source while a
caller-supplied predicate keeps returning True ("still fails the same
way").  The reduction operators work on the brace tree rather than raw
characters, so most candidates stay syntactically valid:

* delete a whole ``{ ... }`` block (largest first);
* unwrap a block — drop its header and closing brace, keep the body;
* delete one simple statement line.

Invalid candidates are harmless by construction: the campaign's
predicate treats a non-compiling program as "does not reproduce", so a
bad reduction is merely a wasted attempt, never a wrong answer.  The
loop runs to a fixpoint (no operator makes progress) under a predicate-
call budget, and the result always still satisfies the predicate.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple


def _is_joint(line: str) -> bool:
    """A ``} else {`` line: closes one block and opens the next."""
    stripped = line.strip()
    return stripped.startswith("}") and stripped.endswith("{")


def _spans(lines: List[str]) -> List[Tuple[int, int]]:
    """Inclusive ``(open_line, close_line)`` for every brace block,
    from line-level brace counting."""
    stack: List[int] = []
    spans: List[Tuple[int, int]] = []
    for i, line in enumerate(lines):
        for ch in line:
            if ch == "}" and stack:
                spans.append((stack.pop(), i))
            elif ch == "{":
                stack.append(i)
    return spans


def _indent(line: str) -> str:
    return line[:len(line) - len(line.lstrip())]


def _candidates(lines: List[str]) -> Iterator[List[str]]:
    """Reduced variants, biggest reduction first."""
    spans = sorted(_spans(lines), key=lambda se: se[0] - se[1])
    for start, end in spans:
        if start == end:
            continue
        open_joint = _is_joint(lines[start])
        close_joint = _is_joint(lines[end])
        if open_joint:
            # dropping an else-branch must keep the then-block's close
            yield lines[:start] + [_indent(lines[start]) + "}"] \
                + lines[end + 1:]
        elif not close_joint:
            yield lines[:start] + lines[end + 1:]
        if not open_joint and not close_joint:
            # unwrap: keep the body, drop header + closing brace
            yield lines[:start] + lines[start + 1:end] \
                + lines[end + 1:]
    for i, line in enumerate(lines):
        if "{" in line or "}" in line:
            continue
        if not line.strip():
            continue
        yield lines[:i] + lines[i + 1:]


def shrink_source(source: str,
                  predicate: Callable[[str], bool],
                  max_checks: int = 2000) -> str:
    """Minimize ``source`` while ``predicate(candidate)`` holds.

    ``predicate`` must be True for ``source`` itself (raises
    ``ValueError`` otherwise) and should return False — not raise —
    for candidates that no longer reproduce, including ones that fail
    to compile.  Returns the smallest variant found; the result is
    guaranteed to satisfy the predicate.
    """
    if not predicate(source):
        raise ValueError(
            "shrink_source needs a failing input to start from")
    lines = source.splitlines()
    checks = 1
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in _candidates(lines):
            checks += 1
            if predicate("\n".join(candidate)):
                lines = candidate
                progress = True
                break  # operators are stale; recompute on the smaller program
            if checks >= max_checks:
                break
    return "\n".join(lines)
