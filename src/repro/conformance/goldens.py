"""The generated golden corpus behind ``tests/goldens.json``.

Goldens were historically hand-edited; they are now generated only,
via ``jrpm conform --update-goldens`` (which calls
:func:`update_goldens`).  The corpus is versioned through a ``_meta``
entry and the test suite asserts :func:`goldens_drift` is empty — i.e.
regenerating the file from the current interpreter is a byte-level
no-op.  Any intentional semantics change therefore shows up as an
explicit goldens regeneration in the same commit, never as a silent
hand edit.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

from repro.runtime.interpreter import run_program
from repro.workloads.registry import Workload, all_workloads

#: bumped whenever the golden payload's *shape* changes (v1 was the
#: hand-maintained flat file without ``_meta``)
GOLDENS_VERSION = 2

#: sorts between the uppercase and lowercase workload names; tests
#: index goldens by workload name, so an extra key is invisible to them
META_KEY = "_meta"


def compute_goldens(workloads: Optional[Iterable[Workload]] = None
                    ) -> Dict[str, Dict]:
    """Reference outputs for every workload, from a plain sequential
    run of the unannotated program."""
    fleet = list(workloads) if workloads is not None else all_workloads()
    goldens: Dict[str, Dict] = {}
    for w in fleet:
        result = run_program(w.compile())
        goldens[w.name] = {
            "cycles": result.cycles,
            "instructions": result.instructions,
            "return_value": result.return_value,
        }
    return goldens


def goldens_payload(goldens: Dict[str, Dict]) -> Dict:
    """The on-disk payload: measured goldens plus the version stamp."""
    payload = dict(goldens)
    payload[META_KEY] = {
        "version": GOLDENS_VERSION,
        "generator": "jrpm conform --update-goldens",
        "workloads": len(goldens),
    }
    return payload


def render_goldens(payload: Dict) -> str:
    """Serialize exactly as the corpus is stored (stable byte-for-byte
    so regeneration without drift is a no-op)."""
    return json.dumps(payload, indent=1, sort_keys=True)


def load_goldens(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def update_goldens(path: str,
                   workloads: Optional[Iterable[Workload]] = None
                   ) -> Dict:
    """Regenerate the corpus at ``path``; returns the payload."""
    payload = goldens_payload(compute_goldens(workloads))
    with open(path, "w") as handle:
        handle.write(render_goldens(payload))
    return payload


def goldens_drift(path: str,
                  workloads: Optional[Iterable[Workload]] = None
                  ) -> List[str]:
    """Differences between the stored corpus and a fresh regeneration
    (empty list = regeneration is a no-op).

    Reported per field so a drift failure names the workload and the
    measurement that moved, not just "files differ".
    """
    problems: List[str] = []
    if not os.path.exists(path):
        return ["golden corpus missing at %s" % path]
    stored = load_goldens(path)
    fresh = goldens_payload(compute_goldens(workloads))
    meta = stored.get(META_KEY)
    if not isinstance(meta, dict):
        problems.append("corpus has no %s stamp (hand-edited or v1); "
                        "regenerate with --update-goldens" % META_KEY)
    elif meta.get("version") != GOLDENS_VERSION:
        problems.append("corpus version %r != current %d"
                        % (meta.get("version"), GOLDENS_VERSION))
    for name in sorted(set(stored) | set(fresh)):
        if name == META_KEY:
            continue
        if name not in fresh:
            problems.append("%s: stored but no longer registered"
                            % name)
        elif name not in stored:
            problems.append("%s: registered but missing from corpus"
                            % name)
        elif stored[name] != fresh[name]:
            for field in sorted(set(stored[name]) | set(fresh[name])):
                if stored[name].get(field) != fresh[name].get(field):
                    problems.append(
                        "%s.%s: stored %r, measured %r"
                        % (name, field, stored[name].get(field),
                           fresh[name].get(field)))
    if not problems and render_goldens(fresh) != \
            open(path).read():
        problems.append("corpus bytes differ from canonical "
                        "serialization; regenerate with "
                        "--update-goldens")
    return problems
