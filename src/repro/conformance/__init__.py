"""Differential conformance layer: estimator-vs-simulator oracle,
six-path fuzz campaigns with delta-debugging shrinking, and the golden
corpus gate (DESIGN.md §9).

Three entry points, all reachable through ``jrpm conform``:

* :func:`~repro.conformance.oracle.run_oracle` — every registered
  workload through both the TEST estimator (Eq. 1/2) and the TLS
  simulator, with per-STL and per-workload prediction error and the
  paper's same-winner shape claim asserted;
* :func:`~repro.conformance.campaign.run_campaign` — seeded fuzz
  programs executed along six paths (fast interpreter, traced
  dispatch, annotated, optimized) under runtime invariants, failures
  minimized by :func:`~repro.conformance.shrinker.shrink_source` and
  saved as repros;
* :func:`~repro.conformance.goldens.update_goldens` — the generated
  golden corpus behind ``tests/goldens.json``.
"""

from repro.conformance.campaign import (
    CampaignFailure,
    CampaignResult,
    replay_seed,
    run_campaign,
)
from repro.conformance.invariants import (
    CheckOutcome,
    ConformanceViolation,
    check_monotonic,
    check_source,
)
from repro.conformance.goldens import (
    GOLDENS_VERSION,
    compute_goldens,
    goldens_drift,
    goldens_payload,
    update_goldens,
)
from repro.conformance.oracle import (
    DEFAULT_ERROR_BOUND,
    MODEL_ERROR_BOUNDS,
    WORKLOAD_ERROR_BOUNDS,
    OracleReport,
    WorkloadConformance,
    run_oracle,
)
from repro.conformance.shrinker import shrink_source

__all__ = [
    "CampaignFailure",
    "CampaignResult",
    "CheckOutcome",
    "ConformanceViolation",
    "DEFAULT_ERROR_BOUND",
    "GOLDENS_VERSION",
    "MODEL_ERROR_BOUNDS",
    "WORKLOAD_ERROR_BOUNDS",
    "OracleReport",
    "WorkloadConformance",
    "check_monotonic",
    "check_source",
    "compute_goldens",
    "goldens_drift",
    "goldens_payload",
    "replay_seed",
    "run_campaign",
    "run_oracle",
    "shrink_source",
    "update_goldens",
]
