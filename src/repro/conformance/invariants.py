"""Six-path differential execution plus runtime-invariant checks.

One generated (or hand-written) program is executed along six paths:

1. **fast** — the plain interpreter with no listener attached, which
   takes the memoized dispatch fast path (trace JIT forced off: this
   is the reference semantics);
2. **traced** — the same program with a no-op :class:`TraceListener`,
   forcing the instrumented dispatch loop (trace JIT off);
3. **annotated** — TEST annotations at ``OPTIMIZED`` level with the
   profiling device and a columnar recording attached;
4. **optimized** — the microJIT scalar optimizer applied to a copy;
5. **trace JIT** — the superblock JIT enabled with an aggressive
   hotness threshold, in all three configurations (fast, no-op
   listener, annotated+device), asserting *exact* cycle, instruction,
   return-value, heap, print, and event-count agreement with the
   matching JIT-off path;
6. **DOACROSS** — every selected STL re-simulated under the post/wait
   execution model from the same trace the TLS simulator consumed,
   asserting the shared timing invariants, exact sequential-cycle
   agreement with the TLS path (both walk the same recording), and
   the predictor's books balancing (hits <= predictions, violations
   == misses).

All paths must agree on the return value; paths 1/2 must agree on exact
cycle and instruction counts (any drift is a dispatch-table bug).  On
top of the differential checks, the annotated run's byproducts are fed
through every runtime invariant the tracer and the TLS simulator
export: timestamp monotonicity of the columnar trace, TEST event
balance, critical-arc minimality and the other
:meth:`STLStats.invariant_errors` rules, speculative-buffer overflow
points landing inside their thread, and the
:meth:`TLSResult.invariant_errors` timing bounds.

A failed check raises :class:`ConformanceViolation` with a stable
``kind`` string; the campaign driver shrinks on "same kind", so kinds
must be deterministic for a given bug, not message-exact.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cfg.candidates import find_candidates
from repro.errors import ReproError, TracerError
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jit.annotate import AnnotationLevel, annotate_program
from repro.jit.optimize import optimize_program
from repro.jit.speculative import compile_stl
from repro.lang.codegen import compile_source
from repro.models.doacross import simulate_doacross
from repro.runtime.events import (
    ColumnarRecording,
    MulticastListener,
    TraceListener,
)
from repro.runtime.interpreter import run_program
from repro.tls.engine import TraceEngine
from repro.tls.simulator import (
    elimination_key,
    overflow_point,
    prepare_view,
)
from repro.tls.stats import ProgramTLSOutcome
from repro.tracer.device import TestDevice
from repro.tracer.selector import select_stls
from repro.bytecode.verifier import verify_program


#: stable violation kinds (the shrinker's predicate matches on these)
KIND_UNREACHABLE = "unreachable-code"
KIND_DISPATCH = "dispatch-divergence"
KIND_ANNOTATION = "annotation-divergence"
KIND_ANNOTATION_CYCLES = "annotation-cycles"
KIND_EVENT_BALANCE = "event-balance"
KIND_MONOTONICITY = "timestamp-monotonicity"
KIND_STATS = "stats-invariant"
KIND_OPTIMIZER = "optimizer-divergence"
KIND_OPT_REGRESSION = "optimizer-regression"
KIND_TLS_INVARIANT = "tls-invariant"
KIND_TLS_BOUNDS = "tls-bounds"
KIND_BUFFER_LIMIT = "buffer-limit"
KIND_TRACE_JIT = "trace-jit-divergence"
KIND_DOACROSS = "doacross-invariant"
KIND_CRASH = "crash"

#: hotness threshold for the fifth path: aggressive enough that the
#: short loops fuzz programs contain actually record and link
TRACE_JIT_FUZZ_THRESHOLD = 2


class ConformanceViolation(ReproError):
    """A differential or invariant check failed for one program."""

    def __init__(self, kind: str, detail: str,
                 seed: Optional[int] = None):
        self.kind = kind
        self.detail = detail
        self.seed = seed
        tag = "" if seed is None else " [seed %d]" % seed
        super().__init__("%s%s: %s" % (kind, tag, detail))


class CheckOutcome:
    """Summary of one program's clean pass through all six paths."""

    def __init__(self, name: str):
        self.name = name
        self.return_value = None
        self.fast_cycles = 0
        self.annotated_cycles = 0
        self.optimized_instructions = 0
        self.n_events = 0
        self.n_loops = 0
        self.selected_ids: List[int] = []
        self.tls_simulated = 0
        #: STLs re-simulated under the sixth (DOACROSS) path
        self.doacross_simulated = 0
        #: superblocks linked across the fifth path's three runs
        self.jit_traces = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("CheckOutcome(%s ret=%r loops=%d selected=%r)"
                % (self.name, self.return_value, self.n_loops,
                   self.selected_ids))


def check_monotonic(cycles) -> Optional[int]:
    """Index of the first out-of-order timestamp, or None if sorted."""
    prev = None
    for i, c in enumerate(cycles):
        if prev is not None and c < prev:
            return i
        prev = c
    return None


def _raise(kind: str, detail: str, seed: Optional[int]) -> None:
    raise ConformanceViolation(kind, detail, seed)


def check_source(source: str, seed: Optional[int] = None,
                 name: str = "fuzz",
                 config: HydraConfig = DEFAULT_HYDRA,
                 max_instructions: int = 5_000_000) -> CheckOutcome:
    """Run ``source`` down all six paths and every runtime invariant.

    Returns a :class:`CheckOutcome` on success; raises
    :class:`ConformanceViolation` on the first failed check.  Compile
    errors propagate as their native exceptions (the campaign treats a
    non-compiling candidate as invalid, not as a finding).
    """
    outcome = CheckOutcome(name)
    program = compile_source(source)

    # Codegen must never emit live unreachable blocks (trailing RET/NOP
    # padding after exhaustive returns is tolerated by the verifier).
    # Checked on the pristine program only: constant folding in the
    # optimizer can legitimately strand a branch arm.
    try:
        verify_program(program, reject_unreachable=True)
    except ReproError as exc:
        _raise(KIND_UNREACHABLE, str(exc), seed)

    # path 1: fast dispatch (no listener); the trace JIT is forced off
    # so this stays the reference semantics the fifth path diffs against
    fast = run_program(program, max_instructions=max_instructions,
                       trace_jit=False)
    outcome.return_value = fast.return_value
    outcome.fast_cycles = fast.cycles

    # path 2: instrumented dispatch with a no-op listener — identical
    # observable behaviour is the whole contract of the fast path
    traced = run_program(program, listener=TraceListener(),
                         max_instructions=max_instructions,
                         trace_jit=False)
    if (traced.return_value, traced.cycles, traced.instructions) != \
            (fast.return_value, fast.cycles, fast.instructions):
        _raise(KIND_DISPATCH,
               "fast=(%r, %d cyc, %d ins) traced=(%r, %d cyc, %d ins)"
               % (fast.return_value, fast.cycles, fast.instructions,
                  traced.return_value, traced.cycles,
                  traced.instructions), seed)

    # path 3: annotated + TEST device + columnar recording
    candidates = find_candidates(program)
    annotated = annotate_program(program, candidates,
                                 AnnotationLevel.OPTIMIZED)
    device = TestDevice(config)
    for lid, cand in annotated.annotated_loops.items():
        device.register_loop_locals(lid, cand.tracked_locals)
    recording = ColumnarRecording()
    profiled = run_program(
        annotated.program,
        listener=MulticastListener([device, recording]),
        max_instructions=max_instructions, trace_jit=False)
    try:
        device.finish()
    except TracerError as exc:
        _raise(KIND_EVENT_BALANCE, str(exc), seed)
    if profiled.return_value != fast.return_value:
        _raise(KIND_ANNOTATION, "annotated run returned %r, plain %r"
               % (profiled.return_value, fast.return_value), seed)
    if profiled.cycles < fast.cycles:
        _raise(KIND_ANNOTATION_CYCLES,
               "annotation removed cycles (%d < %d)"
               % (profiled.cycles, fast.cycles), seed)
    outcome.annotated_cycles = profiled.cycles
    outcome.n_events = len(recording)
    outcome.n_loops = len(device.stats)

    bad = check_monotonic(recording.cycles)
    if bad is not None:
        _raise(KIND_MONOTONICITY,
               "event %d at cycle %d after cycle %d"
               % (bad, recording.cycles[bad], recording.cycles[bad - 1]),
               seed)
    for loop_id, stats in sorted(device.stats.items()):
        errs = stats.invariant_errors()
        if errs:
            _raise(KIND_STATS, "; ".join(errs), seed)

    # path 4: scalar optimizer on a copy
    clone = program.copy()
    optimize_program(clone)
    optimized = run_program(clone, max_instructions=max_instructions,
                            trace_jit=False)
    if optimized.return_value != fast.return_value:
        _raise(KIND_OPTIMIZER, "optimized run returned %r, plain %r"
               % (optimized.return_value, fast.return_value), seed)
    if optimized.printed != fast.printed:
        _raise(KIND_OPTIMIZER, "optimized run printed %r, plain %r"
               % (optimized.printed, fast.printed), seed)
    if optimized.heap.snapshot() != fast.heap.snapshot():
        _raise(KIND_OPTIMIZER, "optimized run heap diverged", seed)
    if optimized.instructions > fast.instructions:
        _raise(KIND_OPT_REGRESSION,
               "optimizer grew instruction count (%d > %d)"
               % (optimized.instructions, fast.instructions), seed)
    outcome.optimized_instructions = optimized.instructions

    # path 5: trace JIT at an aggressive threshold, diffed exactly
    # against the JIT-off reference runs.  Three configurations: the
    # fast loop, the no-op-listener traced loop, and the annotated
    # program with a fresh device — the latter exercises superblock
    # event emission and marker flushes against the full tracer.
    jit_fast = run_program(
        program, max_instructions=max_instructions, trace_jit=True,
        trace_jit_threshold=TRACE_JIT_FUZZ_THRESHOLD)
    if (jit_fast.return_value, jit_fast.cycles,
            jit_fast.instructions) != \
            (fast.return_value, fast.cycles, fast.instructions):
        _raise(KIND_TRACE_JIT,
               "fast jit=(%r, %d cyc, %d ins) reference=(%r, %d cyc, "
               "%d ins)"
               % (jit_fast.return_value, jit_fast.cycles,
                  jit_fast.instructions, fast.return_value,
                  fast.cycles, fast.instructions), seed)
    if jit_fast.heap.snapshot() != fast.heap.snapshot():
        _raise(KIND_TRACE_JIT, "fast jit heap diverged", seed)
    if jit_fast.printed != fast.printed:
        _raise(KIND_TRACE_JIT, "fast jit printed %r, reference %r"
               % (jit_fast.printed, fast.printed), seed)
    jit_traced = run_program(
        program, listener=TraceListener(),
        max_instructions=max_instructions, trace_jit=True,
        trace_jit_threshold=TRACE_JIT_FUZZ_THRESHOLD)
    if (jit_traced.return_value, jit_traced.cycles,
            jit_traced.instructions) != \
            (fast.return_value, fast.cycles, fast.instructions):
        _raise(KIND_TRACE_JIT,
               "traced jit=(%r, %d cyc, %d ins) reference=(%r, %d cyc, "
               "%d ins)"
               % (jit_traced.return_value, jit_traced.cycles,
                  jit_traced.instructions, fast.return_value,
                  fast.cycles, fast.instructions), seed)
    jit_device = TestDevice(config)
    for lid, cand in annotated.annotated_loops.items():
        jit_device.register_loop_locals(lid, cand.tracked_locals)
    jit_recording = ColumnarRecording()
    jit_profiled = run_program(
        annotated.program,
        listener=MulticastListener([jit_device, jit_recording]),
        max_instructions=max_instructions, trace_jit=True,
        trace_jit_threshold=TRACE_JIT_FUZZ_THRESHOLD)
    try:
        jit_device.finish()
    except TracerError as exc:
        _raise(KIND_TRACE_JIT, "annotated jit: %s" % exc, seed)
    if (jit_profiled.return_value, jit_profiled.cycles,
            jit_profiled.instructions, len(jit_recording)) != \
            (profiled.return_value, profiled.cycles,
             profiled.instructions, len(recording)):
        _raise(KIND_TRACE_JIT,
               "annotated jit=(%r, %d cyc, %d ins, %d ev) "
               "reference=(%r, %d cyc, %d ins, %d ev)"
               % (jit_profiled.return_value, jit_profiled.cycles,
                  jit_profiled.instructions, len(jit_recording),
                  profiled.return_value, profiled.cycles,
                  profiled.instructions, len(recording)), seed)
    for jit_run in (jit_fast, jit_traced, jit_profiled):
        if jit_run.jit is not None:
            outcome.jit_traces += jit_run.jit["traces_linked"]

    # TLS checks, reusing the path-3 byproducts (no second profile)
    selection = select_stls(device, profiled.cycles, config)
    outcome.selected_ids = selection.selected_ids()
    engine = TraceEngine(recording)
    tls_results = {}
    for sel in selection.selected:
        cand = candidates.by_id.get(sel.loop_id)
        if cand is None:
            continue
        comp = compile_stl(cand, config)
        tls = engine.simulate(comp, config)
        tls_results[sel.loop_id] = tls
        outcome.tls_simulated += 1
        errs = tls.invariant_errors(config)
        if errs:
            _raise(KIND_TLS_INVARIANT,
                   "loop %d: %s" % (sel.loop_id, "; ".join(errs)), seed)
        if tls.sequential_cycles > profiled.cycles:
            _raise(KIND_TLS_BOUNDS,
                   "loop %d sequential %d exceeds whole run %d"
                   % (sel.loop_id, tls.sequential_cycles,
                      profiled.cycles), seed)
        # speculative-buffer limits: an overflow, if any, must land
        # inside its thread's window
        eliminated = elimination_key(comp)
        for entry in engine.split(sel.loop_id):
            for thread in entry.threads:
                _, _, heap_seq = prepare_view(thread, eliminated)
                ov = overflow_point(heap_seq, config)
                if ov is not None and not 0 <= ov <= thread.size:
                    _raise(KIND_BUFFER_LIMIT,
                           "loop %d overflow at rel %d outside thread "
                           "of %d cycles" % (sel.loop_id, ov,
                                             thread.size), seed)
        # path 6: the same trace under the DOACROSS post/wait model
        doa = simulate_doacross(comp, engine.split(sel.loop_id),
                                config, engine=engine)
        outcome.doacross_simulated += 1
        errs = doa.invariant_errors(config)
        if errs:
            _raise(KIND_DOACROSS,
                   "loop %d: %s" % (sel.loop_id, "; ".join(errs)), seed)
        if doa.sequential_cycles != tls.sequential_cycles:
            _raise(KIND_DOACROSS,
                   "loop %d DOACROSS sequential %d != TLS sequential "
                   "%d (both models walk the same trace)"
                   % (sel.loop_id, doa.sequential_cycles,
                      tls.sequential_cycles), seed)
        if doa.predicted_hits > doa.predictions:
            _raise(KIND_DOACROSS,
                   "loop %d predictor books broken: %d hits of %d "
                   "predictions" % (sel.loop_id, doa.predicted_hits,
                                    doa.predictions), seed)
        if doa.violations != doa.predictions - doa.predicted_hits:
            _raise(KIND_DOACROSS,
                   "loop %d violations %d != mispredictions %d"
                   % (sel.loop_id, doa.violations,
                      doa.predictions - doa.predicted_hits), seed)
    if tls_results:
        program_outcome = ProgramTLSOutcome(selection, tls_results)
        if not (0.0 < program_outcome.actual_speedup
                <= config.n_cpus + 1e-9):
            _raise(KIND_TLS_BOUNDS,
                   "program actual speedup %.3f outside (0, %d]"
                   % (program_outcome.actual_speedup, config.n_cpus),
                   seed)
    return outcome
