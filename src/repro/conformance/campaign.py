"""Seeded fuzz campaigns over the six-path differential checker.

A campaign generates ``count`` programs from consecutive seeds, runs
each through :func:`~repro.conformance.invariants.check_source` (fanned
out over :class:`~repro.jrpm.executor.FleetExecutor` worker processes
when ``jobs > 1``), then delta-debugs every failure down to a minimal
reproducer and saves it under ``conformance/repros/`` with its seed and
violation kind in a comment header.  Any single seed replays in
isolation with ``jrpm conform --seed N`` (or :func:`replay_seed`).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.conformance.invariants import (
    KIND_CRASH,
    ConformanceViolation,
    check_source,
)
from repro.conformance.shrinker import shrink_source
from repro.fuzz.generator import generate_program
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.executor import FleetExecutor
from repro.workloads.registry import Workload

#: campaign base seed when neither the CLI nor JRPM_TEST_SEED picks one
DEFAULT_FUZZ_SEED = 20260807

#: where shrunk reproducers land, relative to the repo root
DEFAULT_REPRO_DIR = os.path.join("conformance", "repros")


class FuzzRow:
    """One seed's clean pass (fleet-row protocol)."""

    ok = True

    def __init__(self, seed: int, outcome):
        self.seed = seed
        self.outcome = outcome

    @property
    def name(self) -> str:
        return "fuzz-%d" % self.seed


class CampaignFailure:
    """One seed's violation, plus its shrunk reproducer."""

    ok = False

    def __init__(self, seed: int, kind: str, detail: str, source: str,
                 crash_class: Optional[str] = None):
        self.seed = seed
        self.kind = kind
        self.detail = detail
        self.source = source
        #: exception class name for ``kind == "crash"`` findings; the
        #: shrink predicate matches on it so a reduction that merely
        #: stops compiling never counts as a reproduction
        self.crash_class = crash_class
        self.shrunk: Optional[str] = None
        self.repro_path: Optional[str] = None

    @property
    def name(self) -> str:
        return "fuzz-%d" % self.seed

    @property
    def error(self) -> str:
        return "%s: %s" % (self.kind, self.detail)

    @property
    def shrunk_lines(self) -> int:
        text = self.shrunk if self.shrunk is not None else self.source
        return len(text.splitlines())

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "kind": self.kind,
            "detail": self.detail,
            "crash_class": self.crash_class,
            "source_lines": len(self.source.splitlines()),
            "shrunk_lines": self.shrunk_lines,
            "repro": self.repro_path,
        }


def _check_one(workload: Workload, checker: Callable,
               config: HydraConfig):
    """Run one fuzz workload through ``checker``; classify the result."""
    seed = int(workload.dataset)
    source = workload.source()
    try:
        outcome = checker(source, seed=seed, name=workload.name,
                          config=config)
        return FuzzRow(seed, outcome)
    except ConformanceViolation as exc:
        return CampaignFailure(seed, exc.kind, exc.detail, source)
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return CampaignFailure(seed, KIND_CRASH, repr(exc), source,
                               crash_class=type(exc).__name__)


def conformance_task(workload: Workload,
                     config: HydraConfig = DEFAULT_HYDRA,
                     simulate_tls: bool = True, cache=None, **kwargs):
    """Fleet task for fuzz workloads (module-level, hence picklable
    for parallel campaigns)."""
    return _check_one(workload, check_source, config)


def fuzz_workloads(base_seed: int, count: int) -> List[Workload]:
    """One synthetic :class:`Workload` per seed; the seed rides in
    ``dataset`` so it survives the trip through worker processes."""
    return [
        Workload(name="fuzz-%d" % seed, category="fuzz",
                 description="generated program, seed %d" % seed,
                 source_text=generate_program(seed),
                 dataset=str(seed))
        for seed in range(base_seed, base_seed + count)
    ]


def _shrink_predicate(failure: CampaignFailure, checker: Callable,
                      config: HydraConfig) -> Callable[[str], bool]:
    """True iff a candidate still fails with the same violation kind
    (same exception class, for crashes).  Compile errors and clean
    passes are both "no repro"."""
    def predicate(candidate: str) -> bool:
        try:
            checker(candidate, seed=failure.seed, name=failure.name,
                    config=config)
            return False
        except ConformanceViolation as exc:
            return exc.kind == failure.kind
        except Exception as exc:  # noqa: BLE001 - classify, never leak
            return failure.kind == KIND_CRASH \
                and type(exc).__name__ == failure.crash_class
    return predicate


def save_repro(failure: CampaignFailure, repro_dir: str) -> str:
    """Write the (shrunk) reproducer with a replayable header."""
    os.makedirs(repro_dir, exist_ok=True)
    path = os.path.join(repro_dir,
                        "seed-%d-%s.mj" % (failure.seed, failure.kind))
    body = failure.shrunk if failure.shrunk is not None \
        else failure.source
    header = [
        "// conformance repro (generated by `jrpm conform`)",
        "// seed: %d" % failure.seed,
        "// kind: %s" % failure.kind,
        "// detail: %s" % failure.detail.replace("\n", " "),
        "// replay: jrpm conform --fuzz 1 --seed %d" % failure.seed,
    ]
    with open(path, "w") as fh:
        fh.write("\n".join(header) + "\n" + body + "\n")
    failure.repro_path = path
    return path


class CampaignResult:
    """Outcome of one fuzz campaign."""

    def __init__(self, base_seed: int, count: int, rows: List):
        self.base_seed = base_seed
        self.count = count
        self.rows = rows

    @property
    def failures(self) -> List[CampaignFailure]:
        return [r for r in self.rows
                if isinstance(r, CampaignFailure)]

    @property
    def fleet_errors(self) -> List:
        """Worker-level failures (infrastructure, not findings)."""
        return [r for r in self.rows
                if not r.ok and not isinstance(r, CampaignFailure)]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.fleet_errors

    @property
    def checked(self) -> int:
        return sum(1 for r in self.rows if r.ok)

    def to_dict(self) -> Dict:
        return {
            "kind": "campaign",
            "base_seed": self.base_seed,
            "count": self.count,
            "checked": self.checked,
            "failures": [f.to_dict() for f in self.failures],
            "fleet_errors": [getattr(r, "error", repr(r))
                             for r in self.fleet_errors],
        }

    def render(self) -> str:
        lines = ["fuzz campaign: %d/%d programs clean (base seed %d)"
                 % (self.checked, self.count, self.base_seed)]
        for f in self.failures:
            lines.append(
                "  seed %d: %s (%d -> %d lines)%s"
                % (f.seed, f.kind, len(f.source.splitlines()),
                   f.shrunk_lines,
                   " -> %s" % f.repro_path if f.repro_path else ""))
            lines.append("    replay: jrpm conform --fuzz 1 --seed %d"
                         % f.seed)
        for r in self.fleet_errors:
            lines.append("  %s: worker failed: %s"
                         % (r.name, getattr(r, "error", "?")))
        return "\n".join(lines)


def run_campaign(count: int = 200,
                 base_seed: int = DEFAULT_FUZZ_SEED,
                 config: HydraConfig = DEFAULT_HYDRA,
                 jobs: int = 1,
                 shrink: bool = True,
                 repro_dir: Optional[str] = None,
                 checker: Optional[Callable] = None,
                 max_checks: int = 2000) -> CampaignResult:
    """Fuzz ``count`` consecutive seeds starting at ``base_seed``.

    ``checker`` substitutes the per-program check (tests inject a
    poisoned one to exercise the shrink-and-save path); a custom
    checker forces the serial fleet, since closures don't pickle.
    Failures are shrunk with :func:`shrink_source` and, when
    ``repro_dir`` is given, saved via :func:`save_repro`.
    """
    if checker is None:
        task: Callable = conformance_task
    else:
        jobs = 1

        def task(workload, config=DEFAULT_HYDRA, simulate_tls=True,
                 cache=None, **kwargs):
            return _check_one(workload, checker, config)

    executor = FleetExecutor(jobs=jobs, config=config, on_error="row",
                             task=task)
    result = executor.run(fuzz_workloads(base_seed, count))
    campaign = CampaignResult(base_seed, count, list(result.rows))
    active_checker = checker if checker is not None else check_source
    for failure in campaign.failures:
        if shrink:
            predicate = _shrink_predicate(failure, active_checker,
                                          config)
            failure.shrunk = shrink_source(failure.source, predicate,
                                           max_checks=max_checks)
        if repro_dir is not None:
            save_repro(failure, repro_dir)
    return campaign


def replay_seed(seed: int, config: HydraConfig = DEFAULT_HYDRA):
    """Re-run one generated program through every check; raises
    :class:`ConformanceViolation` on failure, returns the
    :class:`CheckOutcome` when clean."""
    return check_source(generate_program(seed), seed=seed,
                        name="fuzz-%d" % seed, config=config)
