"""The estimator-vs-simulator differential oracle (Figure 11 as a gate).

Every registered workload runs once through the full Jrpm pipeline;
the oracle then compares stage 3's Equation 1 *predictions* against
stage 5's TLS-simulated *actuals*, per selected STL and per workload,
and turns the paper's qualitative claim — the TEST estimate tracks the
simulated outcome closely enough to pick the right loops — into two
checked properties:

* **bounded error** — each workload's relative speedup prediction
  error stays within its measured per-workload ceiling
  (:data:`WORKLOAD_ERROR_BOUNDS`; :data:`DEFAULT_ERROR_BOUND` covers
  workloads without a measured row, e.g. fuzz programs);
* **same winner** — among a workload's selected STLs, the loop the
  estimator ranks as the biggest cycle saver is the loop the simulator
  ranks first too (documented exceptions in
  :data:`KNOWN_WINNER_MISMATCHES`).

With ``models=`` the fleet instead runs the multi-model argmax
pipeline, and the gate shifts to the per-model property: every
selected STL's predicted-vs-actual speedup error stays within the
winning model's ceiling (:data:`MODEL_ERROR_BOUNDS`).  Workload-level
bounds and the winner check are legacy-calibrated and do not apply —
model selection changes which loops run and what they achieve.

EXPERIMENTS.md records the measured numbers behind every bound and
exception; ``jrpm conform`` runs this as the CI conformance gate and
emits the machine-readable report via :meth:`OracleReport.to_dict`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.cache import ArtifactCache
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.pipeline import Jrpm
from repro.workloads.registry import Workload, all_workloads

#: fallback workload-level relative-error ceiling on predicted vs
#: actual speedup, |pred - act| / act — applied only to workloads
#: without a measured row in :data:`WORKLOAD_ERROR_BOUNDS` (fuzz
#: programs, user sources).  The registered corpus maximum excluding
#: BitOps is 30.7% (jess); 40% leaves headroom without masking a
#: broken estimator.
DEFAULT_ERROR_BOUND = 0.40

#: measured per-workload error ceilings: each bundled workload's
#: observed |pred - act| / act with ~1.5x headroom for config drift,
#: replacing the old one-size 40% bound that let a 2%-error workload
#: regress 20x before the gate noticed.  Measured values are in
#: EXPERIMENTS.md ("Estimator conformance"); keep the two in sync.
#: BitOps stays the documented outlier at 170%: its single selected
#: loop is violation-free in Equation 1's model but misspeculates
#: heavily in the simulator, and with one loop there is no winner
#: ranking to save it.
WORKLOAD_ERROR_BOUNDS: Dict[str, float] = {
    "Assignment": 0.06,     # measured 2.1%
    "BitOps": 1.70,         # measured 156.7% (documented outlier)
    "EmFloatPnt": 0.07,     # measured 2.9%
    "FourierTest": 0.22,    # measured 14.2%
    "Huffman": 0.15,        # measured 8.9%
    "IDEA": 0.09,           # measured 4.5%
    "LuFactor": 0.05,       # measured 1.3%
    "MipsSimulator": 0.10,  # measured 5.7%
    "NeuralNet": 0.07,      # measured 2.9%
    "NumHeapSort": 0.16,    # measured 9.5%
    "compress": 0.06,       # measured 2.1%
    "db": 0.12,             # measured 6.4%
    "decJpeg": 0.06,        # measured 2.3%
    "deltaBlue": 0.09,      # measured 4.7%
    "encJpeg": 0.28,        # measured 18.8%
    "euler": 0.18,          # measured 10.9%
    "fft": 0.21,            # measured 13.7%
    "h263dec": 0.05,        # measured 0.9%
    "jLex": 0.38,           # measured 29.1%
    "jess": 0.40,           # measured 30.7%
    "moldyn": 0.12,         # measured 7.0%
    "monteCarlo": 0.08,     # measured 4.1%
    "mp3": 0.36,            # measured 27.7%
    "mpegVideo": 0.15,      # measured 9.2%
    "raytrace": 0.08,       # measured 4.2%
    "shallow": 0.06,        # measured 2.5%
}

#: per-model STL-level ceilings on |pred - act| / act speedup error,
#: applied when the oracle runs the multi-model pipeline.  hydra-tls
#: measures at most ~42% on any selected STL (monteCarlo L3).  The
#: DOACROSS estimator's analytic post/wait + predictor-coverage model
#: is coarser: worst case 152% on BitOps L0 — the same documented
#: misspeculation outlier as the legacy 170% bound, where both
#: models' analytic paths miss the simulator-only violations — and
#: ~107% elsewhere (compress L3, where the live-in predictor covers
#: less than the 75% coverage assumption).
MODEL_ERROR_BOUNDS: Dict[str, float] = {
    "sequential": 0.0,   # predicts 1.0x by construction
    "hydra-tls": 0.55,   # measured max ~42%
    "doacross": 1.70,    # measured max 152% (BitOps), ~107% elsewhere
}

#: workloads where the estimator's top-ranked STL is documented to
#: differ from the simulator's (EXPERIMENTS.md).  The winner assertion
#: skips these by name.  euler's top two loops' savings sit within 6%
#: of each other both predicted and actual, so ranking noise flips the
#: order; in Huffman, Equation 1's arc penalty underrates the inner
#: bit-chase loop (L1) that the simulator finds most profitable.
KNOWN_WINNER_MISMATCHES: frozenset = frozenset({"Huffman", "euler"})


class STLConformance:
    """Prediction vs simulation for one selected loop."""

    def __init__(self, loop_id: int, predicted_cycles: float,
                 actual_cycles: int, sequential_cycles: int,
                 model: str = "hydra-tls"):
        self.loop_id = loop_id
        self.predicted_cycles = predicted_cycles
        self.actual_cycles = actual_cycles
        self.sequential_cycles = sequential_cycles
        #: execution model that simulated this loop ("hydra-tls" on
        #: the legacy single-model path)
        self.model = model

    @property
    def predicted_savings(self) -> float:
        return self.sequential_cycles - self.predicted_cycles

    @property
    def actual_savings(self) -> float:
        return float(self.sequential_cycles - self.actual_cycles)

    @property
    def rel_error(self) -> float:
        """|predicted - actual| / actual parallel cycles."""
        if self.actual_cycles <= 0:
            return 0.0
        return abs(self.predicted_cycles - self.actual_cycles) \
            / self.actual_cycles

    @property
    def predicted_speedup(self) -> float:
        if self.predicted_cycles <= 0:
            return 0.0
        return self.sequential_cycles / self.predicted_cycles

    @property
    def actual_speedup(self) -> float:
        if self.actual_cycles <= 0:
            return 0.0
        return self.sequential_cycles / self.actual_cycles

    @property
    def speedup_rel_error(self) -> float:
        """|predicted - actual| / actual on the STL *speedup* — the
        quantity :data:`MODEL_ERROR_BOUNDS` gates per model."""
        actual = self.actual_speedup
        if actual <= 0:
            return 0.0
        return abs(self.predicted_speedup - actual) / actual

    def to_dict(self) -> Dict:
        return {
            "loop_id": self.loop_id,
            "model": self.model,
            "predicted_cycles": round(self.predicted_cycles, 1),
            "actual_cycles": self.actual_cycles,
            "sequential_cycles": self.sequential_cycles,
            "rel_error": round(self.rel_error, 4),
            "speedup_rel_error": round(self.speedup_rel_error, 4),
        }


class WorkloadConformance:
    """One workload's oracle row (also the fleet-row protocol:
    ``.ok`` / ``.name``)."""

    ok = True

    def __init__(self, name: str, category: str,
                 predicted_speedup: float, actual_speedup: float,
                 coverage: float, stls: List[STLConformance],
                 winner_predicted: Optional[int],
                 winner_actual: Optional[int],
                 models: Optional[tuple] = None):
        self.name = name
        self.category = category
        self.predicted_speedup = predicted_speedup
        self.actual_speedup = actual_speedup
        self.coverage = coverage
        self.stls = stls
        self.winner_predicted = winner_predicted
        self.winner_actual = winner_actual
        #: execution models the run competed (None = legacy pipeline)
        self.models = models

    @property
    def rel_error(self) -> float:
        """Workload-level |pred - act| / act on the speedup."""
        if self.actual_speedup <= 0:
            return 0.0
        return abs(self.predicted_speedup - self.actual_speedup) \
            / self.actual_speedup

    @property
    def winner_match(self) -> bool:
        """True when the estimator and the simulator rank the same STL
        first (vacuously true with fewer than two selected loops)."""
        if len(self.stls) < 2:
            return True
        return self.winner_predicted == self.winner_actual

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "category": self.category,
            "predicted_speedup": round(self.predicted_speedup, 4),
            "actual_speedup": round(self.actual_speedup, 4),
            "rel_error": round(self.rel_error, 4),
            "coverage": round(self.coverage, 4),
            "winner_predicted": self.winner_predicted,
            "winner_actual": self.winner_actual,
            "winner_match": self.winner_match,
            "models": list(self.models) if self.models else None,
            "stls": [s.to_dict() for s in self.stls],
        }


def conformance_row(name: str, category: str, report
                    ) -> WorkloadConformance:
    """Distill one :class:`JrpmReport` into its oracle row."""
    stls: List[STLConformance] = []
    for sel in report.selection.selected:
        tls = report.tls_results.get(sel.loop_id)
        if tls is None:
            continue
        stls.append(STLConformance(
            sel.loop_id, sel.predicted_cycles, tls.parallel_cycles,
            sel.sequential_cycles,
            model=getattr(sel, "model", "hydra-tls")))
    winner_predicted = winner_actual = None
    if stls:
        winner_predicted = max(
            stls, key=lambda s: (s.predicted_savings, -s.loop_id)
        ).loop_id
        winner_actual = max(
            stls, key=lambda s: (s.actual_savings, -s.loop_id)
        ).loop_id
    return WorkloadConformance(
        name, category, report.predicted_speedup,
        report.actual_speedup, report.coverage, stls,
        winner_predicted, winner_actual,
        models=getattr(report, "models", None))


def oracle_task(workload: Workload, config: HydraConfig = DEFAULT_HYDRA,
                simulate_tls: bool = True,
                cache: Optional[ArtifactCache] = None,
                **jrpm_kwargs) -> WorkloadConformance:
    """Fleet task: one workload through the pipeline, distilled.

    Module-level so parallel fleets can pickle it by reference.
    """
    report = Jrpm(source=workload.source(), name=workload.name,
                  config=config, cache=cache, **jrpm_kwargs
                  ).run(simulate_tls=simulate_tls)
    return conformance_row(workload.name, workload.category, report)


class OracleReport:
    """The whole fleet's conformance outcome."""

    def __init__(self, rows: List, error_bound: float,
                 workload_bounds: Optional[Dict[str, float]] = None,
                 model_bounds: Optional[Dict[str, float]] = None,
                 known_mismatches: Optional[frozenset] = None):
        self.rows = rows
        self.error_bound = error_bound
        self.workload_bounds = dict(WORKLOAD_ERROR_BOUNDS
                                    if workload_bounds is None
                                    else workload_bounds)
        self.model_bounds = dict(MODEL_ERROR_BOUNDS
                                 if model_bounds is None
                                 else model_bounds)
        self.known_mismatches = frozenset(
            KNOWN_WINNER_MISMATCHES if known_mismatches is None
            else known_mismatches)

    @property
    def ok_rows(self) -> List[WorkloadConformance]:
        return [r for r in self.rows if r.ok]

    @property
    def failed_rows(self) -> List:
        return [r for r in self.rows if not r.ok]

    @property
    def max_error(self) -> float:
        return max((r.rel_error for r in self.ok_rows), default=0.0)

    @property
    def mean_error(self) -> float:
        rows = self.ok_rows
        if not rows:
            return 0.0
        return sum(r.rel_error for r in rows) / len(rows)

    def bound_for(self, name: str) -> float:
        return self.workload_bounds.get(name, self.error_bound)

    def model_bound_for(self, model: str) -> float:
        return self.model_bounds.get(model, self.error_bound)

    def violations(self) -> List[str]:
        """Every broken conformance property, as human-readable lines
        (empty list = the gate passes)."""
        problems: List[str] = []
        for row in self.rows:
            if not row.ok:
                problems.append("%s: pipeline failed: %s"
                                % (row.name, row.error))
                continue
            if getattr(row, "models", None) is not None:
                # multi-model run: the per-model STL property.  The
                # workload-level bounds and winner ranking are
                # calibrated against the legacy pipeline, where every
                # loop is estimated and simulated by hydra-tls.
                for stl in row.stls:
                    bound = self.model_bound_for(stl.model)
                    if stl.speedup_rel_error > bound:
                        problems.append(
                            "%s L%d (%s): model prediction error "
                            "%.1f%% exceeds the %.1f%% bound "
                            "(predicted %.2fx, actual %.2fx)"
                            % (row.name, stl.loop_id, stl.model,
                               100 * stl.speedup_rel_error,
                               100 * bound, stl.predicted_speedup,
                               stl.actual_speedup))
                continue
            bound = self.bound_for(row.name)
            if row.rel_error > bound:
                problems.append(
                    "%s: prediction error %.1f%% exceeds the %.1f%% "
                    "bound (predicted %.2fx, actual %.2fx)"
                    % (row.name, 100 * row.rel_error, 100 * bound,
                       row.predicted_speedup, row.actual_speedup))
            if not row.winner_match \
                    and row.name not in self.known_mismatches:
                problems.append(
                    "%s: estimator winner L%s but simulator winner L%s"
                    % (row.name, row.winner_predicted,
                       row.winner_actual))
        return problems

    def to_dict(self) -> Dict:
        return {
            "kind": "oracle",
            "error_bound": self.error_bound,
            "workload_bounds": self.workload_bounds,
            "model_bounds": self.model_bounds,
            "known_mismatches": sorted(self.known_mismatches),
            "workloads": [r.to_dict() if r.ok
                          else {"name": r.name, "ok": False,
                                "error": r.error}
                          for r in self.rows],
            "max_error": round(self.max_error, 4),
            "mean_error": round(self.mean_error, 4),
            "violations": self.violations(),
        }

    def render(self) -> str:
        lines = ["%-14s %9s %9s %7s %7s %7s  %s"
                 % ("workload", "predicted", "actual", "err%",
                    "bound%", "cover%", "winner")]
        for row in self.rows:
            if not row.ok:
                lines.append("%-14s FAILED: %s" % (row.name, row.error))
                continue
            if getattr(row, "models", None) is not None:
                # per-model gate: report the worst STL-level model
                # error against the loosest bound it was held to
                worst = max((s.speedup_rel_error for s in row.stls),
                            default=0.0)
                bound = max((self.model_bound_for(s.model)
                             for s in row.stls), default=0.0)
                winner = ",".join(sorted({s.model for s in row.stls})) \
                    or "-"
            else:
                worst = row.rel_error
                bound = self.bound_for(row.name)
                winner = "-" if len(row.stls) < 2 else (
                    "same" if row.winner_match else
                    "L%s!=L%s" % (row.winner_predicted,
                                  row.winner_actual))
            lines.append("%-14s %8.2fx %8.2fx %6.1f%% %6.1f%% %6.1f%%  %s"
                         % (row.name, row.predicted_speedup,
                            row.actual_speedup, 100 * worst,
                            100 * bound, 100 * row.coverage, winner))
        lines.append("max error %.1f%%, mean %.1f%% over %d workloads"
                     % (100 * self.max_error, 100 * self.mean_error,
                        len(self.ok_rows)))
        return "\n".join(lines)


def run_oracle(workloads: Optional[Iterable[Workload]] = None,
               config: HydraConfig = DEFAULT_HYDRA,
               jobs: int = 1,
               cache: Optional[ArtifactCache] = None,
               error_bound: float = DEFAULT_ERROR_BOUND,
               workload_bounds: Optional[Dict[str, float]] = None,
               model_bounds: Optional[Dict[str, float]] = None,
               known_mismatches: Optional[frozenset] = None,
               models=None,
               **executor_kwargs) -> OracleReport:
    """Run the differential oracle over ``workloads`` (default: all).

    The fleet fans out through :class:`FleetExecutor` (``jobs`` worker
    processes; pass a disk-backed ``cache`` to share pipeline
    artifacts).  Failed pipelines surface as failed rows rather than
    aborting the sweep.  ``models`` (a spec accepted by
    :func:`repro.models.resolve_models`) switches every pipeline run
    to the multi-model argmax and the gate to the per-model bounds.
    """
    from repro.models import resolve_models

    resolved = resolve_models(models)
    fleet = list(workloads) if workloads is not None else all_workloads()
    if resolved is not None:
        executor_kwargs["models"] = resolved
    executor = FleetExecutor(jobs=jobs, config=config, cache=cache,
                             on_error="row", task=oracle_task,
                             **executor_kwargs)
    result = executor.run(fleet)
    return OracleReport(list(result.rows), error_bound,
                        workload_bounds=workload_bounds,
                        model_bounds=model_bounds,
                        known_mismatches=known_mismatches)
