"""The estimator-vs-simulator differential oracle (Figure 11 as a gate).

Every registered workload runs once through the full Jrpm pipeline;
the oracle then compares stage 3's Equation 1 *predictions* against
stage 5's TLS-simulated *actuals*, per selected STL and per workload,
and turns the paper's qualitative claim — the TEST estimate tracks the
simulated outcome closely enough to pick the right loops — into two
checked properties:

* **bounded error** — each workload's relative speedup prediction
  error stays within :data:`DEFAULT_ERROR_BOUND` (measured outliers
  carry their own documented bound in :data:`KNOWN_ERROR_OUTLIERS`);
* **same winner** — among a workload's selected STLs, the loop the
  estimator ranks as the biggest cycle saver is the loop the simulator
  ranks first too (documented exceptions in
  :data:`KNOWN_WINNER_MISMATCHES`).

EXPERIMENTS.md records the measured numbers behind every bound and
exception; ``jrpm conform`` runs this as the CI conformance gate and
emits the machine-readable report via :meth:`OracleReport.to_dict`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.cache import ArtifactCache
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.pipeline import Jrpm
from repro.workloads.registry import Workload, all_workloads

#: workload-level relative-error ceiling on predicted vs actual
#: speedup, |pred - act| / act.  Set from the measured distribution
#: (EXPERIMENTS.md "Estimator conformance"): excluding the documented
#: outlier, the corpus maximum is 30.7% (jess); 40% leaves headroom
#: for config drift without masking a broken estimator.
DEFAULT_ERROR_BOUND = 0.40

#: measured per-workload exceptions to :data:`DEFAULT_ERROR_BOUND`
#: (workload name -> documented looser bound).  Keep in sync with
#: EXPERIMENTS.md.  BitOps measures 156.7%: its single selected loop
#: is violation-free in Equation 1's model but misspeculates heavily
#: in the simulator, and with one loop there is no winner ranking to
#: save it.
KNOWN_ERROR_OUTLIERS: Dict[str, float] = {"BitOps": 1.70}

#: workloads where the estimator's top-ranked STL is documented to
#: differ from the simulator's (EXPERIMENTS.md).  The winner assertion
#: skips these by name.  euler's top two loops' savings sit within 6%
#: of each other both predicted and actual, so ranking noise flips the
#: order; in Huffman, Equation 1's arc penalty underrates the inner
#: bit-chase loop (L1) that the simulator finds most profitable.
KNOWN_WINNER_MISMATCHES: frozenset = frozenset({"Huffman", "euler"})


class STLConformance:
    """Prediction vs simulation for one selected loop."""

    def __init__(self, loop_id: int, predicted_cycles: float,
                 actual_cycles: int, sequential_cycles: int):
        self.loop_id = loop_id
        self.predicted_cycles = predicted_cycles
        self.actual_cycles = actual_cycles
        self.sequential_cycles = sequential_cycles

    @property
    def predicted_savings(self) -> float:
        return self.sequential_cycles - self.predicted_cycles

    @property
    def actual_savings(self) -> float:
        return float(self.sequential_cycles - self.actual_cycles)

    @property
    def rel_error(self) -> float:
        """|predicted - actual| / actual parallel cycles."""
        if self.actual_cycles <= 0:
            return 0.0
        return abs(self.predicted_cycles - self.actual_cycles) \
            / self.actual_cycles

    def to_dict(self) -> Dict:
        return {
            "loop_id": self.loop_id,
            "predicted_cycles": round(self.predicted_cycles, 1),
            "actual_cycles": self.actual_cycles,
            "sequential_cycles": self.sequential_cycles,
            "rel_error": round(self.rel_error, 4),
        }


class WorkloadConformance:
    """One workload's oracle row (also the fleet-row protocol:
    ``.ok`` / ``.name``)."""

    ok = True

    def __init__(self, name: str, category: str,
                 predicted_speedup: float, actual_speedup: float,
                 coverage: float, stls: List[STLConformance],
                 winner_predicted: Optional[int],
                 winner_actual: Optional[int]):
        self.name = name
        self.category = category
        self.predicted_speedup = predicted_speedup
        self.actual_speedup = actual_speedup
        self.coverage = coverage
        self.stls = stls
        self.winner_predicted = winner_predicted
        self.winner_actual = winner_actual

    @property
    def rel_error(self) -> float:
        """Workload-level |pred - act| / act on the speedup."""
        if self.actual_speedup <= 0:
            return 0.0
        return abs(self.predicted_speedup - self.actual_speedup) \
            / self.actual_speedup

    @property
    def winner_match(self) -> bool:
        """True when the estimator and the simulator rank the same STL
        first (vacuously true with fewer than two selected loops)."""
        if len(self.stls) < 2:
            return True
        return self.winner_predicted == self.winner_actual

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "category": self.category,
            "predicted_speedup": round(self.predicted_speedup, 4),
            "actual_speedup": round(self.actual_speedup, 4),
            "rel_error": round(self.rel_error, 4),
            "coverage": round(self.coverage, 4),
            "winner_predicted": self.winner_predicted,
            "winner_actual": self.winner_actual,
            "winner_match": self.winner_match,
            "stls": [s.to_dict() for s in self.stls],
        }


def conformance_row(name: str, category: str, report
                    ) -> WorkloadConformance:
    """Distill one :class:`JrpmReport` into its oracle row."""
    stls: List[STLConformance] = []
    for sel in report.selection.selected:
        tls = report.tls_results.get(sel.loop_id)
        if tls is None:
            continue
        stls.append(STLConformance(
            sel.loop_id, sel.predicted_cycles, tls.parallel_cycles,
            sel.sequential_cycles))
    winner_predicted = winner_actual = None
    if stls:
        winner_predicted = max(
            stls, key=lambda s: (s.predicted_savings, -s.loop_id)
        ).loop_id
        winner_actual = max(
            stls, key=lambda s: (s.actual_savings, -s.loop_id)
        ).loop_id
    return WorkloadConformance(
        name, category, report.predicted_speedup,
        report.actual_speedup, report.coverage, stls,
        winner_predicted, winner_actual)


def oracle_task(workload: Workload, config: HydraConfig = DEFAULT_HYDRA,
                simulate_tls: bool = True,
                cache: Optional[ArtifactCache] = None,
                **jrpm_kwargs) -> WorkloadConformance:
    """Fleet task: one workload through the pipeline, distilled.

    Module-level so parallel fleets can pickle it by reference.
    """
    report = Jrpm(source=workload.source(), name=workload.name,
                  config=config, cache=cache, **jrpm_kwargs
                  ).run(simulate_tls=simulate_tls)
    return conformance_row(workload.name, workload.category, report)


class OracleReport:
    """The whole fleet's conformance outcome."""

    def __init__(self, rows: List, error_bound: float,
                 known_outliers: Optional[Dict[str, float]] = None,
                 known_mismatches: Optional[frozenset] = None):
        self.rows = rows
        self.error_bound = error_bound
        self.known_outliers = dict(KNOWN_ERROR_OUTLIERS
                                   if known_outliers is None
                                   else known_outliers)
        self.known_mismatches = frozenset(
            KNOWN_WINNER_MISMATCHES if known_mismatches is None
            else known_mismatches)

    @property
    def ok_rows(self) -> List[WorkloadConformance]:
        return [r for r in self.rows if r.ok]

    @property
    def failed_rows(self) -> List:
        return [r for r in self.rows if not r.ok]

    @property
    def max_error(self) -> float:
        return max((r.rel_error for r in self.ok_rows), default=0.0)

    @property
    def mean_error(self) -> float:
        rows = self.ok_rows
        if not rows:
            return 0.0
        return sum(r.rel_error for r in rows) / len(rows)

    def bound_for(self, name: str) -> float:
        return self.known_outliers.get(name, self.error_bound)

    def violations(self) -> List[str]:
        """Every broken conformance property, as human-readable lines
        (empty list = the gate passes)."""
        problems: List[str] = []
        for row in self.rows:
            if not row.ok:
                problems.append("%s: pipeline failed: %s"
                                % (row.name, row.error))
                continue
            bound = self.bound_for(row.name)
            if row.rel_error > bound:
                problems.append(
                    "%s: prediction error %.1f%% exceeds the %.1f%% "
                    "bound (predicted %.2fx, actual %.2fx)"
                    % (row.name, 100 * row.rel_error, 100 * bound,
                       row.predicted_speedup, row.actual_speedup))
            if not row.winner_match \
                    and row.name not in self.known_mismatches:
                problems.append(
                    "%s: estimator winner L%s but simulator winner L%s"
                    % (row.name, row.winner_predicted,
                       row.winner_actual))
        return problems

    def to_dict(self) -> Dict:
        return {
            "kind": "oracle",
            "error_bound": self.error_bound,
            "known_outliers": self.known_outliers,
            "known_mismatches": sorted(self.known_mismatches),
            "workloads": [r.to_dict() if r.ok
                          else {"name": r.name, "ok": False,
                                "error": r.error}
                          for r in self.rows],
            "max_error": round(self.max_error, 4),
            "mean_error": round(self.mean_error, 4),
            "violations": self.violations(),
        }

    def render(self) -> str:
        lines = ["%-14s %9s %9s %7s %7s  %s"
                 % ("workload", "predicted", "actual", "err%",
                    "cover%", "winner")]
        for row in self.rows:
            if not row.ok:
                lines.append("%-14s FAILED: %s" % (row.name, row.error))
                continue
            winner = "-" if len(row.stls) < 2 else (
                "same" if row.winner_match else
                "L%s!=L%s" % (row.winner_predicted, row.winner_actual))
            lines.append("%-14s %8.2fx %8.2fx %6.1f%% %6.1f%%  %s"
                         % (row.name, row.predicted_speedup,
                            row.actual_speedup, 100 * row.rel_error,
                            100 * row.coverage, winner))
        lines.append("max error %.1f%%, mean %.1f%% over %d workloads"
                     % (100 * self.max_error, 100 * self.mean_error,
                        len(self.ok_rows)))
        return "\n".join(lines)


def run_oracle(workloads: Optional[Iterable[Workload]] = None,
               config: HydraConfig = DEFAULT_HYDRA,
               jobs: int = 1,
               cache: Optional[ArtifactCache] = None,
               error_bound: float = DEFAULT_ERROR_BOUND,
               known_outliers: Optional[Dict[str, float]] = None,
               known_mismatches: Optional[frozenset] = None,
               **executor_kwargs) -> OracleReport:
    """Run the differential oracle over ``workloads`` (default: all).

    The fleet fans out through :class:`FleetExecutor` (``jobs`` worker
    processes; pass a disk-backed ``cache`` to share pipeline
    artifacts).  Failed pipelines surface as failed rows rather than
    aborting the sweep.
    """
    fleet = list(workloads) if workloads is not None else all_workloads()
    executor = FleetExecutor(jobs=jobs, config=config, cache=cache,
                             on_error="row", task=oracle_task,
                             **executor_kwargs)
    result = executor.run(fleet)
    return OracleReport(list(result.rows), error_bound,
                        known_outliers=known_outliers,
                        known_mismatches=known_mismatches)
