"""The Jrpm dynamic parallelization pipeline (paper Figure 1).

One :class:`Jrpm` object drives the five stages for a program:

1. compile minijava source to bytecode and identify potential STLs from
   the CFG (all natural loops, Section 4.1);
2. annotate the bytecode and run it sequentially with the TEST device
   attached, collecting per-STL statistics;
3. post-process: Equation 1 speedup estimates, Equation 2 nest
   selection;
4. recompile the chosen STLs speculatively (dependence-eliminating
   transformations + Table 2 routines);
5. run the speculative code — here, the trace-driven TLS timing
   simulator — yielding the "actual" performance Figure 11 compares
   against the prediction.

The returned :class:`JrpmReport` carries every intermediate product so
benches and tests can regenerate each of the paper's tables and figures.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bytecode.program import Program
from repro.cfg.candidates import CandidateTable, find_candidates
from repro.errors import PipelineError
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jit.annotate import (
    AnnotatedProgram,
    AnnotationLevel,
    annotate_program,
)
from repro.jit.speculative import STLCompilation, compile_stl
from repro.jrpm.cache import (
    STAGE_ANNOTATE,
    STAGE_COMPILE,
    STAGE_PROFILE,
    STAGE_SEQUENTIAL,
    ArtifactCache,
    cache_key,
    profile_config_key,
)
from repro.jrpm.runtime import ProfilingRuntime
from repro.jrpm.slowdown import AnnotationCounter, SlowdownBreakdown
from repro.lang.codegen import compile_source
from repro.models import get_model, resolve_models
from repro.runtime.costs import DEFAULT_COSTS, CostModel
from repro.runtime.events import (
    ColumnarRecording,
    MulticastListener,
    RecordingListener,
)
from repro.runtime.interpreter import Interpreter, RunResult, run_program
from repro.runtime.tracejit import resolve_trace_jit
from repro.tls.engine import TraceEngine
from repro.tls.simulator import TLSResult, simulate_stl
from repro.tls.stats import ProgramTLSOutcome
from repro.tls.thread_trace import split_trace
from repro.tracer.device import TestDevice
from repro.tracer.extended import ExtendedTestDevice
from repro.tracer.selector import SelectionResult, select_stls


class JrpmReport:
    """Everything one pipeline run produced."""

    def __init__(self, name: str):
        self.name = name
        self.program: Optional[Program] = None
        self.candidates: Optional[CandidateTable] = None
        self.annotated: Optional[AnnotatedProgram] = None
        self.device: Optional[TestDevice] = None
        #: per-pass optimizer counters (dict; None when optimize=off)
        self.optimize_stats: Optional[Dict[str, int]] = None
        self.sequential: Optional[RunResult] = None
        self.profiled: Optional[RunResult] = None
        self.slowdown: Optional[SlowdownBreakdown] = None
        self.selection: Optional[SelectionResult] = None
        self.compilations: Dict[int, STLCompilation] = {}
        self.tls_results: Dict[int, TLSResult] = {}
        self.outcome: Optional[ProgramTLSOutcome] = None
        #: the recorded event trace of the profiled run (columnar by
        #: default); sweeps can replay it without re-profiling
        self.recording = None
        #: the trace engine the TLS replay ran through (None when the
        #: legacy row recording was used or TLS was skipped)
        self.engine: Optional[TraceEngine] = None
        #: execution-model names that competed for each loop (None =
        #: legacy hydra-tls-only run)
        self.models: Optional[tuple] = None

    # -- headline numbers -------------------------------------------------

    @property
    def sequential_cycles(self) -> int:
        return self.sequential.cycles if self.sequential else 0

    @property
    def profiling_slowdown(self) -> float:
        return self.slowdown.slowdown if self.slowdown else 1.0

    @property
    def predicted_speedup(self) -> float:
        return self.selection.predicted_speedup if self.selection else 1.0

    @property
    def actual_speedup(self) -> float:
        return self.outcome.actual_speedup if self.outcome else 1.0

    @property
    def coverage(self) -> float:
        return self.selection.coverage if self.selection else 0.0


class Jrpm:
    """The runtime parallelizing machine for one program."""

    def __init__(self, source: Optional[str] = None,
                 program: Optional[Program] = None,
                 name: str = "program",
                 config: HydraConfig = DEFAULT_HYDRA,
                 cost_model: Optional[CostModel] = None,
                 level: AnnotationLevel = AnnotationLevel.OPTIMIZED,
                 extended: bool = False,
                 optimize: bool = False,
                 min_speedup: float = 1.05,
                 convergence_threshold: int = 1000,
                 max_instructions: int = 200_000_000,
                 cache: Optional[ArtifactCache] = None,
                 columnar: bool = True,
                 stage_hook=None,
                 trace_jit: Optional[bool] = None,
                 models=None):
        if (source is None) == (program is None):
            raise PipelineError(
                "provide exactly one of source= or program=")
        self.name = name
        self._source = source
        self._program = program
        #: artifact cache for the compile/annotate/sequential/profile
        #: stages; only effective in source= mode (a pre-built Program
        #: has no content-addressable identity)
        self.cache = cache if source is not None else None
        self.config = config
        self.cost_model = cost_model
        self.level = level
        self.extended = extended
        #: run the microJIT scalar optimizer before analysis
        self.optimize = optimize
        self.min_speedup = min_speedup
        #: profiled threads after which a loop's analysis is disabled
        #: dynamically (Section 5.2); None profiles the whole run
        self.convergence_threshold = convergence_threshold
        self.max_instructions = max_instructions
        #: record the profiled run into the columnar (SoA) trace layout
        #: and run the TLS replay through the memoizing TraceEngine;
        #: False falls back to the legacy row-of-tuples recording (kept
        #: for equivalence testing)
        self.columnar = columnar
        #: optional callable invoked with each stage's name as it
        #: begins (before any cache fetch) — the fleet's fault-
        #: injection harness hangs off this
        self.stage_hook = stage_hook
        #: run the interpreter with the trace-recording superblock JIT
        #: (None consults JRPM_TRACE_JIT, default on); resolved eagerly
        #: so cache keys reflect the effective value, never the env
        self.trace_jit = resolve_trace_jit(trace_jit)
        #: execution models competing per loop ("all", a name list, or
        #: None for the legacy hydra-tls-only pipeline); resolved
        #: eagerly so unknown names fail at construction
        self.models = resolve_models(models)

    # -- stages ------------------------------------------------------------

    def run(self, simulate_tls: bool = True) -> JrpmReport:
        """Execute the full pipeline; see the module docstring."""
        report = JrpmReport(self.name)
        cache = self.cache
        hook = self.stage_hook or (lambda stage: None)
        cost_model = self.cost_model if self.cost_model is not None \
            else DEFAULT_COSTS

        # stage 1: compile + candidate STLs
        hook(STAGE_COMPILE)
        ckey = hit = art = None
        if cache is not None:
            # "c2": the artifact grew an optimize_stats member when the
            # pass pipeline landed — older 2-tuple blobs must not alias
            ckey = cache_key(STAGE_COMPILE, self._source, self.optimize,
                             "c2")
            hit, art = cache.fetch(STAGE_COMPILE, ckey)
        if hit:
            program, candidates, opt_stats = art
        else:
            program = self._program if self._program is not None \
                else compile_source(self._source)
            opt_stats = None
            if self.optimize:
                from repro.jit.optimize import optimize_program
                program = program.copy()
                opt_stats = optimize_program(program).to_dict()
            candidates = find_candidates(program)
            if cache is not None:
                cache.store(STAGE_COMPILE, ckey,
                            (program, candidates, opt_stats))
        report.program = program
        report.candidates = candidates
        report.optimize_stats = opt_stats

        # stage 1b: annotate.  The artifact is stored before the
        # profiled run, which patches converged READSTATS sites in the
        # live annotated code — the cache must hold the pristine form.
        hook(STAGE_ANNOTATE)
        akey = annotated = None
        hit = False
        if cache is not None:
            akey = cache_key(STAGE_ANNOTATE, ckey, self.level)
            hit, annotated = cache.fetch(STAGE_ANNOTATE, akey)
        if not hit:
            annotated = annotate_program(program, candidates, self.level)
            if cache is not None:
                cache.store(STAGE_ANNOTATE, akey, annotated)
        report.annotated = annotated

        # baseline sequential run (the "original code")
        hook(STAGE_SEQUENTIAL)
        sequential = None
        hit = False
        if cache is not None:
            # trace_jit is part of the key: cycles are identical by
            # contract, but the artifact carries the JIT counter
            # snapshot, so the two modes must never alias
            skey = cache_key(STAGE_SEQUENTIAL, ckey, cost_model,
                             self.max_instructions, self.trace_jit)
            hit, sequential = cache.fetch(STAGE_SEQUENTIAL, skey)
        if not hit:
            sequential = run_program(
                program, cost_model=self.cost_model,
                max_instructions=self.max_instructions,
                trace_jit=self.trace_jit)
            if cache is not None:
                cache.store(STAGE_SEQUENTIAL, skey, sequential)
        report.sequential = sequential

        # stage 2: profiled run with TEST attached.  The key projects
        # the config onto the fields the device actually reads, so
        # selection-only knobs (n_cpus, Table 2 overheads) don't force
        # a re-profile.  The trace layout is part of the key: columnar
        # and row recordings are distinct artifacts.
        hook(STAGE_PROFILE)
        hit = False
        if cache is not None:
            pkey = cache_key(
                STAGE_PROFILE, akey, cost_model,
                profile_config_key(self.config),
                self.convergence_threshold, self.extended,
                self.max_instructions,
                "columnar" if self.columnar else "rows",
                self.trace_jit,
                # artifact-format version: annotation tallies now live
                # on the device instead of a fourth artifact element
                "art2")
            hit, art = cache.fetch(STAGE_PROFILE, pkey)
        if hit:
            profiled, device, recording = art
        else:
            device_cls = ExtendedTestDevice if self.extended \
                else TestDevice
            device = device_cls(self.config)
            device.convergence_threshold = self.convergence_threshold
            for lid, cand in annotated.annotated_loops.items():
                device.register_loop_locals(lid, cand.tracked_locals)
            recording = ColumnarRecording() if self.columnar \
                else RecordingListener()
            listener = MulticastListener([device, recording])
            interp = Interpreter(
                annotated.program, cost_model=self.cost_model,
                listener=listener, max_instructions=self.max_instructions,
                trace_jit=self.trace_jit)
            runtime = ProfilingRuntime(annotated.program, interp)
            device.on_converged = runtime.on_converged
            profiled = interp.run()
            device.finish()
            # the convergence callback is a bound method of the
            # runtime, which holds the whole interpreter (and with it
            # any linked trace-JIT superblocks) — drop it now that
            # profiling is over so reports stay picklable across the
            # fleet's process boundary
            device.on_converged = None
            if cache is not None:
                cache.store(STAGE_PROFILE, pkey,
                            (profiled, device, recording))
        report.profiled = profiled
        report.device = device
        report.recording = recording
        report.slowdown = SlowdownBreakdown(
            report.sequential.cycles, report.profiled.cycles,
            AnnotationCounter.from_device(device))

        if report.profiled.return_value != report.sequential.return_value:
            raise PipelineError(
                "annotation changed program semantics (%r vs %r)"
                % (report.profiled.return_value,
                   report.sequential.return_value))

        # stage 3: select STLs (statistics are measured on the profiled
        # run, whose cycle counts include annotation overhead; the same
        # timebase is used for the TLS replay, keeping the comparison
        # consistent)
        report.selection = select_stls(
            device, report.profiled.cycles, self.config,
            min_speedup=self.min_speedup, models=self.models)
        report.models = self.models

        # stages 4 + 5: speculative recompilation + execution under
        # each loop's winning model.  Columnar recordings replay
        # through the memoizing TraceEngine (zero-copy windows, kernels
        # shared across every selected STL and across config sweeps
        # against the same report).
        if simulate_tls:
            engine = None
            if isinstance(recording, ColumnarRecording):
                engine = TraceEngine(recording)
                report.engine = engine
            for sel in report.selection.selected:
                cand = report.candidates.by_id.get(sel.loop_id)
                if cand is None:
                    continue
                comp = compile_stl(cand, self.config)
                report.compilations[sel.loop_id] = comp
                if self.models is not None:
                    model = get_model(getattr(sel, "model", "hydra-tls"))
                    entries = engine.split(sel.loop_id) \
                        if engine is not None \
                        else split_trace(recording, sel.loop_id)
                    report.tls_results[sel.loop_id] = model.simulate(
                        comp, entries, self.config, engine=engine)
                elif engine is not None:
                    report.tls_results[sel.loop_id] = engine.simulate(
                        comp, self.config)
                else:
                    entries = split_trace(recording, sel.loop_id)
                    report.tls_results[sel.loop_id] = simulate_stl(
                        comp, entries, self.config)
            report.outcome = ProgramTLSOutcome(
                report.selection, report.tls_results)
        return report

    def measure_slowdown(self, level: AnnotationLevel
                         ) -> SlowdownBreakdown:
        """Run only the profiling-slowdown measurement at one annotation
        level (Figure 6's bars)."""
        program = self._program if self._program is not None \
            else compile_source(self._source)
        candidates = find_candidates(program)
        annotated = annotate_program(program, candidates, level)
        base = run_program(program, cost_model=self.cost_model,
                           max_instructions=self.max_instructions,
                           trace_jit=self.trace_jit)
        device = TestDevice(self.config)
        device.convergence_threshold = self.convergence_threshold
        for lid, cand in annotated.annotated_loops.items():
            device.register_loop_locals(lid, cand.tracked_locals)
        interp = Interpreter(
            annotated.program, cost_model=self.cost_model,
            listener=device,
            max_instructions=self.max_instructions,
            trace_jit=self.trace_jit)
        runtime = ProfilingRuntime(annotated.program, interp)
        device.on_converged = runtime.on_converged
        profiled = interp.run()
        return SlowdownBreakdown(base.cycles, profiled.cycles,
                                 AnnotationCounter.from_device(device))


def run_pipeline(source: str, name: str = "program",
                 **kwargs) -> JrpmReport:
    """Compile-and-run convenience wrapper around :class:`Jrpm`."""
    return Jrpm(source=source, name=name, **kwargs).run()
