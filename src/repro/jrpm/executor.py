"""Parallel fleet execution with bounded-failure recovery.

The Section 6 evaluation is embarrassingly parallel: each benchmark's
pipeline run is independent of every other's.  :class:`FleetExecutor`
fans the fleet over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping three properties the serial loop had for free:

* **deterministic ordering** — rows come back in workload order no
  matter which worker finishes first (results are keyed by submission
  index, not completion order);
* **failure isolation** — with ``on_error="row"`` a crashing workload
  becomes a :class:`~repro.jrpm.batch.FleetErrorRow` carrying the
  worker's traceback instead of killing the whole sweep;
  ``on_error="raise"`` (the default, matching the historical serial
  semantics) re-raises the first failure in *workload* order after the
  sweep drains, with the merged cache/execution counters attached to
  the raised :class:`~repro.errors.PipelineError` (``.cache_stats`` /
  ``.exec_stats``);
* **shared caching** — workers cannot share an in-memory
  :class:`~repro.jrpm.cache.ArtifactCache`, so parallel runs pass a
  ``cache_dir`` and each worker opens the same disk-backed cache; the
  per-worker hit/miss/corrupt counters are shipped back and merged
  into the :class:`~repro.jrpm.batch.FleetResult`.

Failure model
-------------
The parallel path mirrors how the traced systems themselves treat
misspeculation: a failure is squashed and re-executed with bounded
cost, never propagated.  Work is submitted one future per workload
(at most ``jobs`` in flight, so a submitted task is running, not
queued — which is what makes wall-clock deadlines meaningful):

* **worker crash** — a worker dying mid-task (OOM, segfault, an
  injected ``os._exit``) breaks the pool; every in-flight workload is
  charged an attempt (the pool cannot attribute the crash) and
  resubmitted to a freshly spawned pool, so the crasher converges to a
  ``FleetErrorRow`` once its retries exhaust while bystanders complete
  normally;
* **timeout** — a workload exceeding ``timeout`` seconds of wall
  clock is abandoned: the pool's processes are terminated (the hung
  interpreter cannot be interrupted politely), the timed-out workload
  is charged an attempt, and the other in-flight workloads are
  resubmitted *without* being charged (the expiry attributes blame
  precisely);
* **retry** — a failed attempt (exception, crash, timeout) is retried
  up to ``retries`` times with exponential backoff plus jitter
  (``backoff * 2**(attempt-1)``, +0..25% jitter) before the workload
  is declared failed.

``jobs=1`` executes inline in the calling process — no pool, no
pickling, no timeouts (there is no second process to do the killing) —
and is byte-identical to the historical ``run_fleet`` loop, retries
aside.

Deterministic tests drive every one of these paths through
:class:`~repro.jrpm.faults.FaultPlan` (``fault_plan=``), which injects
worker kills, hangs, in-stage exceptions, and cache-blob truncation.
"""

from __future__ import annotations

import heapq
import random
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import PipelineError
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.cache import ArtifactCache, diff_stats, merge_stats
from repro.jrpm.faults import FaultPlan
from repro.jrpm.pipeline import Jrpm
from repro.workloads.registry import Workload, all_workloads


def _execute_workload(payload: Tuple) -> Tuple:
    """Pool worker: run one workload's pipeline.

    Module-level (picklable) and fully self-describing: the payload
    carries everything needed so workers built by ``spawn`` work as
    well as ``fork``.  Returns ``(index, row_or_error, stats)`` where
    ``row_or_error`` is a FleetRow on success or an ``(exc_repr,
    traceback_text)`` pair on failure, and ``stats`` is the worker
    cache's hit/miss/corrupt counter delta (or None without a cache).
    """
    from repro.jrpm.batch import FleetRow

    (index, workload, config, simulate_tls, cache_dir, fault_plan,
     task, jrpm_kwargs) = payload
    cache = ArtifactCache(directory=cache_dir) \
        if cache_dir is not None else None
    try:
        kwargs = dict(jrpm_kwargs)
        if fault_plan is not None:
            fault_plan.on_workload_start(workload.name, cache_dir)
            kwargs.setdefault("stage_hook",
                              fault_plan.stage_hook(workload.name))
        if task is not None:
            row = task(workload, config=config,
                       simulate_tls=simulate_tls, cache=cache,
                       **kwargs)
        else:
            jrpm = Jrpm(source=workload.source(), name=workload.name,
                        config=config, cache=cache, **kwargs)
            report = jrpm.run(simulate_tls=simulate_tls)
            row = FleetRow(workload, report)
        return index, row, cache.snapshot() if cache else None
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        return (index, (repr(exc), traceback.format_exc()),
                cache.snapshot() if cache else None)


class FleetExecutor:
    """Runs a fleet of workloads serially or across worker processes.

    Parameters mirror :func:`~repro.jrpm.batch.run_fleet`; extra
    keyword arguments flow into every :class:`Jrpm`.

    ``timeout`` bounds each workload attempt's wall-clock seconds
    (parallel path only); ``retries`` re-runs a failed/crashed/timed-
    out workload up to N extra times with ``backoff``-seconds
    exponential backoff; ``fault_plan`` injects deterministic failures
    for testing (see :mod:`repro.jrpm.faults`).
    """

    def __init__(self, jobs: int = 1,
                 config: HydraConfig = DEFAULT_HYDRA,
                 simulate_tls: bool = True,
                 cache: Optional[ArtifactCache] = None,
                 on_error: str = "raise",
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 backoff: float = 0.25,
                 fault_plan: Optional[FaultPlan] = None,
                 persistent: bool = False,
                 rng: Optional[random.Random] = None,
                 task: Optional[Callable] = None,
                 **jrpm_kwargs):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        if on_error not in ("raise", "row"):
            raise ValueError(
                "on_error must be 'raise' or 'row', got %r" % on_error)
        if jobs > 1 and cache is not None and cache.directory is None:
            raise ValueError(
                "parallel fleets need a disk-backed cache "
                "(ArtifactCache(directory=...)) so worker processes "
                "can share artifacts")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive, got %r" % timeout)
        if retries < 0:
            raise ValueError("retries must be >= 0, got %d" % retries)
        if backoff < 0:
            raise ValueError("backoff must be >= 0, got %r" % backoff)
        self.jobs = jobs
        self.config = config
        self.simulate_tls = simulate_tls
        self.cache = cache
        self.on_error = on_error
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.fault_plan = fault_plan
        #: keep the worker pool alive across :meth:`run` calls (the
        #: analysis service submits many fleets through one executor;
        #: respawning processes per request would forfeit the warm
        #: start).  Callers own the lifetime: call :meth:`close` (or
        #: use the executor as a context manager) when done.  run()
        #: itself is not thread-safe — serialize calls (the service's
        #: single dispatcher thread does).
        self.persistent = persistent
        #: per-workload unit of work.  ``None`` runs the Jrpm pipeline
        #: and yields a FleetRow; the conformance campaign substitutes
        #: its differential checker.  The callable receives
        #: ``(workload, config=, simulate_tls=, cache=, **jrpm_kwargs)``
        #: and must return a row object exposing ``.ok`` and ``.name``;
        #: for parallel fleets it must be a picklable module-level
        #: function (workers import it by reference).
        self.task = task
        self._pool: Optional[ProcessPoolExecutor] = None
        #: jitter source for retry backoff; pass ``random.Random(seed)``
        #: to make retry timing deterministic in tests
        self._rng = rng if rng is not None else random
        self.jrpm_kwargs = jrpm_kwargs

    # -- shared helpers ----------------------------------------------------

    def _retry_delay(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1``: exponential in the
        attempts already burned, with up-to-25% jitter so a fleet of
        retries doesn't stampede the pool in lockstep."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * (2 ** (attempt - 1)) \
            * (1.0 + 0.25 * self._rng.random())

    # -- the two execution strategies -------------------------------------

    def _run_serial(self, workloads: List[Workload],
                    config: HydraConfig, simulate_tls: bool,
                    jrpm_kwargs: Dict) -> Tuple[List, Dict, Dict]:
        from repro.jrpm.batch import FleetErrorRow, FleetRow

        cache = self.cache
        cache_dir = cache.directory if cache else None
        before = cache.snapshot() if cache else {}
        exec_stats = {"retries": 0, "timeouts": 0, "crashes": 0}
        rows: List = []
        for w in workloads:
            attempt = 0
            while True:
                attempt += 1
                try:
                    kwargs = dict(jrpm_kwargs)
                    if self.fault_plan is not None:
                        self.fault_plan.on_workload_start(
                            w.name, cache_dir, in_worker=False)
                        kwargs.setdefault(
                            "stage_hook",
                            self.fault_plan.stage_hook(w.name))
                    if self.task is not None:
                        rows.append(self.task(
                            w, config=config,
                            simulate_tls=simulate_tls, cache=cache,
                            **kwargs))
                    else:
                        jrpm = Jrpm(source=w.source(), name=w.name,
                                    config=config, cache=cache,
                                    **kwargs)
                        rows.append(FleetRow(
                            w, jrpm.run(simulate_tls=simulate_tls)))
                    break
                except Exception as exc:  # noqa: BLE001 - isolated per row
                    if attempt <= self.retries:
                        exec_stats["retries"] += 1
                        delay = self._retry_delay(attempt)
                        if delay:
                            time.sleep(delay)
                        continue
                    if self.on_error == "raise":
                        raise
                    rows.append(FleetErrorRow(
                        w, repr(exc), traceback.format_exc(),
                        attempts=attempt))
                    break
        stats = diff_stats(cache.snapshot(), before) if cache else {}
        return rows, stats, exec_stats

    def _spawn_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _acquire_pool(self) -> ProcessPoolExecutor:
        """The pool for this run: the resident one (persistent mode,
        warm from earlier runs) or a fresh throwaway."""
        if self.persistent and self._pool is not None:
            return self._pool
        return self._spawn_pool()

    def close(self) -> None:
        """Tear down the resident pool (persistent mode).  Idempotent;
        a later :meth:`run` simply spawns a new pool."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 - broken pools may refuse
                pass

    def __enter__(self) -> "FleetExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _respawn_pool(self, pool: ProcessPoolExecutor
                      ) -> ProcessPoolExecutor:
        """Tear a (broken or hung) pool down hard and start fresh.

        ``_processes`` is private API, but it is the only handle on a
        worker stuck inside an interpreter loop — shutdown() alone
        would block behind it forever.
        """
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.terminate()
        except Exception:  # noqa: BLE001 - already-dead workers
            pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken pools may refuse
            pass
        return self._spawn_pool()

    def _run_parallel(self, workloads: List[Workload],
                      config: HydraConfig, simulate_tls: bool,
                      jrpm_kwargs: Dict) -> Tuple[List, Dict, Dict]:
        cache_dir = self.cache.directory if self.cache else None
        count = len(workloads)
        max_attempts = self.retries + 1
        #: terminal outcome per index: ("row", FleetRow) or
        #: ("error", exc_repr, trace, attempts)
        results: List = [None] * count
        stats: Dict = {}
        exec_stats = {"retries": 0, "timeouts": 0, "crashes": 0}
        attempts = [0] * count
        pending = deque(range(count))     # ready to (re)submit
        delayed: List[Tuple[float, int]] = []  # backoff heap
        in_flight: Dict = {}              # future -> (index, deadline)
        pool = self._acquire_pool()

        def payload(index: int) -> Tuple:
            return (index, workloads[index], config,
                    simulate_tls, cache_dir, self.fault_plan,
                    self.task, jrpm_kwargs)

        def requeue_or_fail(index: int, error: str) -> None:
            """A charged attempt failed; back off and retry, or write
            the terminal error outcome."""
            if attempts[index] < max_attempts:
                exec_stats["retries"] += 1
                delay = self._retry_delay(attempts[index])
                heapq.heappush(delayed,
                               (time.monotonic() + delay, index))
            else:
                results[index] = ("error", error, "", attempts[index])

        try:
            while pending or delayed or in_flight:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, index = heapq.heappop(delayed)
                    pending.append(index)
                while pending and len(in_flight) < self.jobs:
                    index = pending.popleft()
                    attempts[index] += 1
                    try:
                        future = pool.submit(_execute_workload,
                                             payload(index))
                    except BrokenProcessPool:
                        pool = self._respawn_pool(pool)
                        future = pool.submit(_execute_workload,
                                             payload(index))
                    deadline = (time.monotonic() + self.timeout) \
                        if self.timeout is not None else None
                    in_flight[future] = (index, deadline)
                if not in_flight:
                    if delayed:  # only backoff waits remain
                        time.sleep(max(
                            0.0, delayed[0][0] - time.monotonic()))
                    continue

                wake_at = [d for _, d in in_flight.values()
                           if d is not None]
                if delayed:
                    wake_at.append(delayed[0][0])
                wait_for = max(0.0, min(wake_at) - time.monotonic()) \
                    if wake_at else None
                done, _ = wait(set(in_flight), timeout=wait_for,
                               return_when=FIRST_COMPLETED)

                pool_broke = False
                for future in done:
                    index, _ = in_flight.pop(future)
                    try:
                        _, outcome, worker_stats = future.result()
                    except BrokenProcessPool:
                        pool_broke = True
                        requeue_or_fail(
                            index,
                            "worker process died (BrokenProcessPool)")
                        continue
                    merge_stats(stats, worker_stats)
                    if isinstance(outcome, tuple):
                        exc_repr, trace = outcome
                        if attempts[index] < max_attempts:
                            exec_stats["retries"] += 1
                            delay = self._retry_delay(attempts[index])
                            heapq.heappush(
                                delayed,
                                (time.monotonic() + delay, index))
                        else:
                            results[index] = ("error", exc_repr, trace,
                                              attempts[index])
                    else:
                        results[index] = ("row", outcome)

                if pool_broke:
                    # the pool cannot say which task killed it, so
                    # every in-flight workload is charged and retried;
                    # the true crasher re-crashes until its retries
                    # exhaust, bystanders complete on the fresh pool
                    exec_stats["crashes"] += 1
                    for future, (index, _) in list(in_flight.items()):
                        requeue_or_fail(
                            index,
                            "worker process died (BrokenProcessPool)")
                    in_flight.clear()
                    pool = self._respawn_pool(pool)
                elif not done and self.timeout is not None:
                    now = time.monotonic()
                    expired = [(future, index)
                               for future, (index, deadline)
                               in in_flight.items()
                               if deadline is not None
                               and deadline <= now]
                    if expired:
                        # hung workers only die with the pool; blame
                        # is exact here, so bystanders requeue with
                        # their attempt refunded
                        exec_stats["timeouts"] += len(expired)
                        expired_futures = {f for f, _ in expired}
                        for future, (index, _) in in_flight.items():
                            if future not in expired_futures:
                                attempts[index] -= 1
                                pending.append(index)
                        for _, index in expired:
                            requeue_or_fail(
                                index,
                                "timed out after %.1fs (attempt %d/%d)"
                                % (self.timeout, attempts[index],
                                   max_attempts))
                        in_flight.clear()
                        pool = self._respawn_pool(pool)
        finally:
            if self.persistent:
                # keep whichever pool survived the run (respawns
                # included) resident for the next submission
                self._pool = pool
            else:
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:  # noqa: BLE001 - broken pools may refuse
                    pass

        return (self._rows_from_results(workloads, results, stats,
                                        exec_stats),
                stats, exec_stats)

    def _rows_from_results(self, workloads: List[Workload],
                           results: List, stats: Dict,
                           exec_stats: Dict) -> List:
        from repro.jrpm.batch import FleetErrorRow

        rows: List = []
        first_error = None
        for w, outcome in zip(workloads, results):
            if outcome[0] == "row":
                rows.append(outcome[1])
                continue
            _, error, trace, used = outcome
            rows.append(FleetErrorRow(w, error, trace, attempts=used))
            if first_error is None:
                first_error = (w, error, trace)
        if first_error is not None and self.on_error == "raise":
            w, error, trace = first_error
            exc = PipelineError(
                "workload %r failed in a fleet worker: %s\n%s"
                % (w.name, error, trace))
            # the sweep drained before raising: completed rows' merged
            # counters ride along for callers that want partial credit
            exc.cache_stats = stats
            exc.exec_stats = exec_stats
            raise exc
        return rows

    # -- entry point -------------------------------------------------------

    def run(self, workloads: Optional[Iterable[Workload]] = None, *,
            config: Optional[HydraConfig] = None,
            simulate_tls: Optional[bool] = None,
            **jrpm_overrides):
        """Execute the fleet; returns a
        :class:`~repro.jrpm.batch.FleetResult` in workload order.

        ``config`` / ``simulate_tls`` / extra keyword arguments
        override the constructor defaults for this run only — a
        persistent executor (the analysis service's) serves requests
        with differing configurations from one warm pool.
        """
        from repro.jrpm.batch import FleetResult

        fleet = list(workloads) if workloads is not None \
            else all_workloads()
        run_config = self.config if config is None else config
        run_tls = self.simulate_tls if simulate_tls is None \
            else simulate_tls
        kwargs = dict(self.jrpm_kwargs)
        kwargs.update(jrpm_overrides)
        if self.jobs == 1:
            rows, stats, exec_stats = self._run_serial(
                fleet, run_config, run_tls, kwargs)
        else:
            rows, stats, exec_stats = self._run_parallel(
                fleet, run_config, run_tls, kwargs)
        return FleetResult(rows, cache_stats=stats,
                           exec_stats=exec_stats)
