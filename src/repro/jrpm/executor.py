"""Parallel fleet execution.

The Section 6 evaluation is embarrassingly parallel: each benchmark's
pipeline run is independent of every other's.  :class:`FleetExecutor`
fans the fleet over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping three properties the serial loop had for free:

* **deterministic ordering** — rows come back in workload order no
  matter which worker finishes first (results are keyed by submission
  index, not completion order);
* **failure isolation** — with ``on_error="row"`` a crashing workload
  becomes a :class:`~repro.jrpm.batch.FleetErrorRow` carrying the
  worker's traceback instead of killing the whole sweep;
  ``on_error="raise"`` (the default, matching the historical serial
  semantics) re-raises the first failure in workload order;
* **shared caching** — workers cannot share an in-memory
  :class:`~repro.jrpm.cache.ArtifactCache`, so parallel runs pass a
  ``cache_dir`` and each worker opens the same disk-backed cache; the
  per-worker hit/miss counters are shipped back and merged into the
  :class:`~repro.jrpm.batch.FleetResult`.

``jobs=1`` executes inline in the calling process — no pool, no
pickling — and is byte-identical to the historical ``run_fleet`` loop.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PipelineError
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.cache import ArtifactCache, diff_stats, merge_stats
from repro.jrpm.pipeline import Jrpm
from repro.workloads.registry import Workload, all_workloads


def _execute_workload(payload: Tuple) -> Tuple:
    """Pool worker: run one workload's pipeline.

    Module-level (picklable) and fully self-describing: the payload
    carries everything needed so workers built by ``spawn`` work as
    well as ``fork``.  Returns ``(index, row_or_error, stats)`` where
    ``row_or_error`` is a FleetRow on success or an ``(exc_repr,
    traceback_text)`` pair on failure, and ``stats`` is the worker
    cache's hit/miss counter delta (or None without a cache).
    """
    from repro.jrpm.batch import FleetRow

    (index, workload, config, simulate_tls, cache_dir,
     jrpm_kwargs) = payload
    cache = ArtifactCache(directory=cache_dir) \
        if cache_dir is not None else None
    try:
        jrpm = Jrpm(source=workload.source(), name=workload.name,
                    config=config, cache=cache, **jrpm_kwargs)
        report = jrpm.run(simulate_tls=simulate_tls)
        row = FleetRow(workload, report)
        return index, row, cache.snapshot() if cache else None
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        return (index, (repr(exc), traceback.format_exc()),
                cache.snapshot() if cache else None)


class FleetExecutor:
    """Runs a fleet of workloads serially or across worker processes.

    Parameters mirror :func:`~repro.jrpm.batch.run_fleet`; extra
    keyword arguments flow into every :class:`Jrpm`.
    """

    def __init__(self, jobs: int = 1,
                 config: HydraConfig = DEFAULT_HYDRA,
                 simulate_tls: bool = True,
                 cache: Optional[ArtifactCache] = None,
                 on_error: str = "raise",
                 **jrpm_kwargs):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        if on_error not in ("raise", "row"):
            raise ValueError(
                "on_error must be 'raise' or 'row', got %r" % on_error)
        if jobs > 1 and cache is not None and cache.directory is None:
            raise ValueError(
                "parallel fleets need a disk-backed cache "
                "(ArtifactCache(directory=...)) so worker processes "
                "can share artifacts")
        self.jobs = jobs
        self.config = config
        self.simulate_tls = simulate_tls
        self.cache = cache
        self.on_error = on_error
        self.jrpm_kwargs = jrpm_kwargs

    # -- the two execution strategies -------------------------------------

    def _run_serial(self, workloads: List[Workload]) -> Tuple[List, Dict]:
        from repro.jrpm.batch import FleetErrorRow, FleetRow

        cache = self.cache
        before = cache.snapshot() if cache else {}
        rows: List = []
        for w in workloads:
            try:
                jrpm = Jrpm(source=w.source(), name=w.name,
                            config=self.config, cache=cache,
                            **self.jrpm_kwargs)
                rows.append(
                    FleetRow(w, jrpm.run(simulate_tls=self.simulate_tls)))
            except Exception as exc:  # noqa: BLE001 - isolated per row
                if self.on_error == "raise":
                    raise
                rows.append(FleetErrorRow(w, repr(exc),
                                          traceback.format_exc()))
        stats = diff_stats(cache.snapshot(), before) if cache else {}
        return rows, stats

    def _run_parallel(self, workloads: List[Workload]
                      ) -> Tuple[List, Dict]:
        from repro.jrpm.batch import FleetErrorRow

        cache_dir = self.cache.directory if self.cache else None
        payloads = [
            (i, w, self.config, self.simulate_tls, cache_dir,
             self.jrpm_kwargs)
            for i, w in enumerate(workloads)]
        results: List = [None] * len(workloads)
        stats: Dict = {}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            for index, outcome, worker_stats in pool.map(
                    _execute_workload, payloads):
                results[index] = outcome
                merge_stats(stats, worker_stats)

        rows: List = []
        for w, outcome in zip(workloads, results):
            if isinstance(outcome, tuple):  # (exc_repr, traceback)
                exc_repr, trace = outcome
                if self.on_error == "raise":
                    raise PipelineError(
                        "workload %r failed in a fleet worker: %s\n%s"
                        % (w.name, exc_repr, trace))
                rows.append(FleetErrorRow(w, exc_repr, trace))
            else:
                rows.append(outcome)
        # replay the workers' blobs into the parent cache's counters?
        # No: parent-side stats should reflect this fleet run only,
        # which is exactly the merged worker deltas computed above.
        return rows, stats

    # -- entry point -------------------------------------------------------

    def run(self, workloads: Optional[Iterable[Workload]] = None):
        """Execute the fleet; returns a
        :class:`~repro.jrpm.batch.FleetResult` in workload order."""
        from repro.jrpm.batch import FleetResult

        fleet = list(workloads) if workloads is not None \
            else all_workloads()
        if self.jobs == 1:
            rows, stats = self._run_serial(fleet)
        else:
            rows, stats = self._run_parallel(fleet)
        return FleetResult(rows, cache_stats=stats)
