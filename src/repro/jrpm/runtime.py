"""Dynamic annotation disabling (paper Section 5.2).

"When sufficient data has been collected to predict behavior for a STL,
the annotations marking it can be disabled dynamically (e.g.
overwriting JIT compiled code with nop instructions)."

:class:`ProfilingRuntime` implements exactly that: when the TEST device
declares a loop's statistics converged, the runtime overwrites that
loop's ``READSTATS`` sites with ``NOP``s in the live code (saving the
expensive counter drain at every exit) and keeps the interpreter's
cached cycle costs coherent.  The cheap one-cycle markers (``sloop``/
``eoi``/``eloop``/``lwl``/``swl``) cost the same as a ``nop``, so only
``READSTATS`` patching changes timing — just as on real hardware, where
a nop'd annotation still occupies its issue slot.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bytecode.instructions import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.program import Function, Program
from repro.runtime.interpreter import Interpreter


class ProfilingRuntime:
    """Patches converged loops' annotation code during the profiled run."""

    def __init__(self, program: Program, interpreter: Interpreter):
        self._interpreter = interpreter
        #: loop id -> [(function, pc)] of its READSTATS instructions
        self._readstats_sites: Dict[int, List[Tuple[Function, int]]] = {}
        for fn in program.functions.values():
            for pc, ins in enumerate(fn.code):
                if ins.op == Op.READSTATS:
                    self._readstats_sites.setdefault(ins.a, []).append(
                        (fn, pc))
        #: loops whose sites have been patched
        self.patched: List[int] = []

    def on_converged(self, loop_id: int) -> None:
        """Device callback: nop out the loop's READSTATS sites."""
        for fn, pc in self._readstats_sites.get(loop_id, ()):
            fn.code[pc] = Instr(Op.NOP)
            self._interpreter.patch_cost(fn.name, pc, Op.NOP,
                                         fn.code[pc].sub)
        self.patched.append(loop_id)
