"""Profiling-slowdown accounting (Figure 6).

Figure 6 decomposes the annotated run's slowdown into three components:
statistics reads ("Read Counters"), local-variable annotations
("Locals"), and loop-marker annotations ("Annotations").  The
:class:`AnnotationCounter` listener tallies executed annotation
instructions; combined with the cost model this reproduces the stacked
bars for both the base and optimized annotation levels.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.runtime.costs import DEFAULT_COSTS, CostModel
from repro.runtime.events import TraceListener


class AnnotationCounter(TraceListener):
    """Counts executed annotation instructions by category."""

    def __init__(self):
        self.lwl = 0
        self.swl = 0
        self.sloop = 0
        self.eoi = 0
        self.eloop = 0
        self.readstats = 0

    def on_local_load(self, frame_id, slot, cycle, fn="", pc=-1):
        self.lwl += 1

    def on_local_store(self, frame_id, slot, cycle, fn="", pc=-1):
        self.swl += 1

    def on_sloop(self, loop_id, n_locals, cycle, frame_id=-1):
        self.sloop += 1

    def on_eoi(self, loop_id, cycle):
        self.eoi += 1

    def on_eloop(self, loop_id, cycle):
        self.eloop += 1

    def on_readstats(self, loop_id, cycle):
        self.readstats += 1

    def on_mem_batch(self, events):
        for ev in events:
            kind = ev[0]
            if kind == "lld":
                self.lwl += 1
            elif kind == "lst":
                self.swl += 1

    @classmethod
    def from_device(cls, device) -> "AnnotationCounter":
        """Annotation tallies read off a :class:`TestDevice` that saw
        the whole run — the device already counts every category, so
        profiled runs need no separate counting listener in the event
        fan-out."""
        counter = cls()
        counter.lwl = device.n_local_loads
        counter.swl = device.n_local_stores
        counter.sloop = device.n_sloop
        counter.eoi = device.n_eoi
        counter.eloop = device.n_eloop
        counter.readstats = device.n_readstats
        return counter


class SlowdownBreakdown:
    """Figure 6's stacked components for one annotated run."""

    def __init__(self, orig_cycles: int, annotated_cycles: int,
                 counter: AnnotationCounter,
                 costs: CostModel = None):
        costs = costs if costs is not None else DEFAULT_COSTS
        self.orig_cycles = orig_cycles
        self.annotated_cycles = annotated_cycles
        c = costs.op_costs
        #: cycles spent reading statistics out of the device
        self.read_counters_cycles = counter.readstats * c[Op.READSTATS]
        #: cycles spent on lwl/swl local-variable annotations
        self.locals_cycles = (counter.lwl * c[Op.LWL]
                              + counter.swl * c[Op.SWL])
        #: cycles spent on loop markers (and their control-flow glue)
        self.annotations_cycles = (
            self.extra_cycles - self.read_counters_cycles
            - self.locals_cycles)

    @property
    def extra_cycles(self) -> int:
        return self.annotated_cycles - self.orig_cycles

    @property
    def slowdown(self) -> float:
        """Total slowdown factor (1.0 = no overhead)."""
        if self.orig_cycles <= 0:
            return 1.0
        return self.annotated_cycles / self.orig_cycles

    @property
    def read_counters_frac(self) -> float:
        """Fraction of original time spent reading counters."""
        return self.read_counters_cycles / self.orig_cycles \
            if self.orig_cycles else 0.0

    @property
    def locals_frac(self) -> float:
        return self.locals_cycles / self.orig_cycles \
            if self.orig_cycles else 0.0

    @property
    def annotations_frac(self) -> float:
        return self.annotations_cycles / self.orig_cycles \
            if self.orig_cycles else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<SlowdownBreakdown %.1f%% = read %.1f%% + locals %.1f%%"
                " + markers %.1f%%>"
                % (100 * (self.slowdown - 1),
                   100 * self.read_counters_frac,
                   100 * self.locals_frac,
                   100 * self.annotations_frac))
