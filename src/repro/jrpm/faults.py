"""Deterministic fault injection for fleet-execution tests.

The fleet layer promises bounded degradation: a crashed worker, a hung
workload, or a corrupted cache blob costs exactly one row (or one
retry), never the sweep.  Those promises are only worth anything if the
degradation paths are exercised, and none of them occur naturally in a
test run — so this module manufactures them on demand, the same way
``repro.fuzz`` manufactures adversarial programs.

A :class:`FaultPlan` is a small, picklable description of *what goes
wrong, where, and how many times*:

>>> plan = FaultPlan(state_dir)
>>> plan.kill_worker("IDEA")                  # worker os._exit -> BrokenProcessPool
>>> plan.hang_workload("raytrace", 60.0)      # sleep past the fleet timeout
>>> plan.raise_in_stage("BitOps", "profile")  # exception inside one stage
>>> plan.truncate_blob("monteCarlo", "compile")  # corrupt cache blobs on disk
>>> run_fleet(..., jobs=2, fault_plan=plan, retries=1, timeout=4.0)

Each fault fires at most ``times`` times (default once) **across every
process in the fleet**: firing is claimed by atomically creating a
marker file under ``state_dir`` (``O_CREAT | O_EXCL``), which is shared
by all workers, so a killed workload's retry runs clean and tests stay
deterministic.  The executor threads the plan into each worker
(:meth:`on_workload_start`) and into each pipeline via
``Jrpm(stage_hook=...)`` (:meth:`stage_hook`).
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

#: fault kinds
KILL = "kill"          # worker process exits abruptly (simulated OOM/segv)
HANG = "hang"          # workload sleeps, tripping the fleet timeout
RAISE = "raise"        # an exception thrown inside one pipeline stage
TRUNCATE = "truncate"  # on-disk cache blobs for a stage are cut short

#: exit code used by KILL faults; distinctive in worker-death posts
KILL_EXIT_CODE = 113


class FaultInjected(RuntimeError):
    """The exception a RAISE fault throws inside a pipeline stage."""


class WorkerKilled(RuntimeError):
    """Stand-in for a KILL fault outside a worker process (serial
    path), where actually exiting would take the caller down too."""


class Fault:
    """One planned failure: kind, target workload, scope, firing cap."""

    __slots__ = ("fault_id", "kind", "workload", "stage", "seconds",
                 "times")

    def __init__(self, fault_id: str, kind: str, workload: str,
                 stage: Optional[str] = None, seconds: float = 0.0,
                 times: int = 1):
        self.fault_id = fault_id
        self.kind = kind
        self.workload = workload
        self.stage = stage
        self.seconds = seconds
        self.times = times

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Fault %s %s@%s x%d>" % (
            self.fault_id, self.kind, self.workload, self.times)


class FaultPlan:
    """A picklable schedule of injected failures for one fleet run.

    ``state_dir`` must be writable and shared by every process in the
    fleet (workers inherit the path through the task payload); it holds
    one marker file per claimed firing, which is what makes ``times``
    a cross-process guarantee rather than a per-worker one.
    """

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.faults: List[Fault] = []

    # -- authoring ---------------------------------------------------------

    def _add(self, kind: str, workload: str, stage: Optional[str] = None,
             seconds: float = 0.0, times: int = 1) -> "FaultPlan":
        if times < 1:
            raise ValueError("times must be >= 1, got %d" % times)
        fault_id = "%s-%s-%d" % (kind, workload, len(self.faults))
        self.faults.append(Fault(fault_id, kind, workload, stage,
                                 seconds, times))
        return self

    def kill_worker(self, workload: str, times: int = 1) -> "FaultPlan":
        """The worker running ``workload`` dies (``os._exit``) before
        the pipeline starts — the pool observes BrokenProcessPool."""
        return self._add(KILL, workload, times=times)

    def hang_workload(self, workload: str, seconds: float = 60.0,
                      times: int = 1) -> "FaultPlan":
        """``workload`` sleeps ``seconds`` before running, tripping a
        fleet-level wall-clock timeout."""
        return self._add(HANG, workload, seconds=seconds, times=times)

    def raise_in_stage(self, workload: str, stage: str,
                       times: int = 1) -> "FaultPlan":
        """:class:`FaultInjected` is raised when ``workload`` enters
        the named pipeline stage (see ``repro.jrpm.cache.STAGES``)."""
        return self._add(RAISE, workload, stage=stage, times=times)

    def truncate_blob(self, workload: str, stage: str,
                      times: int = 1) -> "FaultPlan":
        """Before ``workload`` runs, every on-disk cache blob of the
        named stage is truncated — the cache must quarantine them and
        recompute instead of crashing."""
        return self._add(TRUNCATE, workload, stage=stage, times=times)

    # -- firing ------------------------------------------------------------

    def _claim(self, fault: Fault) -> bool:
        """Atomically claim one of the fault's firings; False when the
        cap is exhausted.  Safe across processes: each firing is an
        exclusive marker-file creation."""
        for n in range(fault.times):
            marker = os.path.join(
                self.state_dir, "%s.%d" % (fault.fault_id, n))
            try:
                handle = os.open(marker,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False

    def on_workload_start(self, workload: str,
                          cache_dir: Optional[str] = None,
                          in_worker: bool = True) -> None:
        """Fire the pre-run faults targeting ``workload``.

        Called by the executor right before the pipeline runs.  KILL
        exits the process when ``in_worker`` (the parallel path); on
        the serial path it degrades to raising :class:`WorkerKilled`
        so the host process survives.
        """
        for fault in self.faults:
            if fault.workload != workload:
                continue
            if fault.kind == TRUNCATE:
                if cache_dir is not None and self._claim(fault):
                    truncate_stage_blobs(cache_dir, fault.stage)
            elif fault.kind == KILL:
                if self._claim(fault):
                    if in_worker:
                        os._exit(KILL_EXIT_CODE)
                    raise WorkerKilled(
                        "injected worker kill for %r" % workload)
            elif fault.kind == HANG:
                if self._claim(fault):
                    time.sleep(fault.seconds)

    def stage_hook(self, workload: str):
        """A ``Jrpm(stage_hook=...)`` callable firing this plan's
        RAISE faults for ``workload``."""
        def hook(stage: str) -> None:
            for fault in self.faults:
                if (fault.kind == RAISE and fault.workload == workload
                        and fault.stage == stage and self._claim(fault)):
                    raise FaultInjected(
                        "injected failure in stage %r of %r"
                        % (stage, workload))
        return hook


def truncate_stage_blobs(cache_dir: str, stage: Optional[str]) -> int:
    """Truncate every on-disk blob of ``stage`` (all stages when None)
    to half size, guaranteeing a checksum mismatch on the next read.
    Returns the number of files truncated."""
    from repro.jrpm.cache import blob_stage

    count = 0
    try:
        names = sorted(os.listdir(cache_dir))
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".pkl"):
            continue
        path = os.path.join(cache_dir, name)
        if stage is not None and blob_stage(path) != stage:
            continue
        size = os.path.getsize(path)
        os.truncate(path, size // 2)
        count += 1
    return count
