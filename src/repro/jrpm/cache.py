"""Content-addressed pipeline artifact cache.

Configuration sweeps (hardware ablations, dataset sensitivity, hardware
generations) re-run the identical compile -> annotate -> profile front
half of the Figure 1 pipeline under every configuration; only the
stages a changed knob actually feeds need to re-execute.  This module
memoizes the pipeline's intermediate products behind content-addressed
keys so :class:`~repro.jrpm.pipeline.Jrpm` can skip unchanged stages.

Stages and their key components
-------------------------------
``compile``
    (source text, optimize flag) -> compiled :class:`Program` plus its
    :class:`CandidateTable`.
``annotate``
    (compile key, annotation level) -> pristine
    :class:`AnnotatedProgram` (snapshotted *before* the profiling run
    patches converged READSTATS sites to NOPs).
``sequential``
    (compile key, cost model, instruction budget) -> the baseline
    :class:`RunResult` of the unannotated program.
``profile``
    (annotate key, cost model, the profiling-relevant subset of
    :class:`HydraConfig`, convergence threshold, extended flag,
    instruction budget) -> the profiled run, the finished TEST device,
    the recorded event trace, and the annotation counter.

Selection (Equation 2) and the TLS replay are recomputed on every run:
they are cheap relative to profiling and depend on knobs (``n_cpus``,
the Table 2 overheads) that should *not* invalidate trace collection —
exactly the stage split the paper's methodology implies, where one
profile of a program is amortized across analyses.

Values are stored as pickled blobs keyed by a SHA-256 digest of their
canonicalized key components; every fetch unpickles a fresh copy, so
cached artifacts can never alias live mutable state (the profiled run
patches annotated code in place — a shared object would leak those
patches into the next run).  An optional backing directory persists
blobs across processes, which lets the parallel fleet executor's
workers share one cache.

Integrity
---------
On-disk blobs are *checksum-framed*: a magic line, the owning stage
name, and a SHA-256 digest of the payload precede the pickle bytes.
A torn, truncated, or bit-flipped file (worker killed mid-write, disk
trouble, a fault-injection test) therefore fails verification instead
of feeding garbage to ``pickle.loads``; the bad file is quarantined by
renaming it to ``<name>.corrupt``, the read is demoted to a miss, and
a per-stage ``corrupt`` counter records the event.  Unpickling errors
(truncated payload that still checksummed, a class that moved) are
demoted the same way — a corrupt cache entry costs one recompute,
never the run.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import os
import pickle
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.hydra.config import HydraConfig
from repro.runtime.costs import CostModel

STAGE_COMPILE = "compile"
STAGE_ANNOTATE = "annotate"
STAGE_SEQUENTIAL = "sequential"
STAGE_PROFILE = "profile"

#: every pipeline stage the cache knows about, in execution order
STAGES = (STAGE_COMPILE, STAGE_ANNOTATE, STAGE_SEQUENTIAL, STAGE_PROFILE)

#: HydraConfig fields the profiling stage actually reads: timestamp
#: storage geometry (Section 5.3), comparator bank count (Section 5.2),
#: and the Table 1 buffer limits the overflow analysis compares against.
#: ``n_cpus``, the Table 2 overheads, and the load-buffer associativity
#: feed only selection / TLS replay, so changing them keeps the profile.
PROFILE_CONFIG_FIELDS = (
    "line_size",
    "heap_ts_fifo_lines",
    "local_ts_lines",
    "line_ts_ld_entries",
    "line_ts_st_entries",
    "n_comparator_banks",
    "load_buffer_lines",
    "store_buffer_lines",
)


#: first line of every framed blob file; bump on format changes (old
#: files then quarantine as corrupt and recompute, never misparse)
BLOB_MAGIC = b"jrpmblob1\n"

#: exceptions ``pickle.loads`` raises on damaged-but-checksummed or
#: schema-drifted payloads; all demoted to cache misses
_UNPICKLE_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError)

#: per-process tmp-file serial: combined with the pid this makes every
#: in-flight write target unique, so two threads (or a retry racing
#: its predecessor) can never collide mid-write
_TMP_COUNTER = itertools.count()


def frame_blob(stage: str, payload: bytes) -> bytes:
    """Wrap a pickle payload in the on-disk integrity frame."""
    return b"".join([BLOB_MAGIC, stage.encode("ascii"), b"\n",
                     hashlib.sha256(payload).digest(), payload])


def unframe_blob(data: bytes) -> Tuple[str, bytes]:
    """Parse and verify a framed blob; ``(stage, payload)``.

    Raises :class:`CorruptBlobError` on any damage: missing magic,
    torn header, or a payload that fails its checksum.
    """
    if not data.startswith(BLOB_MAGIC):
        raise CorruptBlobError("bad magic")
    cut = data.find(b"\n", len(BLOB_MAGIC))
    if cut < 0:
        raise CorruptBlobError("torn header")
    stage = data[len(BLOB_MAGIC):cut].decode("ascii", "replace")
    digest = data[cut + 1:cut + 33]
    payload = data[cut + 33:]
    if len(digest) < 32 or hashlib.sha256(payload).digest() != digest:
        raise CorruptBlobError("checksum mismatch for stage %r" % stage)
    return stage, payload


def blob_stage(path: str) -> Optional[str]:
    """The stage recorded in a blob file's frame header, or None when
    the file is unreadable/unframed.  Reads only the header."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(BLOB_MAGIC) + 64)
    except OSError:
        return None
    if not head.startswith(BLOB_MAGIC):
        return None
    cut = head.find(b"\n", len(BLOB_MAGIC))
    if cut < 0:
        return None
    return head[len(BLOB_MAGIC):cut].decode("ascii", "replace")


class CorruptBlobError(ValueError):
    """A framed blob failed integrity verification."""


def _canon(value: Any) -> str:
    """Deterministic string form of a key component."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, enum.Enum):
        return "%s.%s" % (type(value).__name__, value.name)
    if isinstance(value, (tuple, list)):
        return "[%s]" % ",".join(_canon(v) for v in value)
    if isinstance(value, dict):
        return "{%s}" % ",".join(
            "%s:%s" % (_canon(k), _canon(v))
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0])))
    if isinstance(value, CostModel):
        return "CostModel{%s|%s}" % (
            _canon({int(k): v for k, v in value.op_costs.items()}),
            _canon({int(k): v for k, v in value.bin_costs.items()}))
    if isinstance(value, HydraConfig):
        return "HydraConfig%s" % _canon(vars(value))
    raise TypeError("uncacheable key component %r" % (value,))


def cache_key(stage: str, *parts: Any) -> str:
    """Content-addressed key: SHA-256 over the canonicalized parts."""
    blob = "|".join([stage] + [_canon(p) for p in parts])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def profile_config_key(config: HydraConfig) -> Tuple:
    """The profiling-relevant projection of a Hydra configuration."""
    return tuple((f, getattr(config, f)) for f in PROFILE_CONFIG_FIELDS)


class ArtifactCache:
    """Blob store for pipeline artifacts with per-stage hit/miss/
    corrupt counters.

    ``directory`` optionally backs the in-memory store with one file
    per blob (named by digest), shared across processes; writes go
    through a unique temp file + rename so concurrent workers never
    observe a torn blob, and reads verify the integrity frame —
    damaged files are quarantined (renamed ``*.corrupt``) and demoted
    to misses rather than crashing the pipeline.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._blobs: Dict[str, bytes] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.corrupt: Dict[str, int] = {}
        #: guards the blob map and the counters — the analysis service
        #: keeps one resident cache and fetches from many handler /
        #: scheduler threads concurrently; dict mutation plus
        #: read-modify-write counter bumps need the lock (pickling and
        #: file I/O happen outside it, so readers don't serialize on
        #: compute)
        self._lock = threading.RLock()

    # locks don't pickle; a cache that crosses a process boundary
    # rebuilds its own
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- blob plumbing ---------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".pkl")

    def _quarantine(self, key: str, stage: str) -> None:
        """Move a bad blob aside (``.corrupt``) and forget it, so the
        slot recomputes and the evidence survives for inspection."""
        with self._lock:
            self.corrupt[stage] = self.corrupt.get(stage, 0) + 1
            self._blobs.pop(key, None)
        if self.directory is not None:
            path = self._path(key)
            try:
                os.replace(path, path + ".corrupt")
            except OSError:
                pass  # already gone or unwritable; forgetting suffices

    def _read_blob(self, key: str, stage: str) -> Optional[bytes]:
        """The verified pickle payload for ``key``, or None (counting
        a corruption when the file exists but fails verification)."""
        with self._lock:
            blob = self._blobs.get(key)
        if blob is not None:
            return blob
        if self.directory is not None:
            try:
                with open(self._path(key), "rb") as handle:
                    data = handle.read()
            except OSError:
                return None
            try:
                _, blob = unframe_blob(data)
            except CorruptBlobError:
                self._quarantine(key, stage)
                return None
            with self._lock:
                self._blobs[key] = blob
            return blob
        return None

    def _write_blob(self, key: str, stage: str, blob: bytes) -> None:
        with self._lock:
            self._blobs[key] = blob
        if self.directory is not None:
            path = self._path(key)
            tmp = "%s.tmp.%d.%d" % (path, os.getpid(),
                                    next(_TMP_COUNTER))
            with open(tmp, "wb") as handle:
                handle.write(frame_blob(stage, blob))
            os.replace(tmp, path)

    # -- the memoization interface ---------------------------------------

    def fetch(self, stage: str, key: str) -> Tuple[bool, Any]:
        """(hit, value); the value is a fresh unpickled copy.

        A corrupt entry — torn frame, checksum mismatch, or a payload
        ``pickle.loads`` rejects — is quarantined and returned as a
        miss, so callers recompute instead of crashing.
        """
        blob = self._read_blob(key, stage)
        if blob is None:
            with self._lock:
                self.misses[stage] = self.misses.get(stage, 0) + 1
            return False, None
        try:
            value = pickle.loads(blob)
        except _UNPICKLE_ERRORS:
            self._quarantine(key, stage)
            with self._lock:
                self.misses[stage] = self.misses.get(stage, 0) + 1
            return False, None
        with self._lock:
            self.hits[stage] = self.hits.get(stage, 0) + 1
        return True, value

    def store(self, stage: str, key: str, value: Any) -> None:
        """Snapshot ``value`` (by pickling) under ``key``."""
        self._write_blob(
            key, stage, pickle.dumps(value, pickle.HIGHEST_PROTOCOL))

    # -- statistics -------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Current counters as
        {stage: {"hits": n, "misses": n, "corrupt": n}}."""
        out: Dict[str, Dict[str, int]] = {}
        with self._lock:
            stages = set(self.hits) | set(self.misses) | set(self.corrupt)
            for stage in stages:
                out[stage] = {"hits": self.hits.get(stage, 0),
                              "misses": self.misses.get(stage, 0),
                              "corrupt": self.corrupt.get(stage, 0)}
        return out

    @property
    def hit_count(self) -> int:
        return sum(self.hits.values())

    @property
    def miss_count(self) -> int:
        return sum(self.misses.values())

    @property
    def corrupt_count(self) -> int:
        return sum(self.corrupt.values())

    def render(self) -> str:
        """One-line-per-stage counter summary."""
        lines = ["%-12s %6s %6s %7s" % ("stage", "hits", "misses",
                                        "corrupt")]
        for stage in STAGES:
            if stage in self.hits or stage in self.misses \
                    or stage in self.corrupt:
                lines.append("%-12s %6d %6d %7d" % (
                    stage, self.hits.get(stage, 0),
                    self.misses.get(stage, 0),
                    self.corrupt.get(stage, 0)))
        return "\n".join(lines)


def merge_stats(into: Dict[str, Dict[str, int]],
                extra: Optional[Dict[str, Dict[str, int]]]
                ) -> Dict[str, Dict[str, int]]:
    """Accumulate one counter snapshot into another (in place)."""
    if extra:
        for stage, counts in extra.items():
            slot = into.setdefault(
                stage, {"hits": 0, "misses": 0, "corrupt": 0})
            slot["hits"] += counts.get("hits", 0)
            slot["misses"] += counts.get("misses", 0)
            slot["corrupt"] = slot.get("corrupt", 0) \
                + counts.get("corrupt", 0)
    return into


def diff_stats(after: Dict[str, Dict[str, int]],
               before: Dict[str, Dict[str, int]]
               ) -> Dict[str, Dict[str, int]]:
    """Counter delta between two snapshots of the same cache."""
    out: Dict[str, Dict[str, int]] = {}
    for stage, counts in after.items():
        base = before.get(stage, {})
        hits = counts.get("hits", 0) - base.get("hits", 0)
        misses = counts.get("misses", 0) - base.get("misses", 0)
        corrupt = counts.get("corrupt", 0) - base.get("corrupt", 0)
        if hits or misses or corrupt:
            out[stage] = {"hits": hits, "misses": misses,
                          "corrupt": corrupt}
    return out


# ---------------------------------------------------------------------------
# offline cache maintenance (the ``jrpm cache`` subcommand)
# ---------------------------------------------------------------------------

def iter_blob_paths(directory: str) -> Iterator[str]:
    """Every committed blob file in ``directory``, sorted by name
    (tmp files mid-write and quarantined ``.corrupt`` files excluded)."""
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return
    for name in names:
        if name.endswith(".pkl"):
            yield os.path.join(directory, name)


def directory_stats(directory: str) -> Dict[str, Any]:
    """Shape of an on-disk cache without opening any payloads:
    per-stage blob counts and bytes (from the frame headers alone),
    plus how many quarantined ``.corrupt`` files are lying around."""
    stages: Dict[str, Dict[str, int]] = {}
    blobs = total_bytes = quarantined = unreadable = 0
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        path = os.path.join(directory, name)
        if name.endswith(".corrupt"):
            quarantined += 1
            continue
        if not name.endswith(".pkl"):
            continue
        try:
            size = os.path.getsize(path)
        except OSError:
            continue
        stage = blob_stage(path)
        if stage is None:
            unreadable += 1
            continue
        blobs += 1
        total_bytes += size
        slot = stages.setdefault(stage, {"blobs": 0, "bytes": 0})
        slot["blobs"] += 1
        slot["bytes"] += size
    return {"directory": directory, "blobs": blobs,
            "bytes": total_bytes, "stages": stages,
            "quarantined": quarantined, "unreadable": unreadable}


def verify_directory(directory: str, quarantine: bool = True
                     ) -> Dict[str, Any]:
    """Walk every blob and verify its integrity frame (magic, stage,
    SHA-256) without unpickling or running a pipeline.

    Corrupt entries are reported and — with ``quarantine`` — renamed
    to ``<name>.corrupt`` exactly as a live read would have done, so a
    fsck'd cache never feeds a pipeline a bad blob.

    Previously quarantined ``*.corrupt`` files are swept and reported
    too (name, size, originating stage where the frame header is still
    readable) so operators can see the evidence backlog and clear it
    with ``jrpm cache purge --corrupt-only``.
    """
    checked = ok = 0
    corrupt: List[Dict[str, str]] = []
    quarantined: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".corrupt"):
            continue
        path = os.path.join(directory, name)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        quarantined.append({"file": name, "bytes": size,
                            "stage": blob_stage(path) or "?"})
    for path in iter_blob_paths(directory):
        checked += 1
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            corrupt.append({"file": os.path.basename(path),
                            "stage": "?", "error": str(exc)})
            continue
        try:
            unframe_blob(data)
        except CorruptBlobError as exc:
            entry = {"file": os.path.basename(path),
                     "stage": blob_stage(path) or "?",
                     "error": str(exc)}
            if quarantine:
                try:
                    os.replace(path, path + ".corrupt")
                    entry["quarantined"] = "yes"
                except OSError:
                    entry["quarantined"] = "no"
            corrupt.append(entry)
            continue
        ok += 1
    return {"directory": directory, "checked": checked, "ok": ok,
            "corrupt": corrupt, "quarantine": quarantine,
            "quarantined": quarantined}


def purge_directory(directory: str, include_quarantined: bool = True,
                    corrupt_only: bool = False) -> Dict[str, int]:
    """Delete every blob (and, by default, every quarantined
    ``.corrupt`` file); returns ``{"files": n, "bytes": n}`` freed.

    ``corrupt_only`` inverts the sweep: only quarantined ``.corrupt``
    evidence files are removed and live blobs stay untouched — the
    cleanup half of ``jrpm cache verify``'s quarantine report.
    """
    files = freed = 0
    try:
        names = list(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if corrupt_only:
            if not name.endswith(".corrupt"):
                continue
        elif not (name.endswith(".pkl")
                  or (include_quarantined and name.endswith(".corrupt"))
                  or ".pkl.tmp." in name):
            continue
        path = os.path.join(directory, name)
        try:
            size = os.path.getsize(path)
            os.remove(path)
        except OSError:
            continue
        files += 1
        freed += size
    return {"files": files, "bytes": freed}
