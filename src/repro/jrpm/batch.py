"""Fleet runs: the whole evaluation as one call.

The paper's Section 6 is a batch experiment — the pipeline over every
benchmark, summarized per Table 6 / Figures 10-11.  :func:`run_fleet`
performs that experiment programmatically and returns row objects the
benches (and downstream users sweeping configurations) can consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.pipeline import Jrpm, JrpmReport
from repro.workloads.registry import Workload, all_workloads


class FleetRow:
    """One benchmark's Table 6 / Fig 10 / Fig 11 numbers."""

    def __init__(self, workload: Workload, report: JrpmReport):
        self.workload = workload
        self.report = report

    # -- Table 6 columns ------------------------------------------------

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def loop_count(self) -> int:
        return self.report.candidates.loop_count

    @property
    def dynamic_depth(self) -> int:
        return self.report.device.max_dynamic_depth()

    @property
    def selected_count(self) -> int:
        """Selected loops with > 0.5% coverage (Table 6 column e)."""
        return len(self.report.selection.significant())

    @property
    def avg_selected_height(self) -> float:
        """1-based loop heights of significant STLs (column f)."""
        table = self.report.candidates
        heights = [table.by_id[s.loop_id].loop.height1()
                   for s in self.report.selection.significant()
                   if s.loop_id in table.by_id]
        return sum(heights) / len(heights) if heights else 0.0

    def _weighted(self, value_fn) -> float:
        sig = self.report.selection.significant()
        weights = [s.stats.cycles for s in sig]
        total = sum(weights)
        if not total:
            return 0.0
        return sum(value_fn(s) * w for s, w in zip(sig, weights)) / total

    @property
    def threads_per_entry(self) -> float:
        """Coverage-weighted iterations per entry (column g)."""
        return self._weighted(lambda s: s.stats.avg_iters_per_entry)

    @property
    def thread_size(self) -> float:
        """Coverage-weighted thread size in cycles (column h)."""
        return self._weighted(lambda s: s.stats.avg_thread_size)

    # -- Figures 6 / 10 / 11 ------------------------------------------------

    @property
    def slowdown(self) -> float:
        return self.report.profiling_slowdown

    @property
    def coverage(self) -> float:
        return self.report.coverage

    @property
    def predicted_speedup(self) -> float:
        return self.report.predicted_speedup

    @property
    def actual_speedup(self) -> float:
        return self.report.actual_speedup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FleetRow %s pred=%.2f act=%.2f>" % (
            self.name, self.predicted_speedup, self.actual_speedup)


class FleetResult:
    """All rows plus cross-benchmark aggregates."""

    def __init__(self, rows: List[FleetRow]):
        self.rows = rows
        self.by_name: Dict[str, FleetRow] = {r.name: r for r in rows}

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def median_slowdown(self) -> float:
        slows = sorted(r.slowdown for r in self.rows)
        mid = len(slows) // 2
        if len(slows) % 2:
            return slows[mid]
        return (slows[mid - 1] + slows[mid]) / 2

    @property
    def geomean_prediction_ratio(self) -> float:
        """Geometric mean of actual/predicted speedup (1.0 = perfect)."""
        import math
        ratios = [r.actual_speedup / r.predicted_speedup
                  for r in self.rows if r.predicted_speedup > 0]
        if not ratios:
            return 1.0
        return math.exp(sum(math.log(x) for x in ratios) / len(ratios))

    def render(self) -> str:
        """Table 6-shaped text summary."""
        lines = ["%-14s %5s %5s %4s %6s %10s %9s %8s %8s" % (
            "Benchmark", "Loops", "Depth", "Sel", "Height",
            "Thr/entry", "Size(cy)", "Pred", "Actual")]
        for r in self.rows:
            lines.append(
                "%-14s %5d %5d %4d %6.1f %10.0f %9.0f %7.2fx %7.2fx"
                % (r.name, r.loop_count, r.dynamic_depth,
                   r.selected_count, r.avg_selected_height,
                   r.threads_per_entry, r.thread_size,
                   r.predicted_speedup, r.actual_speedup))
        return "\n".join(lines)


def run_fleet(workloads: Optional[Iterable[Workload]] = None,
              config: HydraConfig = DEFAULT_HYDRA,
              simulate_tls: bool = True,
              **jrpm_kwargs) -> FleetResult:
    """Run the pipeline over ``workloads`` (default: all 26).

    Extra keyword arguments flow into every :class:`Jrpm` (annotation
    level, convergence threshold, optimizer, ...), so one call sweeps
    the whole evaluation under a new configuration.
    """
    rows: List[FleetRow] = []
    for w in (workloads if workloads is not None else all_workloads()):
        jrpm = Jrpm(source=w.source(), name=w.name, config=config,
                    **jrpm_kwargs)
        rows.append(FleetRow(w, jrpm.run(simulate_tls=simulate_tls)))
    return FleetResult(rows)
