"""Fleet runs: the whole evaluation as one call.

The paper's Section 6 is a batch experiment — the pipeline over every
benchmark, summarized per Table 6 / Figures 10-11.  :func:`run_fleet`
performs that experiment programmatically and returns row objects the
benches (and downstream users sweeping configurations) can consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import PipelineError
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.jrpm.cache import ArtifactCache
from repro.jrpm.faults import FaultPlan
from repro.jrpm.pipeline import Jrpm, JrpmReport
from repro.workloads.registry import Workload, all_workloads


class FleetRow:
    """One benchmark's Table 6 / Fig 10 / Fig 11 numbers."""

    #: this row carries a report (vs. a failure); aggregates filter on it
    ok = True

    def __init__(self, workload: Workload, report: JrpmReport):
        self.workload = workload
        self.report = report

    # -- Table 6 columns ------------------------------------------------

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def loop_count(self) -> int:
        return self.report.candidates.loop_count

    @property
    def dynamic_depth(self) -> int:
        return self.report.device.max_dynamic_depth()

    @property
    def selected_count(self) -> int:
        """Selected loops with > 0.5% coverage (Table 6 column e)."""
        return len(self.report.selection.significant())

    @property
    def avg_selected_height(self) -> float:
        """1-based loop heights of significant STLs (column f).

        Every selected ``loop_id`` originates from the candidate
        table, so a missing entry means the report is internally
        inconsistent (e.g. a stale cache artifact); silently dropping
        it would skew the Table 6 average, so it raises instead.
        """
        table = self.report.candidates
        missing = [s.loop_id
                   for s in self.report.selection.significant()
                   if s.loop_id not in table.by_id]
        if missing:
            raise PipelineError(
                "selection for %r references loop ids %r absent from "
                "the candidate table — inconsistent report artifacts"
                % (self.name, sorted(missing)))
        heights = [table.by_id[s.loop_id].loop.height1()
                   for s in self.report.selection.significant()]
        return sum(heights) / len(heights) if heights else 0.0

    def _weighted(self, value_fn) -> float:
        sig = self.report.selection.significant()
        weights = [s.stats.cycles for s in sig]
        total = sum(weights)
        if not total:
            return 0.0
        return sum(value_fn(s) * w for s, w in zip(sig, weights)) / total

    @property
    def threads_per_entry(self) -> float:
        """Coverage-weighted iterations per entry (column g)."""
        return self._weighted(lambda s: s.stats.avg_iters_per_entry)

    @property
    def thread_size(self) -> float:
        """Coverage-weighted thread size in cycles (column h)."""
        return self._weighted(lambda s: s.stats.avg_thread_size)

    # -- Figures 6 / 10 / 11 ------------------------------------------------

    @property
    def slowdown(self) -> float:
        return self.report.profiling_slowdown

    @property
    def coverage(self) -> float:
        return self.report.coverage

    @property
    def predicted_speedup(self) -> float:
        return self.report.predicted_speedup

    @property
    def actual_speedup(self) -> float:
        return self.report.actual_speedup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FleetRow %s pred=%.2f act=%.2f>" % (
            self.name, self.predicted_speedup, self.actual_speedup)


class FleetErrorRow:
    """Placeholder for a workload whose pipeline raised.

    Produced under ``on_error="row"`` so one bad workload doesn't kill
    a long sweep; carries enough context to reproduce the failure."""

    ok = False

    def __init__(self, workload: Workload, error: str,
                 trace: str = "", attempts: int = 1):
        self.workload = workload
        self.error = error
        #: the worker's formatted traceback (parallel runs cross a
        #: process boundary, so the original exception object is gone)
        self.trace = trace
        #: attempts burned before giving up (1 = no retries configured
        #: or the first failure was terminal)
        self.attempts = attempts

    @property
    def name(self) -> str:
        return self.workload.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FleetErrorRow %s %s>" % (self.name, self.error)


class FleetResult:
    """All rows plus cross-benchmark aggregates.

    ``rows`` preserves workload order and may mix :class:`FleetRow`
    with :class:`FleetErrorRow`; aggregates cover the successful rows.
    ``cache_stats`` holds this run's artifact-cache counters as
    ``{stage: {"hits": n, "misses": n, "corrupt": n}}`` (empty without
    a cache); ``exec_stats`` holds the executor's fault counters
    (``retries`` / ``timeouts`` / ``crashes``, all zero on a clean
    run).
    """

    def __init__(self, rows: List[FleetRow],
                 cache_stats: Optional[Dict[str, Dict[str, int]]] = None,
                 exec_stats: Optional[Dict[str, int]] = None):
        self.rows = rows
        self.by_name: Dict[str, FleetRow] = {r.name: r for r in rows}
        self.cache_stats = cache_stats or {}
        self.exec_stats = exec_stats or {}

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def ok_rows(self) -> List[FleetRow]:
        return [r for r in self.rows if r.ok]

    @property
    def errors(self) -> List[FleetErrorRow]:
        return [r for r in self.rows if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(c.get("hits", 0) for c in self.cache_stats.values())

    @property
    def cache_misses(self) -> int:
        return sum(c.get("misses", 0) for c in self.cache_stats.values())

    @property
    def cache_corrupt(self) -> int:
        """Cache blobs quarantined as corrupt during this run."""
        return sum(c.get("corrupt", 0) for c in self.cache_stats.values())

    @property
    def retry_count(self) -> int:
        """Workload attempts that were retried (any failure kind)."""
        return self.exec_stats.get("retries", 0)

    @property
    def timeout_count(self) -> int:
        """Workload attempts abandoned at the wall-clock timeout."""
        return self.exec_stats.get("timeouts", 0)

    @property
    def crash_count(self) -> int:
        """Worker-pool breakages (a worker process died) survived."""
        return self.exec_stats.get("crashes", 0)

    @property
    def median_slowdown(self) -> float:
        slows = sorted(r.slowdown for r in self.ok_rows)
        if not slows:
            return 1.0
        mid = len(slows) // 2
        if len(slows) % 2:
            return slows[mid]
        return (slows[mid - 1] + slows[mid]) / 2

    @property
    def geomean_prediction_ratio(self) -> float:
        """Geometric mean of actual/predicted speedup (1.0 = perfect)."""
        import math
        ratios = [r.actual_speedup / r.predicted_speedup
                  for r in self.ok_rows if r.predicted_speedup > 0]
        if not ratios:
            return 1.0
        return math.exp(sum(math.log(x) for x in ratios) / len(ratios))

    def render(self) -> str:
        """Table 6-shaped text summary."""
        lines = ["%-14s %5s %5s %4s %6s %10s %9s %8s %8s" % (
            "Benchmark", "Loops", "Depth", "Sel", "Height",
            "Thr/entry", "Size(cy)", "Pred", "Actual")]
        for r in self.rows:
            if not r.ok:
                lines.append("%-14s FAILED: %s" % (r.name, r.error))
                continue
            lines.append(
                "%-14s %5d %5d %4d %6.1f %10.0f %9.0f %7.2fx %7.2fx"
                % (r.name, r.loop_count, r.dynamic_depth,
                   r.selected_count, r.avg_selected_height,
                   r.threads_per_entry, r.thread_size,
                   r.predicted_speedup, r.actual_speedup))
        return "\n".join(lines)


def run_fleet(workloads: Optional[Iterable[Workload]] = None,
              config: HydraConfig = DEFAULT_HYDRA,
              simulate_tls: bool = True,
              jobs: int = 1,
              cache: Optional[ArtifactCache] = None,
              on_error: str = "raise",
              timeout: Optional[float] = None,
              retries: int = 0,
              backoff: float = 0.25,
              fault_plan: Optional[FaultPlan] = None,
              **jrpm_kwargs) -> FleetResult:
    """Run the pipeline over ``workloads`` (default: all 26).

    Extra keyword arguments flow into every :class:`Jrpm` (annotation
    level, convergence threshold, optimizer, ...), so one call sweeps
    the whole evaluation under a new configuration.

    ``jobs`` > 1 fans workloads over worker processes (rows still come
    back in workload order); ``cache`` memoizes pipeline stages across
    workloads and sweeps (parallel runs need a disk-backed cache);
    ``on_error="row"`` turns a crashing workload into a
    :class:`FleetErrorRow` instead of aborting the fleet.

    ``timeout`` bounds each attempt's wall clock (parallel path);
    ``retries``/``backoff`` re-run failed, crashed, or timed-out
    workloads with exponential backoff; ``fault_plan`` injects
    deterministic failures for testing — see
    :class:`~repro.jrpm.executor.FleetExecutor` for the full failure
    model.
    """
    from repro.jrpm.executor import FleetExecutor

    executor = FleetExecutor(jobs=jobs, config=config,
                             simulate_tls=simulate_tls, cache=cache,
                             on_error=on_error, timeout=timeout,
                             retries=retries, backoff=backoff,
                             fault_plan=fault_plan, **jrpm_kwargs)
    return executor.run(workloads)
