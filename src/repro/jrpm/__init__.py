"""Jrpm — the Java Runtime Parallelizing Machine analog (Figure 1):
the end-to-end pipeline from source to selected, TLS-simulated STLs."""

from repro.jrpm.batch import (
    FleetErrorRow,
    FleetResult,
    FleetRow,
    run_fleet,
)
from repro.jrpm.cache import ArtifactCache
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.faults import FaultPlan
from repro.jrpm.pipeline import Jrpm, JrpmReport, run_pipeline
from repro.jrpm.report import (
    REPORT_SCHEMA_VERSION,
    ReportSchemaError,
    dumps_canonical,
    fleet_to_dict,
    render_characteristics_row,
    render_predicted_vs_actual,
    render_selection,
    render_summary,
    report_json,
    report_to_dict,
    validate_report_dict,
)
from repro.jrpm.slowdown import AnnotationCounter, SlowdownBreakdown

__all__ = [
    "AnnotationCounter",
    "ArtifactCache",
    "FaultPlan",
    "REPORT_SCHEMA_VERSION",
    "ReportSchemaError",
    "dumps_canonical",
    "fleet_to_dict",
    "report_json",
    "report_to_dict",
    "validate_report_dict",
    "FleetErrorRow",
    "FleetExecutor",
    "FleetResult",
    "FleetRow",
    "run_fleet",
    "Jrpm",
    "JrpmReport",
    "SlowdownBreakdown",
    "render_characteristics_row",
    "render_predicted_vs_actual",
    "render_selection",
    "render_summary",
    "run_pipeline",
]
