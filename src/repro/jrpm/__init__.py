"""Jrpm — the Java Runtime Parallelizing Machine analog (Figure 1):
the end-to-end pipeline from source to selected, TLS-simulated STLs."""

from repro.jrpm.batch import (
    FleetErrorRow,
    FleetResult,
    FleetRow,
    run_fleet,
)
from repro.jrpm.cache import ArtifactCache
from repro.jrpm.executor import FleetExecutor
from repro.jrpm.faults import FaultPlan
from repro.jrpm.pipeline import Jrpm, JrpmReport, run_pipeline
from repro.jrpm.report import (
    render_characteristics_row,
    render_predicted_vs_actual,
    render_selection,
    render_summary,
)
from repro.jrpm.slowdown import AnnotationCounter, SlowdownBreakdown

__all__ = [
    "AnnotationCounter",
    "ArtifactCache",
    "FaultPlan",
    "FleetErrorRow",
    "FleetExecutor",
    "FleetResult",
    "FleetRow",
    "run_fleet",
    "Jrpm",
    "JrpmReport",
    "SlowdownBreakdown",
    "render_characteristics_row",
    "render_predicted_vs_actual",
    "render_selection",
    "render_summary",
    "run_pipeline",
]
