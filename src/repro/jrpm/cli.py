"""``jrpm`` command-line interface.

Usage::

    jrpm list                     # show the 26 paper workloads
    jrpm run huffman              # full pipeline on one workload
    jrpm run huffman --extended   # with per-PC dependency profiling
    jrpm run path/to/file.mj      # any minijava source file
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.jit.annotate import AnnotationLevel
from repro.jrpm.pipeline import Jrpm
from repro.jrpm.report import (
    render_predicted_vs_actual,
    render_selection,
    render_summary,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jrpm",
        description="Dynamic parallelization pipeline (TEST / Jrpm "
                    "reproduction, Chen & Olukotun, CGO 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full pipeline")
    run.add_argument("target",
                     help="workload name (see 'jrpm list') or a "
                          "minijava source file path")
    run.add_argument("--base", action="store_true",
                     help="use base (unoptimized) annotations")
    run.add_argument("--extended", action="store_true",
                     help="collect per-PC dependency profiles")
    run.add_argument("--no-tls", action="store_true",
                     help="skip the TLS timing simulation")

    sub.add_parser("list", help="list the bundled paper workloads")
    return parser


def _resolve_source(target: str) -> tuple:
    """Return (name, minijava source) for a workload name or file."""
    if os.path.exists(target):
        with open(target) as handle:
            return os.path.basename(target), handle.read()
    from repro.workloads.registry import get_workload, workload_names
    try:
        workload = get_workload(target)
    except KeyError:
        raise SystemExit(
            "unknown workload %r; choose from: %s"
            % (target, ", ".join(workload_names())))
    return workload.name, workload.source()


def main(argv=None) -> int:
    """Entry point for the ``jrpm`` console script."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        from repro.workloads.registry import all_workloads
        for w in all_workloads():
            print("%-16s %-14s %s" % (w.name, w.category, w.description))
        return 0

    name, source = _resolve_source(args.target)
    level = AnnotationLevel.BASE if args.base \
        else AnnotationLevel.OPTIMIZED
    jrpm = Jrpm(source=source, name=name, level=level,
                extended=args.extended)
    report = jrpm.run(simulate_tls=not args.no_tls)
    print(render_summary(report))
    print()
    print(render_selection(report))
    if report.outcome is not None:
        print()
        print(render_predicted_vs_actual(report))
    if args.extended:
        print()
        for sel in report.selection.selected[:3]:
            print(report.device.report(sel.loop_id))
            print()
        from repro.tracer import OptimizationAdvisor
        print(OptimizationAdvisor(report).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
