"""``jrpm`` command-line interface.

Usage::

    jrpm list                     # show the 26 paper workloads
    jrpm run huffman              # full pipeline on one workload
    jrpm run huffman --json       # machine-readable report
    jrpm run huffman --extended   # with per-PC dependency profiling
    jrpm run huffman --models     # per-loop execution-model argmax
    jrpm run path/to/file.mj      # any minijava source file
    jrpm models                   # list the registered execution models
    jrpm fleet                    # Table 6 over every workload
    jrpm fleet --jobs 4 --cache-dir .jrpm-cache --workloads IDEA,euler
    jrpm serve --port 8731        # long-lived analysis daemon
    jrpm serve --shards 4 --replicas 2   # sharded serving tier
    jrpm cache stats --cache-dir .jrpm-cache
    jrpm cache verify --cache-dir .jrpm-cache   # fsck the blobs
    jrpm cache purge --cache-dir .jrpm-cache
    jrpm cache purge --cache-dir .jrpm-cache --corrupt-only
    jrpm conform                  # estimator-vs-simulator oracle gate
    jrpm conform --fuzz 200 --seed 1000 --jobs 2
    jrpm conform --synth 3        # synthetic label + error-atlas gate
    jrpm conform --update-goldens # regenerate tests/goldens*.json
    jrpm synth --list             # the synthesizer's families
    jrpm synth --families chase --per-family 5 --seed 7
    jrpm synth --out /tmp/corpus  # write .mj sources + labels.json
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.jit.annotate import AnnotationLevel
from repro.jrpm.pipeline import Jrpm
from repro.jrpm.report import (
    render_engine_stats,
    render_predicted_vs_actual,
    render_selection,
    render_summary,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jrpm",
        description="Dynamic parallelization pipeline (TEST / Jrpm "
                    "reproduction, Chen & Olukotun, CGO 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full pipeline")
    run.add_argument("target",
                     help="workload name (see 'jrpm list') or a "
                          "minijava source file path")
    run.add_argument("--base", action="store_true",
                     help="use base (unoptimized) annotations")
    run.add_argument("--extended", action="store_true",
                     help="collect per-PC dependency profiles")
    run.add_argument("--no-tls", action="store_true",
                     help="skip the TLS timing simulation")
    run.add_argument("--json", action="store_true",
                     help="emit the machine-readable report (same "
                          "schema and bytes as the analysis service)")
    run.add_argument("--trace-jit", action=argparse.BooleanOptionalAction,
                     default=None,
                     help="run the interpreter's trace-recording "
                          "superblock JIT (default on; JRPM_TRACE_JIT "
                          "overrides when neither flag is given)")
    run.add_argument("--optimize", action="store_true",
                     help="run the LVN/LICM/DCE pass pipeline on the "
                          "bytecode before annotation")
    run.add_argument("--models", nargs="?", const="all",
                     metavar="A,B,...",
                     help="let each loop pick its execution model by "
                          "estimate argmax; bare flag compares all "
                          "registered models (see 'jrpm models'), or "
                          "give a comma-separated subset")

    fleet = sub.add_parser(
        "fleet", help="run the pipeline over many workloads")
    fleet.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1 = serial)")
    fleet.add_argument("--workloads", metavar="A,B,...",
                       help="comma-separated workload names "
                            "(default: all)")
    fleet.add_argument("--base", action="store_true",
                       help="use base (unoptimized) annotations")
    fleet.add_argument("--no-tls", action="store_true",
                       help="skip the TLS timing simulation")
    fleet.add_argument("--cache-dir", metavar="DIR",
                       help="artifact cache directory (reused across "
                            "invocations and shared by parallel jobs)")
    fleet.add_argument("--timeout", type=float, default=None,
                       metavar="SEC",
                       help="wall-clock limit per workload attempt; "
                            "hung workers are killed and the workload "
                            "retried or failed (parallel runs only)")
    fleet.add_argument("--retries", type=int, default=0, metavar="N",
                       help="re-run a failed, crashed, or timed-out "
                            "workload up to N extra times with "
                            "exponential backoff (default 0)")
    fleet.add_argument("--json", action="store_true",
                       help="emit machine-readable per-workload "
                            "reports (one shared schema with "
                            "'jrpm run --json' and the service)")
    fleet.add_argument("--trace-jit",
                       action=argparse.BooleanOptionalAction,
                       default=None,
                       help="trace-recording superblock JIT in every "
                            "worker (default on; JRPM_TRACE_JIT "
                            "overrides when neither flag is given)")
    fleet.add_argument("--optimize", action="store_true",
                       help="run the LVN/LICM/DCE pass pipeline in "
                            "every worker before annotation")
    fleet.add_argument("--models", nargs="?", const="all",
                       metavar="A,B,...",
                       help="per-loop execution-model argmax in every "
                            "worker (bare flag = all registered "
                            "models)")

    serve = sub.add_parser(
        "serve", help="run the long-lived analysis service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8731, metavar="N",
                       help="listen port; 0 picks an ephemeral port "
                            "(default 8731)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="shard processes behind a consistent-hash "
                            "routing frontend; each shard keeps its "
                            "own warm caches on a stable key range "
                            "(default 1 = the single in-process "
                            "daemon)")
    serve.add_argument("--replicas", type=int, default=2, metavar="K",
                       help="replica shards per key: the primary "
                            "serves, the others are peeked on a "
                            "result-cache miss and tried on failover "
                            "(default 2; capped at --shards)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="resident worker processes (default 1 = "
                            "in-process execution)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       metavar="N",
                       help="bounded admission queue; beyond it "
                            "requests are shed with HTTP 429 "
                            "(default 64)")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="max compatible requests dispatched as "
                            "one fleet submission (default 8)")
    serve.add_argument("--result-cache", type=int, default=256,
                       metavar="N",
                       help="completed results memoized for repeat "
                            "traffic (default 256; 0 disables)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persistent artifact cache directory "
                            "(default: in-memory, lives as long as "
                            "the daemon)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SEC",
                       help="wall-clock limit per workload attempt "
                            "(parallel jobs only)")
    serve.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry failed/crashed/timed-out workloads "
                            "up to N times (default 0)")
    serve.add_argument("--max-body-bytes", type=int,
                       default=1 << 20, metavar="N",
                       help="largest accepted request body; bigger "
                            "Content-Lengths get 413 instead of an "
                            "allocation (default 1 MiB)")
    serve.add_argument("--metrics-dump", metavar="PATH",
                       help="write the final metrics snapshot to PATH "
                            "on shutdown")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.add_argument("--trace-jit",
                       action=argparse.BooleanOptionalAction,
                       default=None,
                       help="trace-recording superblock JIT for all "
                            "analyses (default on; JRPM_TRACE_JIT "
                            "overrides when neither flag is given)")

    cache = sub.add_parser(
        "cache", help="inspect or maintain an artifact cache directory")
    cache.add_argument("action", choices=("stats", "verify", "purge"),
                       help="stats: per-stage blob counts/bytes; "
                            "verify: checksum every blob, quarantine "
                            "corrupt ones; purge: delete all blobs")
    cache.add_argument("--cache-dir", required=True, metavar="DIR",
                       help="the cache directory to operate on")
    cache.add_argument("--no-quarantine", action="store_true",
                       help="verify only reports corruption, leaving "
                            "bad blobs in place")
    cache.add_argument("--keep-quarantined", action="store_true",
                       help="purge leaves *.corrupt evidence files")
    cache.add_argument("--corrupt-only", action="store_true",
                       help="purge deletes only quarantined *.corrupt "
                            "files, keeping healthy blobs")
    cache.add_argument("--json", action="store_true",
                       help="emit the result as JSON")

    conform = sub.add_parser(
        "conform",
        help="differential conformance: estimator-vs-simulator "
             "oracle, fuzz campaigns, golden corpus")
    conform.add_argument("--workloads", metavar="A,B,...",
                         help="restrict the oracle to these workloads "
                              "(default: all)")
    conform.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the oracle fleet "
                              "and the fuzz campaign (default 1)")
    conform.add_argument("--cache-dir", metavar="DIR",
                         help="artifact cache for the oracle's "
                              "pipeline runs")
    conform.add_argument("--skip-oracle", action="store_true",
                         help="don't run the workload oracle (fuzz or "
                              "goldens only)")
    conform.add_argument("--error-bound", type=float, default=None,
                         metavar="F",
                         help="override the workload-level relative "
                              "prediction-error ceiling")
    conform.add_argument("--fuzz", type=int, default=0, metavar="N",
                         help="fuzz N consecutive seeds through the "
                              "six-path differential checker "
                              "(default 0 = skip)")
    conform.add_argument("--seed", type=int, default=None, metavar="N",
                         help="base fuzz seed (default: "
                              "$JRPM_TEST_SEED or the built-in "
                              "campaign seed); with --fuzz 1 this "
                              "replays exactly one program")
    conform.add_argument("--no-shrink", action="store_true",
                         help="keep failing programs full-size "
                              "instead of delta-debugging them")
    conform.add_argument("--repro-dir", metavar="DIR",
                         default=None,
                         help="where shrunk reproducers are written "
                              "(default conformance/repros)")
    conform.add_argument("--update-goldens", action="store_true",
                         help="regenerate the golden corpus from the "
                              "current interpreter and exit")
    conform.add_argument("--goldens", metavar="PATH",
                         default=os.path.join("tests", "goldens.json"),
                         help="golden corpus path (default "
                              "tests/goldens.json)")
    conform.add_argument("--report", metavar="PATH",
                         help="write the machine-readable conformance "
                              "report to PATH")
    conform.add_argument("--json", action="store_true",
                         help="print the machine-readable report to "
                              "stdout")
    conform.add_argument("--models", nargs="?", const="all",
                         metavar="A,B,...",
                         help="run the oracle with per-loop model "
                              "argmax and gate predicted-vs-actual "
                              "error per execution model")
    conform.add_argument("--synth", type=int, default=0, metavar="N",
                         help="gate N synthetic instances per family: "
                              "parallelism labels must hold and "
                              "estimator errors must stay within the "
                              "measured per-family atlas bounds "
                              "(default 0 = skip)")
    conform.add_argument("--synth-goldens", metavar="PATH",
                         default=os.path.join("tests",
                                              "goldens_synth.json"),
                         help="pinned per-family golden programs "
                              "(default tests/goldens_synth.json); "
                              "regenerated by --update-goldens")

    synth = sub.add_parser(
        "synth",
        help="generate labelled synthetic workloads (see 'jrpm synth "
             "--list' for the families)")
    synth.add_argument("--list", action="store_true", dest="list_families",
                       help="list the families and their labels")
    synth.add_argument("--families", metavar="A,B,...",
                       help="comma-separated family subset "
                            "(default: all)")
    synth.add_argument("--per-family", type=int, default=None,
                       metavar="N",
                       help="instances per family (default %d)"
                            % 20)
    synth.add_argument("--seed", type=int, default=None, metavar="N",
                       help="base seed; instance i of family F depends "
                            "only on (seed, F, i), so any subset "
                            "regenerates byte-identically (default: "
                            "the registry's pinned corpus seed)")
    synth.add_argument("--json", action="store_true",
                       help="emit instances with labels and source as "
                            "JSON")
    synth.add_argument("--source", action="store_true",
                       help="print each instance's minijava source")
    synth.add_argument("--out", metavar="DIR",
                       help="write one .mj file per instance plus "
                            "labels.json to DIR")

    list_cmd = sub.add_parser(
        "list", help="list the bundled paper workloads")
    list_cmd.add_argument("--synthetic", action="store_true",
                          help="include the registered synthetic "
                               "corpus (labelled generated workloads)")
    sub.add_parser("models",
                   help="list the registered execution models")
    return parser


def _run_fleet_command(args) -> int:
    import time

    from repro.jrpm.batch import run_fleet
    from repro.jrpm.cache import ArtifactCache

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1, got %d" % args.jobs)
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive, got %r"
                         % args.timeout)
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0, got %d" % args.retries)
    workloads = None
    if args.workloads:
        from repro.workloads.registry import get_workload, workload_names
        names = [n.strip() for n in args.workloads.split(",") if n.strip()]
        try:
            workloads = [get_workload(n) for n in names]
        except KeyError as exc:
            raise SystemExit(
                "unknown workload %s; choose from: %s"
                % (exc, ", ".join(workload_names())))
    cache = None
    if args.cache_dir:
        cache = ArtifactCache(directory=args.cache_dir)
    elif args.jobs > 1:
        # parallel workers need a shared medium; give them a private
        # disk cache so artifacts still flow between sweeps in-run
        import tempfile
        cache = ArtifactCache(
            directory=tempfile.mkdtemp(prefix="jrpm-cache-"))
    level = AnnotationLevel.BASE if args.base \
        else AnnotationLevel.OPTIMIZED
    start = time.perf_counter()
    result = run_fleet(workloads=workloads, jobs=args.jobs,
                       cache=cache, on_error="row", level=level,
                       timeout=args.timeout, retries=args.retries,
                       simulate_tls=not args.no_tls,
                       trace_jit=args.trace_jit,
                       optimize=args.optimize,
                       models=args.models)
    elapsed = time.perf_counter() - start

    if args.json:
        from repro.jrpm.report import dumps_canonical, fleet_to_dict
        print(dumps_canonical(fleet_to_dict(
            result, elapsed=elapsed, jobs=args.jobs)))
        return 1 if result.errors else 0

    print(result.render())
    print()
    print("%d workloads in %.1fs (jobs=%d)  median slowdown %.2fx  "
          "geomean actual/predicted %.2f"
          % (len(result), elapsed, args.jobs, result.median_slowdown,
             result.geomean_prediction_ratio))
    if cache is not None:
        print("cache: %d hits, %d misses, %d corrupt"
              % (result.cache_hits, result.cache_misses,
                 result.cache_corrupt))
    if result.retry_count or result.timeout_count or result.crash_count:
        print("faults survived: %d retries, %d timeouts, "
              "%d worker crashes"
              % (result.retry_count, result.timeout_count,
                 result.crash_count))
    failures = result.errors
    if failures:
        print()
        for row in failures:
            print("FAILED %s: %s" % (row.name, row.error))
            if row.trace:
                print(row.trace)
        return 1
    return 0


def _run_serve_command(args) -> int:
    from repro.jrpm.cache import ArtifactCache
    from repro.service.server import AnalysisService

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1, got %d" % args.shards)
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1, got %d"
                         % args.replicas)
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1, got %d" % args.jobs)
    if args.queue_depth < 1:
        raise SystemExit("--queue-depth must be >= 1, got %d"
                         % args.queue_depth)
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive, got %r"
                         % args.timeout)
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0, got %d" % args.retries)
    if args.max_body_bytes < 1:
        raise SystemExit("--max-body-bytes must be >= 1, got %d"
                         % args.max_body_bytes)

    if args.shards > 1:
        return _serve_sharded(args)

    cache = None
    if args.cache_dir:
        cache = ArtifactCache(directory=args.cache_dir)
    elif args.jobs > 1:
        import tempfile
        cache = ArtifactCache(
            directory=tempfile.mkdtemp(prefix="jrpm-serve-cache-"))
    service = AnalysisService(
        host=args.host, port=args.port, cache=cache,
        jobs=args.jobs, queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        result_cache_size=args.result_cache,
        timeout=args.timeout, retries=args.retries,
        max_body_bytes=args.max_body_bytes,
        metrics_dump=args.metrics_dump, verbose=args.verbose,
        trace_jit=args.trace_jit)
    service.install_signal_handlers()
    service.start()
    print("jrpm-serve listening on http://%s:%d "
          "(jobs=%d, queue-depth=%d, max-batch=%d, cache=%s)"
          % (service.host, service.port, args.jobs, args.queue_depth,
             args.max_batch, args.cache_dir or "memory"), flush=True)
    service.serve_until_signal()
    snapshot = service.metrics.to_dict()
    print("jrpm-serve drained and stopped after %.1fs: "
          "%d analyses, %d coalesced, %d cached, %d shed"
          % (snapshot["uptime_s"],
             snapshot["counters"].get("analyze_completed", 0),
             snapshot["counters"].get("coalesced", 0),
             snapshot["counters"].get("result_cache_hits", 0),
             snapshot["counters"].get("load_shed", 0)), flush=True)
    return 0


def _serve_sharded(args) -> int:
    from repro.service.router import ShardedFrontend

    frontend = ShardedFrontend(
        host=args.host, port=args.port,
        shards=args.shards, replicas=args.replicas,
        max_body_bytes=args.max_body_bytes,
        metrics_dump=args.metrics_dump, verbose=args.verbose,
        shard_options={
            "jobs": args.jobs,
            "queue_depth": args.queue_depth,
            "max_batch": args.max_batch,
            "result_cache": args.result_cache,
            "cache_dir": args.cache_dir,
            "timeout": args.timeout,
            "retries": args.retries,
            "max_body_bytes": args.max_body_bytes,
            "trace_jit": args.trace_jit,
            "verbose": args.verbose,
        })
    frontend.install_signal_handlers()
    frontend.start()
    print("jrpm-serve listening on http://%s:%d "
          "(shards=%d, replicas=%d, jobs=%d/shard, queue-depth=%d, "
          "cache=%s)"
          % (frontend.host, frontend.port, args.shards,
             frontend.replica_count, args.jobs, args.queue_depth,
             args.cache_dir or "memory"), flush=True)
    frontend.serve_until_signal()
    snapshot = frontend._final_snapshot or frontend.metrics_snapshot()
    counters = snapshot.get("aggregate", {}).get("counters", {})
    print("jrpm-serve drained and stopped after %.1fs: "
          "%d analyses, %d coalesced, %d cached, %d peeked, %d shed"
          % (snapshot.get("frontend", {}).get("uptime_s", 0.0),
             counters.get("analyze_completed", 0),
             counters.get("coalesced", 0),
             counters.get("result_cache_hits", 0),
             counters.get("peek_hits", 0),
             counters.get("load_shed", 0)), flush=True)
    return 0


def _run_cache_command(args) -> int:
    import json

    from repro.jrpm.cache import (
        directory_stats,
        purge_directory,
        verify_directory,
    )

    if not os.path.isdir(args.cache_dir):
        raise SystemExit("jrpm cache: not a directory: %s"
                         % args.cache_dir)

    if args.action == "stats":
        report = directory_stats(args.cache_dir)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        print("cache %s: %d blobs, %d bytes"
              % (report["directory"], report["blobs"], report["bytes"]))
        for stage, counts in sorted(report["stages"].items()):
            print("  %-12s %6d blobs %12d bytes"
                  % (stage, counts["blobs"], counts["bytes"]))
        if report["quarantined"]:
            print("  %d quarantined .corrupt file(s)"
                  % report["quarantined"])
        if report["unreadable"]:
            print("  %d unreadable/unframed file(s)"
                  % report["unreadable"])
        return 0

    if args.action == "verify":
        report = verify_directory(args.cache_dir,
                                  quarantine=not args.no_quarantine)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print("verified %d blob(s): %d ok, %d corrupt"
                  % (report["checked"], report["ok"],
                     len(report["corrupt"])))
            for entry in report["corrupt"]:
                print("  CORRUPT %s (stage %s): %s%s"
                      % (entry["file"], entry["stage"], entry["error"],
                         " [quarantined]"
                         if entry.get("quarantined") == "yes" else ""))
            for entry in report["quarantined"]:
                print("  quarantined %s (stage %s, %d bytes) from an "
                      "earlier verify"
                      % (entry["file"], entry["stage"], entry["bytes"]))
        return 1 if report["corrupt"] else 0

    report = purge_directory(
        args.cache_dir,
        include_quarantined=not args.keep_quarantined,
        corrupt_only=args.corrupt_only)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        what = "quarantined file(s)" if args.corrupt_only else "file(s)"
        print("purged %d %s, %d bytes freed"
              % (report["files"], what, report["bytes"]))
    return 0


def _run_conform_command(args) -> int:
    import json

    from repro.conformance.campaign import (
        DEFAULT_FUZZ_SEED,
        DEFAULT_REPRO_DIR,
        run_campaign,
    )
    from repro.conformance.goldens import update_goldens
    from repro.conformance.oracle import (
        DEFAULT_ERROR_BOUND,
        run_oracle,
    )
    from repro.jrpm.cache import ArtifactCache

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1, got %d" % args.jobs)
    if args.fuzz < 0:
        raise SystemExit("--fuzz must be >= 0, got %d" % args.fuzz)

    if args.update_goldens:
        from repro.synth.goldens import update_synth_goldens

        payload = update_goldens(args.goldens)
        meta = payload["_meta"]
        print("regenerated %s: %d workloads, corpus version %d"
              % (args.goldens, meta["workloads"], meta["version"]))
        payload = update_synth_goldens(args.synth_goldens)
        meta = payload["_meta"]
        print("regenerated %s: %d pinned family programs, corpus "
              "version %d, seed %d"
              % (args.synth_goldens, meta["families"], meta["version"],
                 meta["base_seed"]))
        return 0

    workloads = None
    if args.workloads:
        from repro.workloads.registry import get_workload, workload_names
        names = [n.strip() for n in args.workloads.split(",")
                 if n.strip()]
        try:
            workloads = [get_workload(n) for n in names]
        except KeyError as exc:
            raise SystemExit(
                "unknown workload %s; choose from: %s"
                % (exc, ", ".join(workload_names())))

    document = {"kind": "conformance"}
    problems = []

    if not args.skip_oracle:
        cache = None
        if args.cache_dir:
            cache = ArtifactCache(directory=args.cache_dir)
        elif args.jobs > 1:
            import tempfile
            cache = ArtifactCache(
                directory=tempfile.mkdtemp(prefix="jrpm-conform-"))
        bound = args.error_bound if args.error_bound is not None \
            else DEFAULT_ERROR_BOUND
        # an explicit --error-bound is a uniform override: it replaces
        # the measured per-workload table, not just the fallback
        workload_bounds = {} if args.error_bound is not None else None
        oracle = run_oracle(workloads=workloads, jobs=args.jobs,
                            cache=cache, error_bound=bound,
                            workload_bounds=workload_bounds,
                            models=args.models)
        document["oracle"] = oracle.to_dict()
        problems.extend(oracle.violations())
        if not args.json:
            print(oracle.render())

    if args.synth > 0:
        from repro.synth.atlas import build_atlas
        from repro.workloads.registry import SYNTHETIC, by_category

        # first N registered (default-seed) instances per family, so
        # the gate exercises exactly the corpus the bounds were
        # measured on
        subset = []
        per_family = {}
        for w in by_category(SYNTHETIC):
            family = w.label.family
            if per_family.get(family, 0) < args.synth:
                per_family[family] = per_family.get(family, 0) + 1
                subset.append(w)
        atlas = build_atlas(instances=subset, jobs=args.jobs)
        document["synth"] = atlas.to_dict()
        problems.extend(atlas.violations())
        if not args.json:
            if not args.skip_oracle:
                print()
            print(atlas.render())

    if args.fuzz > 0:
        seed = args.seed
        if seed is None:
            seed = int(os.environ.get("JRPM_TEST_SEED",
                                      DEFAULT_FUZZ_SEED))
        repro_dir = args.repro_dir if args.repro_dir is not None \
            else DEFAULT_REPRO_DIR
        campaign = run_campaign(count=args.fuzz, base_seed=seed,
                                jobs=args.jobs,
                                shrink=not args.no_shrink,
                                repro_dir=repro_dir)
        document["campaign"] = campaign.to_dict()
        for f in campaign.failures:
            problems.append("fuzz seed %d: %s" % (f.seed, f.kind))
        for r in campaign.fleet_errors:
            problems.append("fuzz %s: worker failed: %s"
                            % (r.name, getattr(r, "error", "?")))
        if not args.json:
            if not args.skip_oracle:
                print()
            print(campaign.render())

    document["violations"] = problems
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(text)
    if args.json:
        print(text)
    elif problems:
        print()
        for p in problems:
            print("VIOLATION %s" % p)
    return 1 if problems else 0


def _run_synth_command(args) -> int:
    import json

    from repro.synth.families import (
        DEFAULT_PER_FAMILY,
        DEFAULT_SYNTH_SEED,
        FAMILIES,
        family_names,
        generate_corpus,
    )

    if args.list_families:
        for name in family_names():
            family = FAMILIES[name]
            print("%-10s %-9s %s" % (name, family.expected_class,
                                     family.description))
        return 0

    names = None
    if args.families:
        names = [n.strip() for n in args.families.split(",")
                 if n.strip()]
        unknown = [n for n in names if n not in FAMILIES]
        if unknown:
            raise SystemExit(
                "unknown family %s; choose from: %s"
                % (", ".join(unknown), ", ".join(family_names())))
    per_family = args.per_family if args.per_family is not None \
        else DEFAULT_PER_FAMILY
    if per_family < 1:
        raise SystemExit("--per-family must be >= 1, got %d"
                         % per_family)
    seed = args.seed if args.seed is not None else DEFAULT_SYNTH_SEED
    corpus = generate_corpus(families=names, per_family=per_family,
                             base_seed=seed)

    if args.json:
        print(json.dumps(
            [{"name": w.name, "source": w.source(),
              "label": w.label.to_dict()} for w in corpus],
            indent=1, sort_keys=True))
        return 0

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        labels = {}
        for w in corpus:
            with open(os.path.join(args.out, w.name + ".mj"),
                      "w") as handle:
                handle.write(w.source())
            labels[w.name] = w.label.to_dict()
        with open(os.path.join(args.out, "labels.json"), "w") as handle:
            handle.write(json.dumps(labels, indent=1, sort_keys=True))
        print("wrote %d instance(s) + labels.json to %s"
              % (len(corpus), args.out))
        return 0

    for w in corpus:
        label = w.label
        print("%-22s %-10s %-9s %s"
              % (w.name, label.family, label.expected_class,
                 "; ".join(label.carried) or "no carried dependence"))
        if args.source:
            print(w.source())
    print("%d instance(s), %d per family, seed %d"
          % (len(corpus), per_family, seed))
    return 0


def _resolve_source(target: str) -> tuple:
    """Return (name, minijava source) for a workload name or file."""
    if os.path.exists(target):
        with open(target) as handle:
            return os.path.basename(target), handle.read()
    from repro.workloads.registry import get_workload, workload_names
    try:
        workload = get_workload(target)
    except KeyError:
        raise SystemExit(
            "unknown workload %r; choose from: %s"
            % (target, ", ".join(workload_names())))
    return workload.name, workload.source()


def main(argv=None) -> int:
    """Entry point for the ``jrpm`` console script."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        from repro.workloads.registry import all_workloads
        for w in all_workloads(include_synthetic=args.synthetic):
            print("%-16s %-14s %s" % (w.name, w.category, w.description))
        return 0

    if args.command == "synth":
        return _run_synth_command(args)

    if args.command == "models":
        from repro.models import get_model, model_names
        for name in model_names():
            print("%-12s %s" % (name, get_model(name).description))
        return 0

    if args.command == "fleet":
        return _run_fleet_command(args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "cache":
        return _run_cache_command(args)

    if args.command == "conform":
        return _run_conform_command(args)

    name, source = _resolve_source(args.target)
    level = AnnotationLevel.BASE if args.base \
        else AnnotationLevel.OPTIMIZED
    jrpm = Jrpm(source=source, name=name, level=level,
                extended=args.extended, trace_jit=args.trace_jit,
                optimize=args.optimize, models=args.models)
    report = jrpm.run(simulate_tls=not args.no_tls)
    if args.json:
        from repro.jrpm.report import report_json
        print(report_json(report))
        return 0
    print(render_summary(report))
    print()
    print(render_selection(report))
    if args.models:
        from repro.jrpm.report import render_models
        print()
        print(render_models(report))
    if report.outcome is not None:
        print()
        print(render_predicted_vs_actual(report))
    if report.engine is not None:
        print()
        print(render_engine_stats(report))
    if jrpm.trace_jit:
        from repro.jrpm.report import render_trace_jit
        print()
        print(render_trace_jit(report))
    if args.optimize:
        from repro.jrpm.report import render_optimize_stats
        print()
        print(render_optimize_stats(report))
    if args.extended:
        print()
        for sel in report.selection.selected[:3]:
            print(report.device.report(sel.loop_id))
            print()
        from repro.tracer import OptimizationAdvisor
        print(OptimizationAdvisor(report).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
