"""``jrpm`` command-line interface.

Usage::

    jrpm list                     # show the 26 paper workloads
    jrpm run huffman              # full pipeline on one workload
    jrpm run huffman --extended   # with per-PC dependency profiling
    jrpm run path/to/file.mj      # any minijava source file
    jrpm fleet                    # Table 6 over every workload
    jrpm fleet --jobs 4 --cache-dir .jrpm-cache --workloads IDEA,euler
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.jit.annotate import AnnotationLevel
from repro.jrpm.pipeline import Jrpm
from repro.jrpm.report import (
    render_engine_stats,
    render_predicted_vs_actual,
    render_selection,
    render_summary,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jrpm",
        description="Dynamic parallelization pipeline (TEST / Jrpm "
                    "reproduction, Chen & Olukotun, CGO 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full pipeline")
    run.add_argument("target",
                     help="workload name (see 'jrpm list') or a "
                          "minijava source file path")
    run.add_argument("--base", action="store_true",
                     help="use base (unoptimized) annotations")
    run.add_argument("--extended", action="store_true",
                     help="collect per-PC dependency profiles")
    run.add_argument("--no-tls", action="store_true",
                     help="skip the TLS timing simulation")

    fleet = sub.add_parser(
        "fleet", help="run the pipeline over many workloads")
    fleet.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1 = serial)")
    fleet.add_argument("--workloads", metavar="A,B,...",
                       help="comma-separated workload names "
                            "(default: all)")
    fleet.add_argument("--base", action="store_true",
                       help="use base (unoptimized) annotations")
    fleet.add_argument("--no-tls", action="store_true",
                       help="skip the TLS timing simulation")
    fleet.add_argument("--cache-dir", metavar="DIR",
                       help="artifact cache directory (reused across "
                            "invocations and shared by parallel jobs)")
    fleet.add_argument("--timeout", type=float, default=None,
                       metavar="SEC",
                       help="wall-clock limit per workload attempt; "
                            "hung workers are killed and the workload "
                            "retried or failed (parallel runs only)")
    fleet.add_argument("--retries", type=int, default=0, metavar="N",
                       help="re-run a failed, crashed, or timed-out "
                            "workload up to N extra times with "
                            "exponential backoff (default 0)")

    sub.add_parser("list", help="list the bundled paper workloads")
    return parser


def _run_fleet_command(args) -> int:
    import time

    from repro.jrpm.batch import run_fleet
    from repro.jrpm.cache import ArtifactCache

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1, got %d" % args.jobs)
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive, got %r"
                         % args.timeout)
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0, got %d" % args.retries)
    workloads = None
    if args.workloads:
        from repro.workloads.registry import get_workload, workload_names
        names = [n.strip() for n in args.workloads.split(",") if n.strip()]
        try:
            workloads = [get_workload(n) for n in names]
        except KeyError as exc:
            raise SystemExit(
                "unknown workload %s; choose from: %s"
                % (exc, ", ".join(workload_names())))
    cache = None
    if args.cache_dir:
        cache = ArtifactCache(directory=args.cache_dir)
    elif args.jobs > 1:
        # parallel workers need a shared medium; give them a private
        # disk cache so artifacts still flow between sweeps in-run
        import tempfile
        cache = ArtifactCache(
            directory=tempfile.mkdtemp(prefix="jrpm-cache-"))
    level = AnnotationLevel.BASE if args.base \
        else AnnotationLevel.OPTIMIZED
    start = time.perf_counter()
    result = run_fleet(workloads=workloads, jobs=args.jobs,
                       cache=cache, on_error="row", level=level,
                       timeout=args.timeout, retries=args.retries,
                       simulate_tls=not args.no_tls)
    elapsed = time.perf_counter() - start

    print(result.render())
    print()
    print("%d workloads in %.1fs (jobs=%d)  median slowdown %.2fx  "
          "geomean actual/predicted %.2f"
          % (len(result), elapsed, args.jobs, result.median_slowdown,
             result.geomean_prediction_ratio))
    if cache is not None:
        print("cache: %d hits, %d misses, %d corrupt"
              % (result.cache_hits, result.cache_misses,
                 result.cache_corrupt))
    if result.retry_count or result.timeout_count or result.crash_count:
        print("faults survived: %d retries, %d timeouts, "
              "%d worker crashes"
              % (result.retry_count, result.timeout_count,
                 result.crash_count))
    failures = result.errors
    if failures:
        print()
        for row in failures:
            print("FAILED %s: %s" % (row.name, row.error))
            if row.trace:
                print(row.trace)
        return 1
    return 0


def _resolve_source(target: str) -> tuple:
    """Return (name, minijava source) for a workload name or file."""
    if os.path.exists(target):
        with open(target) as handle:
            return os.path.basename(target), handle.read()
    from repro.workloads.registry import get_workload, workload_names
    try:
        workload = get_workload(target)
    except KeyError:
        raise SystemExit(
            "unknown workload %r; choose from: %s"
            % (target, ", ".join(workload_names())))
    return workload.name, workload.source()


def main(argv=None) -> int:
    """Entry point for the ``jrpm`` console script."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        from repro.workloads.registry import all_workloads
        for w in all_workloads():
            print("%-16s %-14s %s" % (w.name, w.category, w.description))
        return 0

    if args.command == "fleet":
        return _run_fleet_command(args)

    name, source = _resolve_source(args.target)
    level = AnnotationLevel.BASE if args.base \
        else AnnotationLevel.OPTIMIZED
    jrpm = Jrpm(source=source, name=name, level=level,
                extended=args.extended)
    report = jrpm.run(simulate_tls=not args.no_tls)
    print(render_summary(report))
    print()
    print(render_selection(report))
    if report.outcome is not None:
        print()
        print(render_predicted_vs_actual(report))
    if report.engine is not None:
        print()
        print(render_engine_stats(report))
    if args.extended:
        print()
        for sel in report.selection.selected[:3]:
            print(report.device.report(sel.loop_id))
            print()
        from repro.tracer import OptimizationAdvisor
        print(OptimizationAdvisor(report).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
