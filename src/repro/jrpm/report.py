"""Rendering of pipeline results: text in the shape of the paper's
tables and figures, plus the machine-readable JSON schema shared by
``jrpm run --json``, ``jrpm fleet --json``, and the analysis service
(one serializer, so CLI and service outputs are byte-identical for the
same request)."""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from repro.jrpm.pipeline import JrpmReport


def render_summary(report: JrpmReport) -> str:
    """One-paragraph overview of a pipeline run."""
    lines = [
        "Jrpm report: %s" % report.name,
        "  sequential time   : %d cycles" % report.sequential_cycles,
        "  profiling slowdown: %.1f%%"
        % (100 * (report.profiling_slowdown - 1)),
        "  loops profiled    : %d" % len(report.device.stats),
        "  STLs selected     : %d" % len(report.selection.selected),
        "  coverage          : %.1f%%" % (100 * report.coverage),
        "  predicted speedup : %.2fx" % report.predicted_speedup,
    ]
    if report.outcome is not None:
        lines.append(
            "  actual speedup    : %.2fx (TLS simulation)"
            % report.actual_speedup)
    return "\n".join(lines)


def render_selection(report: JrpmReport, limit: int = 20) -> str:
    """Per-STL table: the Figure 10 block decomposition in text form."""
    sel = report.selection
    lines = ["%-6s %12s %9s %10s %10s %9s %-10s" % (
        "loop", "cycles", "cover%", "threads", "size", "est.spdup",
        "model")]
    for s in sel.selected[:limit]:
        st = s.stats
        lines.append("L%-5d %12d %8.1f%% %10d %10.1f %8.2fx %-10s" % (
            s.loop_id, st.cycles,
            100.0 * st.cycles / sel.total_cycles,
            st.threads, st.avg_thread_size, s.estimate.speedup,
            getattr(s, "model", "hydra-tls")))
    lines.append("%-6s %12d %8.1f%%" % (
        "serial", sel.serial_cycles,
        100.0 * sel.serial_cycles / sel.total_cycles
        if sel.total_cycles else 0.0))
    return "\n".join(lines)


def render_predicted_vs_actual(report: JrpmReport) -> str:
    """Figure 11's two bars for this program, plus per-STL detail."""
    out = report.outcome
    if out is None:
        return "(TLS simulation was not run)"
    lines = [
        "normalized execution time (1.0 = sequential)",
        "  predicted: %.3f" % out.predicted_normalized_time,
        "  actual   : %.3f" % out.actual_normalized_time,
        "",
        "%-6s %12s %10s %10s %12s" % (
            "loop", "cycles", "predicted", "actual", "viol/thread"),
    ]
    for loop_id, cycles, pred, actual, vrate in out.per_stl_rows():
        lines.append("L%-5d %12d %9.2fx %9.2fx %12.3f" % (
            loop_id, cycles, pred, actual, vrate))
    return "\n".join(lines)


def render_models(report: JrpmReport) -> str:
    """Per-loop execution-model comparison: every competing model's
    estimate and the argmax winner (``jrpm run --models`` output)."""
    requested = getattr(report, "models", None)
    sel = report.selection
    if not requested:
        return "(multi-model selection was not run)"
    names = list(requested)
    header = "%-6s %-11s %-9s" % ("loop", "winner", "selected")
    header += "".join(" %11s" % n[:11] for n in names)
    lines = ["execution models: " + ", ".join(names), header]
    selected_ids = {s.loop_id for s in sel.selected}
    for loop_id in sorted(sel.decisions):
        dec = sel.decisions[loop_id]
        estimates = getattr(dec, "model_estimates", None) or {}
        row = "L%-5d %-11s %-9s" % (
            loop_id, getattr(dec, "model", "hydra-tls"),
            "yes" if loop_id in selected_ids else "no")
        for name in names:
            est = estimates.get(name)
            row += " %10.2fx" % est.speedup if est is not None \
                else " %11s" % "-"
        lines.append(row)
    return "\n".join(lines)


def render_engine_stats(report: JrpmReport) -> str:
    """Trace-engine observability block: per-phase wall-clock and
    kernel memo hit/miss counters of the TLS replay."""
    if report.engine is None:
        return "(trace engine was not used)"
    return "trace engine\n" + report.engine.stats.render()


def render_trace_jit(report: JrpmReport) -> str:
    """Trace-JIT observability block: per-run recording/link/blacklist
    counters and the per-trace hit table."""
    lines = ["trace jit"]
    for label, result in (("sequential", report.sequential),
                          ("profiled", report.profiled)):
        jit = getattr(result, "jit", None)
        if jit is None:
            lines.append("  %-10s (disabled)" % label)
            continue
        lines.append(
            "  %-10s linked=%d blacklisted=%d invocations=%d "
            "iterations=%d guard_failures=%d"
            % (label, jit["traces_linked"], jit["traces_blacklisted"],
               jit["invocations"], jit["iterations"],
               jit["guard_failures"]))
        for tr in jit["traces"]:
            lines.append(
                "    %s+%d (%s): %d ops, %d invocations, "
                "%d iterations, %d guard failures"
                % (tr["fn"], tr["anchor"], tr["mode"], tr["ops"],
                   tr["invocations"], tr["iterations"],
                   tr["guard_failures"]))
    return "\n".join(lines)


def render_optimize_stats(report: JrpmReport) -> str:
    """Optimizer observability block: per-pass rewrite counters."""
    stats = getattr(report, "optimize_stats", None)
    if not stats:
        return "(optimizer was not run)"
    lines = ["optimizer (%d rounds, %d rewrites)"
             % (stats.get("rounds", 0), stats.get("total", 0))]
    for key in sorted(stats):
        if key in ("rounds", "total") or not stats[key]:
            continue
        lines.append("  %-20s %d" % (key, stats[key]))
    return "\n".join(lines)


def render_characteristics_row(report: JrpmReport) -> str:
    """This program's row of Table 6 (TEST analysis columns)."""
    table = report.candidates
    sel = report.selection
    significant = sel.significant()
    heights: List[int] = []
    for s in significant:
        cand = table.by_id.get(s.loop_id)
        if cand is not None:
            heights.append(cand.loop.height1())
    avg_height = sum(heights) / len(heights) if heights else 0.0
    threads_per_entry = [s.stats.avg_iters_per_entry for s in significant]
    sizes = [s.stats.avg_thread_size for s in significant]
    weights = [s.stats.cycles for s in significant]
    total_w = sum(weights) or 1

    def wavg(values: List[float]) -> float:
        return sum(v * w for v, w in zip(values, weights)) / total_w

    return ("%-16s loops=%-4d depth=%-2d selected=%-3d "
            "avg_height=%-4.1f threads/entry=%-8.0f size=%-8.0f" % (
                report.name,
                table.loop_count,
                report.device.max_dynamic_depth(),
                len(significant),
                avg_height,
                wavg(threads_per_entry) if threads_per_entry else 0,
                wavg(sizes) if sizes else 0))


# ---------------------------------------------------------------------------
# machine-readable report schema (shared by CLI --json and the service)
# ---------------------------------------------------------------------------

#: bump when the JSON layout changes shape; consumers pin against it
#: (v4: per-loop execution ``model`` in selection rows plus a nullable
#: top-level ``models`` block for multi-model runs)
REPORT_SCHEMA_VERSION = 4

#: required top-level keys and their accepted types.  ``float`` accepts
#: ints too (JSON has one number type); ``None`` marks nullable fields.
REPORT_SCHEMA: Dict[str, tuple] = {
    "schema_version": (int,),
    "name": (str,),
    "sequential_cycles": (int,),
    "profiled_cycles": (int,),
    "profiling_slowdown": (float, int),
    "loops_profiled": (int,),
    "coverage": (float, int),
    "predicted_speedup": (float, int),
    "actual_speedup": (float, int, type(None)),
    "selection": (dict,),
    "predicted_vs_actual": (dict, type(None)),
    "engine": (dict, type(None)),
    "trace_jit": (dict, type(None)),
    "optimize_stats": (dict, type(None)),
    "models": (dict, type(None)),
}

#: required keys of every row in ``selection["selected"]``
SELECTION_ROW_SCHEMA: Dict[str, tuple] = {
    "loop_id": (int,),
    "cycles": (int,),
    "coverage": (float, int),
    "entries": (int,),
    "threads": (int,),
    "avg_iters_per_entry": (float, int),
    "avg_thread_size": (float, int),
    "predicted_speedup": (float, int),
    "model": (str,),
}


class ReportSchemaError(ValueError):
    """A report dict does not match :data:`REPORT_SCHEMA`."""


def _finite(value: float) -> Optional[float]:
    """NaN/inf are not JSON; serialize them as null."""
    return value if value is not None and math.isfinite(value) else None


def report_to_dict(report: JrpmReport) -> Dict[str, Any]:
    """The canonical machine-readable form of a pipeline run.

    Everything the text renderers print — summary headline, the
    Figure 10 selection table, the Figure 11 predicted-vs-actual rows,
    and the trace-engine counters — in one stable JSON-friendly dict.
    """
    sel = report.selection
    selected = []
    for s in sel.selected:
        st = s.stats
        selected.append({
            "loop_id": s.loop_id,
            "cycles": st.cycles,
            "coverage": (st.cycles / sel.total_cycles
                         if sel.total_cycles else 0.0),
            "entries": st.entries,
            "threads": st.threads,
            "avg_iters_per_entry": st.avg_iters_per_entry,
            "avg_thread_size": st.avg_thread_size,
            "predicted_speedup": s.estimate.speedup,
            # getattr: selections unpickled from pre-v4 cache blobs
            # predate the attribute
            "model": getattr(s, "model", "hydra-tls"),
        })
    out: Dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "name": report.name,
        "sequential_cycles": report.sequential_cycles,
        "profiled_cycles": (report.profiled.cycles
                            if report.profiled else 0),
        "profiling_slowdown": report.profiling_slowdown,
        "loops_profiled": len(report.device.stats),
        "coverage": report.coverage,
        "predicted_speedup": report.predicted_speedup,
        "actual_speedup": (report.actual_speedup
                           if report.outcome is not None else None),
        "selection": {
            "total_cycles": sel.total_cycles,
            "serial_cycles": sel.serial_cycles,
            "selected": selected,
        },
        "predicted_vs_actual": None,
        "engine": None,
        "trace_jit": None,
        # getattr: reports unpickled from pre-v3 cache blobs predate
        # the attribute
        "optimize_stats": getattr(report, "optimize_stats", None),
        "models": None,
    }
    requested = getattr(report, "models", None)
    if requested:
        per_loop = []
        counts: Dict[str, int] = {}
        selected_ids = {s.loop_id for s in sel.selected}
        for loop_id in sorted(sel.decisions):
            dec = sel.decisions[loop_id]
            winner = getattr(dec, "model", "hydra-tls")
            estimates = getattr(dec, "model_estimates", None) or {}
            chosen = loop_id in selected_ids
            # unselected loops stay sequential regardless of which
            # speculative model won their estimate comparison
            effective = winner if chosen else "sequential"
            counts[effective] = counts.get(effective, 0) + 1
            per_loop.append({
                "loop_id": loop_id,
                "model": winner,
                "selected": chosen,
                "estimates": {name: _finite(est.speedup)
                              for name, est in estimates.items()},
            })
        out["models"] = {
            "requested": list(requested),
            "selected_counts": counts,
            "per_loop": per_loop,
        }
    # per-run trace-JIT counters (getattr: results unpickled from old
    # cache blobs predate the attribute); all counts are deterministic,
    # so CLI and service stay byte-identical
    seq_jit = getattr(report.sequential, "jit", None)
    prof_jit = getattr(report.profiled, "jit", None)
    if seq_jit is not None or prof_jit is not None:
        out["trace_jit"] = {
            "sequential": seq_jit,
            "profiled": prof_jit,
        }
    if report.outcome is not None:
        rows = []
        # per_stl_rows iterates selection.selected in order, so zip
        # recovers each row's winning model
        for (loop_id, cycles, pred, actual, vrate), s in \
                zip(report.outcome.per_stl_rows(), sel.selected):
            rows.append({
                "loop_id": loop_id,
                "cycles": cycles,
                "predicted_speedup": _finite(pred),
                "actual_speedup": _finite(actual),
                "violations_per_thread": _finite(vrate),
                "model": getattr(s, "model", "hydra-tls"),
            })
        out["predicted_vs_actual"] = {
            "predicted_normalized_time":
                report.outcome.predicted_normalized_time,
            "actual_normalized_time":
                report.outcome.actual_normalized_time,
            "rows": rows,
        }
    if report.engine is not None:
        # wall-clock seconds are dropped: the canonical report must be
        # deterministic for a given request (CLI and service emit
        # byte-identical JSON), and timings never are
        out["engine"] = {
            kernel: {k: v for k, v in counters.items()
                     if k != "seconds"}
            for kernel, counters in report.engine.stats.snapshot().items()
        }
    return out


def dumps_canonical(obj: Any) -> str:
    """The one JSON encoding every producer uses (sorted keys, fixed
    separators, strict — no NaN), so identical dicts are identical
    bytes whether they came from the CLI or the service."""
    return json.dumps(obj, sort_keys=True, indent=2,
                      separators=(",", ": "), allow_nan=False)


def report_json(report: JrpmReport) -> str:
    """``jrpm run --json`` output: the canonical report serialization."""
    return dumps_canonical(report_to_dict(report))


def _check_keys(where: str, data: Dict[str, Any],
                schema: Dict[str, tuple], problems: List[str]) -> None:
    for key, types in schema.items():
        if key not in data:
            problems.append("%s: missing key %r" % (where, key))
        elif not isinstance(data[key], types) \
                or (bool not in types and isinstance(data[key], bool)):
            problems.append("%s: key %r has type %s, expected %s"
                            % (where, key, type(data[key]).__name__,
                               "/".join(t.__name__ for t in types)))
    for key in data:
        if key not in schema:
            problems.append("%s: unexpected key %r" % (where, key))


def validate_report_dict(data: Dict[str, Any]) -> None:
    """Assert ``data`` matches :data:`REPORT_SCHEMA` exactly.

    Raises :class:`ReportSchemaError` listing every violation.  The
    service handler runs this on every response it is about to send;
    the schema-stability tests run it over every bundled workload.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        raise ReportSchemaError("report must be a dict, got %s"
                                % type(data).__name__)
    _check_keys("report", data, REPORT_SCHEMA, problems)
    version = data.get("schema_version")
    if isinstance(version, int) and version != REPORT_SCHEMA_VERSION:
        problems.append("report: schema_version %r != %d"
                        % (version, REPORT_SCHEMA_VERSION))
    sel = data.get("selection")
    if isinstance(sel, dict):
        for key in ("total_cycles", "serial_cycles", "selected"):
            if key not in sel:
                problems.append("selection: missing key %r" % key)
        for i, row in enumerate(sel.get("selected") or []):
            _check_keys("selection.selected[%d]" % i, row,
                        SELECTION_ROW_SCHEMA, problems)
    pva = data.get("predicted_vs_actual")
    if isinstance(pva, dict):
        for key in ("predicted_normalized_time",
                    "actual_normalized_time", "rows"):
            if key not in pva:
                problems.append("predicted_vs_actual: missing key %r"
                                % key)
    if problems:
        raise ReportSchemaError("; ".join(problems))


def fleet_to_dict(result, elapsed: Optional[float] = None,
                  jobs: Optional[int] = None) -> Dict[str, Any]:
    """``jrpm fleet --json`` payload: one report dict per successful
    row (same serializer as ``jrpm run --json`` and the service), error
    rows with their traceback, plus the sweep-level aggregates."""
    rows: List[Dict[str, Any]] = []
    for row in result:
        if row.ok:
            rows.append({"workload": row.name, "ok": True,
                         "report": report_to_dict(row.report)})
        else:
            rows.append({"workload": row.name, "ok": False,
                         "error": row.error, "trace": row.trace,
                         "attempts": row.attempts})
    out: Dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "rows": rows,
        "median_slowdown": result.median_slowdown,
        "geomean_prediction_ratio": result.geomean_prediction_ratio,
        "cache_stats": result.cache_stats,
        "exec_stats": result.exec_stats,
    }
    if elapsed is not None:
        out["elapsed_s"] = round(elapsed, 3)
    if jobs is not None:
        out["jobs"] = jobs
    return out
