"""Text rendering of pipeline results in the shape of the paper's
tables and figures."""

from __future__ import annotations

from typing import List

from repro.jrpm.pipeline import JrpmReport


def render_summary(report: JrpmReport) -> str:
    """One-paragraph overview of a pipeline run."""
    lines = [
        "Jrpm report: %s" % report.name,
        "  sequential time   : %d cycles" % report.sequential_cycles,
        "  profiling slowdown: %.1f%%"
        % (100 * (report.profiling_slowdown - 1)),
        "  loops profiled    : %d" % len(report.device.stats),
        "  STLs selected     : %d" % len(report.selection.selected),
        "  coverage          : %.1f%%" % (100 * report.coverage),
        "  predicted speedup : %.2fx" % report.predicted_speedup,
    ]
    if report.outcome is not None:
        lines.append(
            "  actual speedup    : %.2fx (TLS simulation)"
            % report.actual_speedup)
    return "\n".join(lines)


def render_selection(report: JrpmReport, limit: int = 20) -> str:
    """Per-STL table: the Figure 10 block decomposition in text form."""
    sel = report.selection
    lines = ["%-6s %12s %9s %10s %10s %9s" % (
        "loop", "cycles", "cover%", "threads", "size", "est.spdup")]
    for s in sel.selected[:limit]:
        st = s.stats
        lines.append("L%-5d %12d %8.1f%% %10d %10.1f %8.2fx" % (
            s.loop_id, st.cycles,
            100.0 * st.cycles / sel.total_cycles,
            st.threads, st.avg_thread_size, s.estimate.speedup))
    lines.append("%-6s %12d %8.1f%%" % (
        "serial", sel.serial_cycles,
        100.0 * sel.serial_cycles / sel.total_cycles
        if sel.total_cycles else 0.0))
    return "\n".join(lines)


def render_predicted_vs_actual(report: JrpmReport) -> str:
    """Figure 11's two bars for this program, plus per-STL detail."""
    out = report.outcome
    if out is None:
        return "(TLS simulation was not run)"
    lines = [
        "normalized execution time (1.0 = sequential)",
        "  predicted: %.3f" % out.predicted_normalized_time,
        "  actual   : %.3f" % out.actual_normalized_time,
        "",
        "%-6s %12s %10s %10s %12s" % (
            "loop", "cycles", "predicted", "actual", "viol/thread"),
    ]
    for loop_id, cycles, pred, actual, vrate in out.per_stl_rows():
        lines.append("L%-5d %12d %9.2fx %9.2fx %12.3f" % (
            loop_id, cycles, pred, actual, vrate))
    return "\n".join(lines)


def render_engine_stats(report: JrpmReport) -> str:
    """Trace-engine observability block: per-phase wall-clock and
    kernel memo hit/miss counters of the TLS replay."""
    if report.engine is None:
        return "(trace engine was not used)"
    return "trace engine\n" + report.engine.stats.render()


def render_characteristics_row(report: JrpmReport) -> str:
    """This program's row of Table 6 (TEST analysis columns)."""
    table = report.candidates
    sel = report.selection
    significant = sel.significant()
    heights: List[int] = []
    for s in significant:
        cand = table.by_id.get(s.loop_id)
        if cand is not None:
            heights.append(cand.loop.height1())
    avg_height = sum(heights) / len(heights) if heights else 0.0
    threads_per_entry = [s.stats.avg_iters_per_entry for s in significant]
    sizes = [s.stats.avg_thread_size for s in significant]
    weights = [s.stats.cycles for s in significant]
    total_w = sum(weights) or 1

    def wavg(values: List[float]) -> float:
        return sum(v * w for v, w in zip(values, weights)) / total_w

    return ("%-16s loops=%-4d depth=%-2d selected=%-3d "
            "avg_height=%-4.1f threads/entry=%-8.0f size=%-8.0f" % (
                report.name,
                table.loop_count,
                report.device.max_dynamic_depth(),
                len(significant),
                avg_height,
                wavg(threads_per_entry) if threads_per_entry else 0,
                wavg(sizes) if sizes else 0))
