"""Equation 1: estimated speculative speedup of an STL from TEST
statistics (Section 4.3).

The published equation is typographically corrupted in the scanned
paper; this is the reconstruction derived in DESIGN.md, which matches
every constraint the prose states:

* With thread size ``T`` and a critical arc of length ``A`` spanning
  ``k`` threads, consecutive thread starts must be at least
  ``(kT - A)/k`` apart for the dependent load to execute after the
  producing store; CPU reuse on ``p`` processors requires at least
  ``T/p``.  The arc-limited speedup is therefore
  ``min(p, kT / (kT - A))`` — which saturates at ``p = 4`` exactly when
  ``A >= (3/4) T`` for previous-thread arcs, as the paper states.
* ``base_speedup`` mixes the two arc bins by their measured critical-arc
  frequencies; arc-free threads run at the full ``p``.
* ``spec_time`` adds the Table 2 overheads — startup+shutdown per entry,
  end-of-iteration per thread, store-load communication for forwarded
  locals — and serializes the overflowing fraction of threads (an
  overflowed thread stalls until it is the head, gaining nothing).
* ``speedup = orig_time / spec_time``, capped at ``p``.
"""

from __future__ import annotations

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.tracer.stats import STLStats


class SpeedupEstimate:
    """Equation 1's result, with its intermediate terms exposed."""

    def __init__(self, loop_id: int, speedup: float, base_speedup: float,
                 spec_time: float, orig_time: int,
                 overflow_freq: float):
        self.loop_id = loop_id
        #: the headline estimate (1.0 means "no benefit")
        self.speedup = speedup
        #: dependency-arc-limited parallel speedup before overheads
        self.base_speedup = base_speedup
        #: estimated speculative execution time in cycles
        self.spec_time = spec_time
        #: measured sequential time in cycles
        self.orig_time = orig_time
        self.overflow_freq = overflow_freq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<SpeedupEstimate L%d %.2fx (base %.2fx, ovf %.2f)>" % (
            self.loop_id, self.speedup, self.base_speedup,
            self.overflow_freq)


def arc_limited_speedup(thread_size: float, arc_length: float,
                        span: int, n_cpus: int) -> float:
    """Speedup permitted by one critical arc.

    ``span`` is the thread distance the arc crosses (1 for t-1 arcs;
    2 approximates the <t-1 bin, whose true distance the two-bin
    hardware cannot represent — an imprecision the paper accepts).
    """
    if thread_size <= 0:
        return float(n_cpus)
    window = span * thread_size
    if arc_length >= window * (n_cpus - 1) / n_cpus:
        return float(n_cpus)
    slack = window - arc_length
    if slack <= 0:
        return float(n_cpus)
    return max(1.0, min(float(n_cpus), window / slack))


def base_speedup(stats: STLStats, n_cpus: int) -> float:
    """Arc-frequency-weighted parallel speedup (no overheads yet)."""
    t_size = stats.avg_thread_size
    f_prev = min(1.0, stats.arc_freq_prev)
    f_earl = min(1.0 - f_prev, stats.arc_freq_earlier)
    s_prev = arc_limited_speedup(t_size, stats.avg_arc_len_prev, 1, n_cpus)
    s_earl = arc_limited_speedup(t_size, stats.avg_arc_len_earlier, 2,
                                 n_cpus)
    f_none = max(0.0, 1.0 - f_prev - f_earl)
    mix = f_prev * s_prev + f_earl * s_earl + f_none * n_cpus
    return max(1.0, mix)


def estimate_speedup(stats: STLStats,
                     config: HydraConfig = DEFAULT_HYDRA
                     ) -> SpeedupEstimate:
    """Apply Equation 1 to one STL's accumulated statistics."""
    orig_time = stats.cycles
    if stats.threads == 0 or stats.profiled_threads == 0 \
            or orig_time <= 0:
        return SpeedupEstimate(stats.loop_id, 1.0, 1.0,
                               float(orig_time), orig_time, 0.0)

    base = base_speedup(stats, config.n_cpus)
    # a loop entered with fewer iterations than CPUs cannot fill the CMP
    iters = stats.avg_iters_per_entry
    if 0 < iters < config.n_cpus:
        base = min(base, max(1.0, iters))
    overflow_freq = stats.overflow_freq

    entry_overhead = (config.startup_overhead
                      + config.shutdown_overhead) * stats.entries
    thread_overhead = config.eoi_overhead * stats.threads
    comm_overhead = (config.store_load_comm_overhead
                     * stats.local_arc_freq * stats.threads)

    spec_time = (entry_overhead + thread_overhead + comm_overhead
                 + overflow_freq * orig_time
                 + (1.0 - overflow_freq) * orig_time / base)

    speedup = orig_time / spec_time if spec_time > 0 else 1.0
    speedup = min(float(config.n_cpus), speedup)
    return SpeedupEstimate(stats.loop_id, speedup, base, spec_time,
                           orig_time, overflow_freq)
