"""Optimization advisor: turning TEST's statistics into actions.

Section 6.3: the dependency statistics "direct the compiler to
variables where optimized placement of loads and stores can extend
critical arcs or where synchronization can be inserted to minimize
violations", and are "invaluable for speculative programmer
optimizations".  This module packages those decision rules as an API:
feed it a profiled report and it emits concrete, ranked
recommendations per loop.

Rules (each cites the paper mechanism it encodes):

* ``SYNCHRONIZE`` — frequent sub-saturation heap arcs (shorter than
  the (p-1)/p·T point where speedup maxes out) on a worthwhile loop:
  insert synchronization on the named load sites so consumers wait
  instead of violating ([22]; modelled by
  ``compile_stl(synchronize_heap=True)``).
* ``RESTRUCTURE_LOCAL`` — the critical arcs flow through a local
  variable: move the producing store earlier / the consuming load later
  or rewrite the recurrence (the paper's NumericSort/Huffman/db fixes).
* ``SPLIT_OR_DESCEND`` — the loop consistently overflows the
  speculative buffers: pick a deeper decomposition or shrink per-thread
  state (Section 6.1's data-set discussion).
* ``LEAVE_SEQUENTIAL`` — high coverage but nothing TEST can see to fix:
  the loop is serial at every level it measured.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.tracer.extended import ExtendedTestDevice
from repro.tracer.stats import STLStats


class Action(enum.Enum):
    """What the advisor suggests doing about a loop."""

    SYNCHRONIZE = "insert synchronization"
    RESTRUCTURE_LOCAL = "restructure the local recurrence"
    SPLIT_OR_DESCEND = "reduce speculative state or descend the nest"
    LEAVE_SEQUENTIAL = "leave sequential"


class Recommendation:
    """One actionable finding for one loop."""

    def __init__(self, loop_id: int, action: Action, reason: str,
                 sites: Optional[List[str]] = None,
                 severity: float = 0.0):
        self.loop_id = loop_id
        self.action = action
        #: human-readable evidence, with the statistics that triggered it
        self.reason = reason
        #: "function:pc" load sites, when the extended device ran
        self.sites = sites or []
        #: fraction of program time at stake (sorting key)
        self.severity = severity

    def render(self) -> str:
        text = "L%-3d %-38s %s" % (self.loop_id, self.action.value,
                                   self.reason)
        if self.sites:
            text += "  [sites: %s]" % ", ".join(self.sites[:4])
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Recommendation L%d %s>" % (self.loop_id,
                                            self.action.name)


class OptimizationAdvisor:
    """Derives recommendations from a pipeline report.

    Works with any report; per-site guidance needs the pipeline run
    with ``extended=True`` so the device binned arcs by load PC.
    """

    def __init__(self, report,
                 min_coverage: float = 0.02,
                 short_arc_fraction: float = 0.75,
                 arc_freq_threshold: float = 0.5,
                 overflow_threshold: float = 0.5):
        self.report = report
        self.min_coverage = min_coverage
        self.short_arc_fraction = short_arc_fraction
        self.arc_freq_threshold = arc_freq_threshold
        self.overflow_threshold = overflow_threshold

    # -- rules -------------------------------------------------------------

    def _sites_for(self, loop_id: int, stats: STLStats) -> List[str]:
        device = self.report.device
        if not isinstance(device, ExtendedTestDevice):
            return []
        profile = device.profile_for(loop_id)
        limiting = profile.limiting(stats.avg_thread_size,
                                    self.short_arc_fraction)
        return ["%s:%d" % (b.fn, b.pc) for b in limiting]

    def _advise_loop(self, loop_id: int,
                     stats: STLStats) -> Optional[Recommendation]:
        total = self.report.profiled.cycles or 1
        share = stats.cycles / total
        if share < self.min_coverage or stats.profiled_threads == 0:
            return None

        decision = self.report.selection.decisions.get(loop_id)
        speedup = decision.estimate.speedup if decision else 1.0
        arc_bound = (stats.avg_thread_size
                     * self.short_arc_fraction)

        if stats.overflow_freq > self.overflow_threshold:
            return Recommendation(
                loop_id, Action.SPLIT_OR_DESCEND,
                "overflows buffers on %.0f%% of threads "
                "(max %d load / %d store lines)"
                % (100 * stats.overflow_freq, stats.max_load_lines,
                   stats.max_store_lines),
                severity=share)

        limited = (stats.arc_freq_prev > self.arc_freq_threshold
                   and 0 < stats.avg_arc_len_prev < arc_bound
                   and speedup < 2.0)
        if limited:
            local_share = (stats.local_arcs / stats.arcs_prev
                           if stats.arcs_prev else 0.0)
            reason = ("%.0f%% of threads carry a %.0f-cycle arc in "
                      "%.0f-cycle threads (est. %.2fx)"
                      % (100 * stats.arc_freq_prev,
                         stats.avg_arc_len_prev,
                         stats.avg_thread_size, speedup))
            sites = self._sites_for(loop_id, stats)
            if local_share > 0.5:
                return Recommendation(
                    loop_id, Action.RESTRUCTURE_LOCAL, reason,
                    sites=sites, severity=share)
            if sites or stats.arcs_prev:
                return Recommendation(
                    loop_id, Action.SYNCHRONIZE, reason,
                    sites=sites, severity=share)
            return Recommendation(
                loop_id, Action.LEAVE_SEQUENTIAL, reason,
                severity=share)
        return None

    # -- API --------------------------------------------------------------

    def advise(self) -> List[Recommendation]:
        """All recommendations, highest program-time share first."""
        out: List[Recommendation] = []
        for loop_id, stats in self.report.device.stats.items():
            rec = self._advise_loop(loop_id, stats)
            if rec is not None:
                out.append(rec)
        out.sort(key=lambda r: -r.severity)
        return out

    def render(self) -> str:
        """Text report of all recommendations."""
        recs = self.advise()
        if not recs:
            return ("No tuning opportunities found: every significant "
                    "loop either parallelizes or carries no "
                    "addressable dependence.")
        lines = ["Optimization guidance (Section 6.3):"]
        lines += ["  " + r.render() for r in recs]
        return "\n".join(lines)
