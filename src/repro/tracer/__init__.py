"""TEST — Tracer for Extracting Speculative Threads.

The paper's core contribution: comparator banks performing the load
dependency analysis and the speculative-state overflow analysis over an
annotated sequential execution (Section 4.2), the Equation 1 speedup
estimator, the Equation 2 nest selector, the extended per-PC dependency
profiler (Section 6.3), and the software-only baseline the hardware is
compared against (Section 5).
"""

from repro.tracer.advisor import (
    Action,
    OptimizationAdvisor,
    Recommendation,
)
from repro.tracer.bank import ComparatorBank
from repro.tracer.device import TestDevice
from repro.tracer.estimator import (
    SpeedupEstimate,
    arc_limited_speedup,
    base_speedup,
    estimate_speedup,
)
from repro.tracer.extended import (
    ArcBin,
    DependencyProfile,
    ExtendedTestDevice,
)
from repro.tracer.selector import (
    LoopDecision,
    SelectedSTL,
    SelectionResult,
    select_stls,
)
from repro.tracer.software import SoftwareCosts, SoftwareProfiler
from repro.tracer.stats import STLStats
from repro.tracer.timestamps import (
    LineTimestampTable,
    LocalTimestampTable,
    StoreTimestampFIFO,
)

__all__ = [
    "Action",
    "ArcBin",
    "ComparatorBank",
    "OptimizationAdvisor",
    "Recommendation",
    "DependencyProfile",
    "ExtendedTestDevice",
    "LineTimestampTable",
    "LocalTimestampTable",
    "LoopDecision",
    "STLStats",
    "SelectedSTL",
    "SelectionResult",
    "SoftwareCosts",
    "SoftwareProfiler",
    "SpeedupEstimate",
    "StoreTimestampFIFO",
    "TestDevice",
    "arc_limited_speedup",
    "base_speedup",
    "estimate_speedup",
    "select_stls",
]
