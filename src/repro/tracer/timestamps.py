"""Timestamp storage: the speculative store buffers repurposed during
profiling (Section 5.3 of the paper).

During sequential profiled execution the five 2 kB speculative store
buffers hold event timestamps instead of speculative writes:

* three buffers form a FIFO of **heap store timestamps** — 192 lines
  (6 kB) of write history at word granularity.  Old entries fall off;
  a dependency whose producer store has been evicted is simply missed
  (one of the imprecision sources Section 6.2 discusses).
* one buffer holds **cache-line timestamps**, indexed direct-mapped by
  line address bits with a tag check, at two granularities (Figure 4):
  a 512-entry table for speculative-read (load) state and a 64-entry
  table for store-buffer state.
* one buffer holds **local-variable store timestamps**, keyed by
  ``(frame, slot)``, 64 entries with FIFO replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


class StoreTimestampFIFO:
    """Word-granularity address -> store timestamp map with FIFO
    eviction.  Models the 192-line heap write-history buffer."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self.evictions = 0

    def record(self, address: int, timestamp: int) -> None:
        """Record a store; the newest entry for an address wins."""
        entries = self._entries
        if address in entries:
            # refresh: the hardware appends a new FIFO entry and the old
            # one goes stale; net effect is the newest timestamp is found
            del entries[address]
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[address] = timestamp

    def lookup(self, address: int) -> Optional[int]:
        """Most recent store timestamp for ``address``, if still held."""
        return self._entries.get(address)

    @property
    def get(self):
        """Bound ``dict.get`` over the entries, for batch loops that
        look up thousands of addresses (lookups never evict)."""
        return self._entries.get

    def __len__(self) -> int:
        return len(self._entries)


class LineTimestampTable:
    """Direct-mapped cache-line timestamp table (Figure 4 columns a-c).

    Indexed by the low line-address bits; a tag mismatch behaves like a
    miss (and the entry is overwritten on record), exactly as in the
    hardware.  ``n_entries`` must be a power of two.
    """

    def __init__(self, n_entries: int):
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("n_entries must be a positive power of two")
        self.n_entries = n_entries
        self._mask = n_entries - 1
        self._tags = [None] * n_entries
        self._times = [0] * n_entries
        self.conflicts = 0

    def lookup(self, line: int) -> Optional[int]:
        """Timestamp recorded for ``line``, or None on miss/conflict."""
        idx = line & self._mask
        if self._tags[idx] == line >> self._mask.bit_length():
            return self._times[idx]
        return None

    def record(self, line: int, timestamp: int) -> None:
        """Record ``line``'s timestamp, displacing any conflicting tag."""
        idx = line & self._mask
        tag = line >> self._mask.bit_length()
        if self._tags[idx] is not None and self._tags[idx] != tag:
            self.conflicts += 1
        self._tags[idx] = tag
        self._times[idx] = timestamp

    def touch(self, line: int, timestamp: int) -> Optional[int]:
        """:meth:`lookup` then :meth:`record` in one call — the shape
        every load/store event takes in the device's batch loop."""
        shift = self._mask.bit_length()
        idx = line & self._mask
        tag = line >> shift
        tags = self._tags
        old_tag = tags[idx]
        if old_tag == tag:
            old = self._times[idx]
        else:
            old = None
            if old_tag is not None:
                self.conflicts += 1
        tags[idx] = tag
        self._times[idx] = timestamp
        return old


class LocalTimestampTable:
    """Local-variable store timestamps, keyed by (frame, slot).

    64 entries with FIFO replacement model the dedicated 2 kB buffer.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.evictions = 0

    def record(self, frame_id: int, slot: int, timestamp: int) -> None:
        key = (frame_id, slot)
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[key] = timestamp

    def lookup(self, frame_id: int, slot: int) -> Optional[int]:
        return self._entries.get((frame_id, slot))

    @property
    def get(self):
        """Bound ``dict.get`` over the ``(frame, slot)`` entries, for
        batch loops (lookups never evict)."""
        return self._entries.get

    def __len__(self) -> int:
        return len(self._entries)
