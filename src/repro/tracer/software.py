"""Software-only profiling baseline (Section 5, first paragraph).

"Simulations indicate program execution slows over 100x when profiling
using a software-only implementation of the trace analyses."  The
overheads come from callback annotations on *every* memory and local
variable access plus the software comparisons that resolve inter-thread
dependencies and speculative-state requirements.

:class:`SoftwareProfiler` performs the same analyses as the hardware
device — it simply *is* the device — but charges realistic
target-machine cycle costs for every event, modelling what the
callbacks would cost if Hydra executed them in software:

* every heap access: callback linkage, a hash probe of the store
  timestamp table, a line-table probe, plus per-active-STL dependency
  and overflow comparisons;
* every local access: callback linkage plus a timestamp-table update or
  probe with per-STL comparisons;
* loop markers: bookkeeping for the per-STL state machine.

The modelled slowdown is ``(orig_cycles + overhead_cycles) /
orig_cycles``; contrast with the 3-25% of the hardware tracer
(Figure 6).
"""

from __future__ import annotations

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.runtime.events import TraceListener
from repro.tracer.device import TestDevice


class SoftwareCosts:
    """Cycle costs of software profiling callbacks on a single-issue
    core.  Defaults assume a hand-tuned native callback: register
    save/restore and linkage, a hash probe (~index arithmetic, load,
    compare, occasional chain walk), and a handful of compares and
    counter updates per active STL."""

    def __init__(self,
                 callback_linkage: int = 18,
                 hash_probe: int = 22,
                 line_probe: int = 14,
                 per_bank_dependency: int = 16,
                 per_bank_overflow: int = 12,
                 local_probe: int = 16,
                 loop_marker: int = 40,
                 stats_read: int = 64):
        self.callback_linkage = callback_linkage
        self.hash_probe = hash_probe
        self.line_probe = line_probe
        self.per_bank_dependency = per_bank_dependency
        self.per_bank_overflow = per_bank_overflow
        self.local_probe = local_probe
        self.loop_marker = loop_marker
        self.stats_read = stats_read


class SoftwareProfiler(TestDevice):
    """The trace analyses implemented "in software": identical results
    to :class:`TestDevice`, plus a modelled overhead cycle count."""

    def __init__(self, config: HydraConfig = DEFAULT_HYDRA,
                 costs: SoftwareCosts = None, strict: bool = True):
        super().__init__(config, strict=strict)
        self.costs = costs if costs is not None else SoftwareCosts()
        #: modelled cycles the software callbacks would have consumed
        self.overhead_cycles = 0

    # Each hook charges its modelled cost, then defers to the device.

    #: the device's batch handler inlines the per-event hooks, which
    #: would skip the overhead accounting below — take the base replay
    #: path instead so every override fires
    on_mem_batch = TraceListener.on_mem_batch

    def _depth(self) -> int:
        return len(self._stack)

    def on_load(self, address, cycle, fn="", pc=-1):
        c = self.costs
        self.overhead_cycles += (
            c.callback_linkage + c.hash_probe + c.line_probe
            + self._depth() * (c.per_bank_dependency + c.per_bank_overflow))
        super().on_load(address, cycle, fn, pc)

    def on_store(self, address, cycle, fn="", pc=-1):
        c = self.costs
        self.overhead_cycles += (
            c.callback_linkage + c.hash_probe + c.line_probe
            + self._depth() * c.per_bank_overflow)
        super().on_store(address, cycle, fn, pc)

    def on_local_load(self, frame_id, slot, cycle, fn="", pc=-1):
        c = self.costs
        self.overhead_cycles += (
            c.callback_linkage + c.local_probe
            + self._depth() * c.per_bank_dependency)
        super().on_local_load(frame_id, slot, cycle, fn, pc)

    def on_local_store(self, frame_id, slot, cycle, fn="", pc=-1):
        c = self.costs
        self.overhead_cycles += c.callback_linkage + c.local_probe
        super().on_local_store(frame_id, slot, cycle, fn, pc)

    def on_sloop(self, loop_id, n_locals, cycle, frame_id=-1):
        self.overhead_cycles += self.costs.loop_marker
        super().on_sloop(loop_id, n_locals, cycle, frame_id)

    def on_eoi(self, loop_id, cycle):
        # software must finalize the thread: compare and accumulate every
        # counter the comparator bank keeps in parallel for free
        self.overhead_cycles += self.costs.loop_marker
        super().on_eoi(loop_id, cycle)

    def on_eloop(self, loop_id, cycle):
        self.overhead_cycles += self.costs.loop_marker
        super().on_eloop(loop_id, cycle)

    def on_readstats(self, loop_id, cycle):
        self.overhead_cycles += self.costs.stats_read
        super().on_readstats(loop_id, cycle)

    def slowdown(self, orig_cycles: int) -> float:
        """Modelled execution-time multiplier vs. unprofiled code."""
        if orig_cycles <= 0:
            return 1.0
        return (orig_cycles + self.overhead_cycles) / orig_cycles
