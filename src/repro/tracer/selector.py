"""Equation 2: choosing the optimal set of STLs (Section 4.3, Table 3).

Only one thread decomposition can be active at a time, so for every
loop-nest chain the runtime must choose one level.  Equation 2 compares
the estimated speculative time of a loop against the best achievable by
its *nested* decompositions plus the serial remainder:

    time_this / speedup_this
        vs.
    (time_this - sum(time_nested)) + sum(time_nested / best_nested)

The nest structure used here is the **dynamic** one recorded by the TEST
device (loops nested through method calls included), reduced to a forest
via each loop's dominant parent.  A straightforward tree DP then yields
the optimal antichain of decompositions and the program-level breakdown
(Figure 10): selected STLs, their coverage, and the serial remainder.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.tracer.device import TestDevice
from repro.tracer.estimator import SpeedupEstimate, estimate_speedup
from repro.tracer.stats import STLStats


class LoopDecision:
    """Equation 2's verdict for one profiled loop.

    ``estimate`` is the winning model's estimate and ``model`` its
    registry name; ``model_estimates`` maps every competing model's
    name to its estimate when a multi-model selection ran (``None`` in
    legacy single-backend runs).  Model *names*, not model instances,
    are stored so decisions stay picklable across the worker pool.
    """

    def __init__(self, loop_id: int, stats: STLStats,
                 estimate: SpeedupEstimate,
                 model: str = "hydra-tls",
                 model_estimates: Optional[Dict[str, object]] = None):
        self.loop_id = loop_id
        self.stats = stats
        self.estimate = estimate
        self.model = model
        self.model_estimates = model_estimates
        self.children: List["LoopDecision"] = []
        self.parent_id = -1
        #: best achievable time for this subtree (cycles)
        self.best_time = float(stats.cycles)
        #: True when speculating at THIS level beats delegating
        self.speculate_here = False

    @property
    def sequential_time(self) -> int:
        return self.stats.cycles

    @property
    def time_if_speculated(self) -> float:
        speedup = self.estimate.speedup
        return self.stats.cycles / speedup if speedup > 0 \
            else float(self.stats.cycles)


class SelectedSTL:
    """One loop chosen for speculative recompilation."""

    def __init__(self, decision: LoopDecision):
        self.loop_id = decision.loop_id
        self.stats = decision.stats
        self.estimate = decision.estimate
        self.model = getattr(decision, "model", "hydra-tls")
        self.model_estimates = getattr(decision, "model_estimates", None)

    @property
    def sequential_cycles(self) -> int:
        return self.stats.cycles

    @property
    def predicted_cycles(self) -> float:
        return self.stats.cycles / self.estimate.speedup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<SelectedSTL L%d %.2fx over %d cycles>" % (
            self.loop_id, self.estimate.speedup, self.stats.cycles)


class SelectionResult:
    """Program-level outcome of Equation 2."""

    def __init__(self, selected: List[SelectedSTL],
                 decisions: Dict[int, LoopDecision],
                 total_cycles: int,
                 models: Optional[tuple] = None):
        #: chosen STLs, by descending sequential coverage
        self.selected = selected
        #: every profiled loop's decision record
        self.decisions = decisions
        #: whole-program sequential cycles
        self.total_cycles = total_cycles
        #: model names that competed (None = legacy hydra-tls-only run)
        self.models = models

    @property
    def covered_cycles(self) -> int:
        """Sequential cycles inside selected STLs (disjoint by
        construction — the selection is an antichain of the nest)."""
        return sum(s.sequential_cycles for s in self.selected)

    @property
    def serial_cycles(self) -> int:
        """Sequential cycles not covered by any selected STL."""
        return max(0, self.total_cycles - self.covered_cycles)

    @property
    def coverage(self) -> float:
        """Fraction of execution covered by selected STLs (Figure 10)."""
        return self.covered_cycles / self.total_cycles \
            if self.total_cycles else 0.0

    @property
    def predicted_cycles(self) -> float:
        """Predicted whole-program speculative time (Figure 10/11)."""
        return self.serial_cycles + sum(
            s.predicted_cycles for s in self.selected)

    @property
    def predicted_speedup(self) -> float:
        """Predicted whole-program speedup."""
        pred = self.predicted_cycles
        return self.total_cycles / pred if pred > 0 else 1.0

    def selected_ids(self) -> List[int]:
        return [s.loop_id for s in self.selected]

    def significant(self, min_coverage: float = 0.005
                    ) -> List[SelectedSTL]:
        """Selected STLs with at least ``min_coverage`` of total time
        (the paper's Table 6 reports loops with > 0.5% coverage)."""
        floor = min_coverage * self.total_cycles
        return [s for s in self.selected if s.sequential_cycles >= floor]


def select_stls(device: TestDevice, total_cycles: int,
                config: HydraConfig = DEFAULT_HYDRA,
                min_speedup: float = 1.05,
                min_cycles: int = 200,
                models=None) -> SelectionResult:
    """Run Equation 2 over every loop the device profiled.

    ``min_speedup`` is the selection threshold: speculating on a loop
    whose predicted gain is below it is not worth the recompilation (the
    decomposition stays sequential).  ``min_cycles`` drops loops with
    negligible measured time.

    ``models`` generalizes Eq. 2 to multiple execution models: pass a
    spec accepted by :func:`repro.models.resolve_models` and every
    loop's estimate becomes an argmax over the named models (ties go
    to registration order), before the nest DP runs unchanged on the
    per-loop winners.  ``None`` keeps the legacy single-backend
    behaviour bit-for-bit.
    """
    model_list = None
    resolved = None
    if models is not None:
        # late import: repro.models imports the estimator/simulator,
        # so importing it at module level would cycle
        from repro.models import get_model, resolve_models
        resolved = resolve_models(models)
        if resolved:
            model_list = [(name, get_model(name)) for name in resolved]

    decisions: Dict[int, LoopDecision] = {}
    for loop_id, stats in device.stats.items():
        if stats.cycles < min_cycles or stats.threads == 0 \
                or stats.profiled_threads == 0:
            continue
        if model_list is None:
            decisions[loop_id] = LoopDecision(
                loop_id, stats, estimate_speedup(stats, config))
            continue
        estimates = {name: model.estimate(stats, config)
                     for name, model in model_list}
        # max() keeps the first maximum, so registration order breaks
        # ties (dicts preserve insertion order)
        winner = max(estimates, key=lambda name: estimates[name].speedup)
        decisions[loop_id] = LoopDecision(
            loop_id, stats, estimates[winner], model=winner,
            model_estimates=estimates)

    # build the dynamic forest (dominant parent, cycles must nest)
    roots: List[LoopDecision] = []
    for dec in decisions.values():
        parent_id = device.dominant_parent(dec.loop_id)
        parent = decisions.get(parent_id)
        if parent is not None \
                and parent.stats.cycles >= dec.stats.cycles:
            dec.parent_id = parent_id
            parent.children.append(dec)
        else:
            roots.append(dec)

    # Equation 2 tree DP, leaves upward (iterative post-order)
    def resolve(dec: LoopDecision) -> None:
        child_seq = sum(c.stats.cycles for c in dec.children)
        child_seq = min(child_seq, dec.stats.cycles)
        child_best = sum(c.best_time for c in dec.children)
        delegate = (dec.stats.cycles - child_seq) + child_best
        here = dec.time_if_speculated
        worthwhile = dec.estimate.speedup >= min_speedup
        if worthwhile and here < delegate:
            dec.best_time = here
            dec.speculate_here = True
        else:
            dec.best_time = delegate
            dec.speculate_here = False

    stack: List = [(r, False) for r in roots]
    while stack:
        dec, expanded = stack.pop()
        if expanded:
            resolve(dec)
        else:
            stack.append((dec, True))
            stack.extend((c, False) for c in dec.children)

    # harvest the chosen antichain
    selected: List[SelectedSTL] = []

    def harvest(dec: LoopDecision) -> None:
        if dec.speculate_here:
            selected.append(SelectedSTL(dec))
            return
        for child in dec.children:
            harvest(child)

    for root in roots:
        harvest(root)
    selected.sort(key=lambda s: -s.sequential_cycles)

    # A loop reached from several dynamic parents (e.g. a helper called
    # from two different loops) appears under only its dominant parent
    # in the forest, so the DP alone cannot guarantee disjoint coverage.
    # Enforce a true antichain over *all* recorded dynamic-parent edges:
    # keep the larger decomposition, drop any selected descendant.
    ancestors = {s.loop_id: _ancestor_closure(device, s.loop_id)
                 for s in selected}
    kept: List[SelectedSTL] = []
    kept_ids: set = set()
    for cand in selected:
        lid = cand.loop_id
        related = (ancestors[lid] & kept_ids) or any(
            lid in ancestors[k] for k in kept_ids)
        if related:
            continue
        kept.append(cand)
        kept_ids.add(lid)
    return SelectionResult(kept, decisions, total_cycles,
                           models=resolved)


def _ancestor_closure(device: TestDevice, loop_id: int) -> set:
    """All transitive dynamic parents of ``loop_id`` (every recorded
    parent edge, not just the dominant one)."""
    seen: set = set()
    work = [loop_id]
    while work:
        node = work.pop()
        for parent in device.dynamic_parents.get(node, {}):
            if parent < 0 or parent in seen:
                continue
            seen.add(parent)
            work.append(parent)
    return seen
