"""One TEST comparator bank (paper Figure 7).

A bank tracks the progress of one active STL.  It holds the thread-start
timestamps (current, previous, entry), per-thread critical-arc minima for
the two bins (to thread t-1 and to earlier threads), per-thread buffer
counters for the speculative-state overflow analysis, and accumulates
into an :class:`~repro.tracer.stats.STLStats` at each end-of-iteration.

Dependency arc identification (Section 4.2.1 / Figure 3)
---------------------------------------------------------
On a load whose producer store timestamp is ``ts``:

* ``ts >= thread_start``          -> producer in the current thread: no arc;
* ``thread_start > ts >= prev_start`` -> arc to thread t-1;
* ``prev_start > ts >= entry_time``   -> arc to an earlier thread;
* ``ts < entry_time``             -> producer outside this loop entry: the
  dependence belongs to an enclosing STL's bank, not this one.

Arc length is ``now - ts``; per thread only the *shortest* (critical)
arc of each bin is kept.

Speculative-state overflow analysis (Section 4.2.2 / Figure 4)
--------------------------------------------------------------
Each heap access consults the shared line-timestamp table *before* the
device refreshes it.  A line whose recorded timestamp is missing or
older than this bank's current thread start is new state for the thread;
the load / store counters are compared against the Table 1 limits and an
overflow is flagged when either exceeds them.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hydra.config import HydraConfig
from repro.tracer.stats import STLStats

#: Signature of an extended-TEST arc sink: (loop_id, bin, length, fn, pc).
ArcSink = Callable[[int, str, int, str, int], None]


class ComparatorBank:
    """Comparator bank state machine for one STL activation."""

    __slots__ = (
        "config", "stats", "arc_sink",
        "entry_time", "thread_start", "prev_start",
        "_min_prev", "_min_prev_local", "_min_prev_src",
        "_min_earlier", "_min_earlier_local", "_min_earlier_src",
        "load_lines", "store_lines", "_overflowed",
        "recent_threads", "recent_overflows", "entry_threads",
    )

    def __init__(self, config: HydraConfig, stats: STLStats,
                 arc_sink: Optional[ArcSink] = None):
        self.config = config
        self.stats = stats
        self.arc_sink = arc_sink
        self.entry_time = -1
        self.thread_start = -1
        self.prev_start = -1
        self._reset_thread_state()
        #: threads completed within the current entry
        self.entry_threads = 0
        #: sliding-window overflow tracking, for the bank-stealing policy
        self.recent_threads = 0
        self.recent_overflows = 0

    def _reset_thread_state(self) -> None:
        self._min_prev: Optional[int] = None
        self._min_prev_local = False
        self._min_prev_src = ("", -1)
        self._min_earlier: Optional[int] = None
        self._min_earlier_local = False
        self._min_earlier_src = ("", -1)
        self.load_lines = 0
        self.store_lines = 0
        self._overflowed = False

    # -- loop lifecycle ----------------------------------------------------

    def start_entry(self, cycle: int) -> None:
        """``sloop``: the loop was entered; thread 0 begins."""
        self.entry_time = cycle
        self.thread_start = cycle
        self.prev_start = -1
        self.stats.entries += 1
        self.stats.profiled_entries += 1
        self.entry_threads = 0
        self._reset_thread_state()

    def end_iteration(self, cycle: int) -> None:
        """``eoi``: finalize the completed thread, start the next one."""
        self._finalize_thread(cycle)
        self.prev_start = self.thread_start
        self.thread_start = cycle
        self._reset_thread_state()

    def end_entry(self, cycle: int) -> None:
        """``eloop``: the loop exited.

        The tail segment between the last ``eoi`` and the exit is the
        loop's final condition evaluation, not a full iteration; it is
        folded into loop time but only counted as a thread when the
        entry had no iterations at all (so zero-trip entries still
        register one thread).
        """
        if self.entry_threads == 0 and cycle > self.entry_time:
            self._finalize_thread(cycle)
        self.stats.cycles += cycle - self.entry_time
        self.entry_time = -1

    def _finalize_thread(self, cycle: int) -> None:
        stats = self.stats
        stats.threads += 1
        stats.profiled_threads += 1
        self.entry_threads += 1
        self.recent_threads += 1
        if self._min_prev is not None:
            stats.arcs_prev += 1
            stats.arc_len_prev += self._min_prev
            if self._min_prev_local:
                stats.local_arcs += 1
            if self.arc_sink is not None:
                fn, pc = self._min_prev_src
                self.arc_sink(stats.loop_id, "prev", self._min_prev, fn, pc)
        if self._min_earlier is not None:
            stats.arcs_earlier += 1
            stats.arc_len_earlier += self._min_earlier
            if self.arc_sink is not None:
                fn, pc = self._min_earlier_src
                self.arc_sink(stats.loop_id, "earlier",
                              self._min_earlier, fn, pc)
        stats.load_lines_total += self.load_lines
        stats.store_lines_total += self.store_lines
        if self.load_lines > stats.max_load_lines:
            stats.max_load_lines = self.load_lines
        if self.store_lines > stats.max_store_lines:
            stats.max_store_lines = self.store_lines
        if self._overflowed:
            stats.overflow_threads += 1
            self.recent_overflows += 1

    # -- dependency arc identification --------------------------------------

    def observe_load(self, store_ts: Optional[int], cycle: int,
                     is_local: bool, fn: str = "", pc: int = -1) -> None:
        """A load whose producer store happened at ``store_ts``."""
        if store_ts is None or self.entry_time < 0:
            return
        if store_ts >= self.thread_start:
            return  # same thread: not an inter-thread dependency
        if store_ts < self.entry_time:
            return  # outside this loop entry: an enclosing bank's arc
        length = cycle - store_ts
        if self.prev_start >= 0 and store_ts >= self.prev_start:
            if self._min_prev is None or length < self._min_prev:
                self._min_prev = length
                self._min_prev_local = is_local
                self._min_prev_src = (fn, pc)
        else:
            if self._min_earlier is None or length < self._min_earlier:
                self._min_earlier = length
                self._min_earlier_local = is_local
                self._min_earlier_src = (fn, pc)

    # -- speculative state overflow analysis --------------------------------

    def observe_line_load(self, old_line_ts: Optional[int]) -> None:
        """A heap load touched a line last seen at ``old_line_ts``."""
        if self.entry_time < 0:
            return
        if old_line_ts is None or old_line_ts < self.thread_start:
            self.load_lines += 1
            if self.load_lines > self.config.load_buffer_lines:
                self._overflowed = True

    def observe_line_store(self, old_line_ts: Optional[int]) -> None:
        """A heap store touched a line last seen at ``old_line_ts``."""
        if self.entry_time < 0:
            return
        if old_line_ts is None or old_line_ts < self.thread_start:
            self.store_lines += 1
            if self.store_lines > self.config.store_buffer_lines:
                self._overflowed = True

    # -- policy hooks --------------------------------------------------------

    def consistently_overflowing(self, min_threads: int = 16,
                                 threshold: float = 0.9) -> bool:
        """Whether this bank's STL keeps exceeding buffer limits — the
        device may then free the bank for a deeper loop (Section 5.2)."""
        if self.recent_threads < min_threads:
            return False
        return self.recent_overflows / self.recent_threads >= threshold
