"""Extended TEST: per-load-PC dependency binning (Section 6.3, Fig. 8b).

In the extended hardware, the critical-arc calculation block's registers
are replaced by content-addressable SRAM so critical-arc lengths, counts
and accumulated lengths can be *binned by the load instruction's PC*.
A programmer or compiler then sees exactly which loads carry the
dependencies that limit an STL — the paper used this to restructure
NumericSort, Huffman, db and MipsSimulator.

:class:`ExtendedTestDevice` is a drop-in replacement for
:class:`~repro.tracer.device.TestDevice` that collects these profiles.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.tracer.device import TestDevice


class ArcBin:
    """Accumulated critical-arc statistics for one load site."""

    __slots__ = ("fn", "pc", "count", "total_length", "min_length",
                 "max_length")

    def __init__(self, fn: str, pc: int):
        self.fn = fn
        self.pc = pc
        self.count = 0
        self.total_length = 0
        self.min_length = None
        self.max_length = 0

    def add(self, length: int) -> None:
        self.count += 1
        self.total_length += length
        if self.min_length is None or length < self.min_length:
            self.min_length = length
        if length > self.max_length:
            self.max_length = length

    @property
    def avg_length(self) -> float:
        return self.total_length / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ArcBin %s:%d n=%d avg=%.1f>" % (
            self.fn, self.pc, self.count, self.avg_length)


class DependencyProfile:
    """All arc bins for one STL, queryable by severity."""

    def __init__(self, loop_id: int):
        self.loop_id = loop_id
        self.bins: Dict[Tuple[str, int, str], ArcBin] = {}

    def add(self, bin_kind: str, length: int, fn: str, pc: int) -> None:
        key = (fn, pc, bin_kind)
        entry = self.bins.get(key)
        if entry is None:
            entry = ArcBin(fn, pc)
            self.bins[key] = entry
        entry.add(length)

    def hottest(self, limit: int = 10) -> List[ArcBin]:
        """Load sites causing the most critical arcs, worst first."""
        return sorted(self.bins.values(),
                      key=lambda b: (-b.count, b.avg_length))[:limit]

    def limiting(self, thread_size: float,
                 fraction: float = 0.5) -> List[ArcBin]:
        """Load sites whose average arc is much shorter than the thread
        size — the paper's signal that moving the load/store or adding
        synchronization would pay off (Section 6.3)."""
        return [b for b in self.hottest(limit=len(self.bins))
                if thread_size > 0
                and b.avg_length < fraction * thread_size]


class ExtendedTestDevice(TestDevice):
    """TEST with the per-PC critical-arc SRAM of Figure 8b."""

    def __init__(self, config: HydraConfig = DEFAULT_HYDRA,
                 strict: bool = True):
        super().__init__(config, arc_sink=self._record_arc, strict=strict)
        self.profiles: Dict[int, DependencyProfile] = {}

    def _record_arc(self, loop_id: int, bin_kind: str, length: int,
                    fn: str, pc: int) -> None:
        profile = self.profiles.get(loop_id)
        if profile is None:
            profile = DependencyProfile(loop_id)
            self.profiles[loop_id] = profile
        profile.add(bin_kind, length, fn, pc)

    def profile_for(self, loop_id: int) -> DependencyProfile:
        """The dependency profile of one loop (empty if never armed)."""
        return self.profiles.get(loop_id, DependencyProfile(loop_id))

    def report(self, loop_id: int, limit: int = 8) -> str:
        """Human-readable optimization guidance for one STL."""
        stats = self.stats.get(loop_id)
        profile = self.profile_for(loop_id)
        lines = ["Dependency profile for STL L%d" % loop_id]
        if stats is not None:
            lines.append("  avg thread size: %.1f cycles"
                         % stats.avg_thread_size)
        if not profile.bins:
            lines.append("  (no critical arcs recorded)")
            return "\n".join(lines)
        lines.append("  %-28s %6s %10s %8s" %
                     ("load site", "arcs", "avg length", "bin"))
        for (fn, pc, kind), b in sorted(
                profile.bins.items(),
                key=lambda kv: -kv[1].count)[:limit]:
            lines.append("  %-28s %6d %10.1f %8s" %
                         ("%s:%d" % (fn, pc), b.count, b.avg_length, kind))
        return "\n".join(lines)
