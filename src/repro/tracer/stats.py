"""Per-STL statistics: the raw counters and derived values of Figure 3.

A :class:`STLStats` accumulates across every entry of one potential STL
during a profiled sequential run.  The raw counters match the paper's
"Values derived from counters" table exactly; the derived properties
match its "Derived values" column:

* average thread size         = cycles / threads
* average iterations/entry    = threads / entries
* critical-arc frequency      = arcs / (threads - 1), per bin
* average critical-arc length = accumulated lengths / arcs, per bin
* overflow frequency          = overflowing threads / threads
"""

from __future__ import annotations


class STLStats:
    """Accumulated trace statistics for one potential STL."""

    __slots__ = (
        "loop_id",
        "cycles",
        "entries",
        "threads",
        "profiled_entries",
        "profiled_threads",
        "arcs_prev",
        "arc_len_prev",
        "arcs_earlier",
        "arc_len_earlier",
        "local_arcs",
        "overflow_threads",
        "load_lines_total",
        "store_lines_total",
        "max_load_lines",
        "max_store_lines",
        "dynamic_depth",
    )

    def __init__(self, loop_id: int):
        self.loop_id = loop_id
        #: total cycles elapsed inside the loop (all entries)
        self.cycles = 0
        #: number of loop entries (sloop events)
        self.entries = 0
        #: number of completed threads (iterations)
        self.threads = 0
        #: entries/threads observed while a comparator bank was armed —
        #: the denominators for arc and overflow frequencies once the
        #: runtime disables a converged loop's analysis (Section 5.2)
        self.profiled_entries = 0
        self.profiled_threads = 0
        #: critical-arc count / accumulated length, to the previous thread
        self.arcs_prev = 0
        self.arc_len_prev = 0
        #: critical-arc count / accumulated length, to earlier threads
        self.arcs_earlier = 0
        self.arc_len_earlier = 0
        #: critical arcs whose producer was a local variable (these become
        #: globalized store-load communication after compilation)
        self.local_arcs = 0
        #: threads whose buffer requirements exceeded the Table 1 limits
        self.overflow_threads = 0
        #: summed per-thread new-line counts (diagnostics / ablations)
        self.load_lines_total = 0
        self.store_lines_total = 0
        #: worst single-thread buffer demand observed
        self.max_load_lines = 0
        self.max_store_lines = 0
        #: deepest dynamic STL nesting observed at entry (Table 6 col d)
        self.dynamic_depth = 0

    # -- derived values (Figure 3) ----------------------------------------

    @property
    def avg_thread_size(self) -> float:
        """Average thread size in cycles."""
        return self.cycles / self.threads if self.threads else 0.0

    @property
    def avg_iters_per_entry(self) -> float:
        """Average iterations per loop entry."""
        return self.threads / self.entries if self.entries else 0.0

    @property
    def arc_freq_prev(self) -> float:
        """Critical-arc frequency to the previous thread."""
        denom = self.profiled_threads - self.profiled_entries
        return self.arcs_prev / denom if denom > 0 else 0.0

    @property
    def arc_freq_earlier(self) -> float:
        """Critical-arc frequency to earlier (< t-1) threads."""
        denom = self.profiled_threads - self.profiled_entries
        return self.arcs_earlier / denom if denom > 0 else 0.0

    @property
    def avg_arc_len_prev(self) -> float:
        """Average critical-arc length to the previous thread."""
        return self.arc_len_prev / self.arcs_prev if self.arcs_prev else 0.0

    @property
    def avg_arc_len_earlier(self) -> float:
        """Average critical-arc length to earlier threads."""
        return self.arc_len_earlier / self.arcs_earlier \
            if self.arcs_earlier else 0.0

    @property
    def overflow_freq(self) -> float:
        """Fraction of profiled threads exceeding the buffer limits."""
        return self.overflow_threads / self.profiled_threads \
            if self.profiled_threads else 0.0

    @property
    def local_arc_freq(self) -> float:
        """Fraction of profiled threads carrying a local critical arc."""
        return self.local_arcs / self.profiled_threads \
            if self.profiled_threads else 0.0

    def invariant_errors(self) -> list:
        """Internal-consistency violations of the accumulated counters.

        Returns human-readable descriptions (empty = consistent).  The
        conformance fuzz campaign runs this after every profiled
        execution; each rule is a structural property of the comparator
        bank, so a violation always indicates a tracer bug:

        * counter ordering — a loop that produced statistics has been
          entered, every entry completed at least one thread, and the
          profiled (bank-armed) counters never exceed the totals;
        * critical-arc minimality — the bank keeps only the *shortest*
          arc of each bin per thread, so each bin can hold at most one
          arc per non-first profiled thread;
        * local-arc accounting — a local critical arc is a refinement
          of a recorded arc, never an extra one;
        * speculative-buffer limits — overflowing threads are a subset
          of profiled threads, and per-thread maxima never exceed the
          accumulated line totals.
        """
        errors = []

        def need(cond: bool, rule: str) -> None:
            if not cond:
                errors.append("L%d: %s" % (self.loop_id, rule))

        need(self.entries >= 1, "stats recorded without an entry")
        need(self.threads >= self.entries,
             "threads (%d) < entries (%d)"
             % (self.threads, self.entries))
        need(self.profiled_entries <= self.entries,
             "profiled entries (%d) > entries (%d)"
             % (self.profiled_entries, self.entries))
        need(self.profiled_threads <= self.threads,
             "profiled threads (%d) > threads (%d)"
             % (self.profiled_threads, self.threads))
        need(self.cycles >= self.threads,
             "cycles (%d) < threads (%d) — a thread costs >= 1 cycle"
             % (self.cycles, self.threads))

        arc_slots = max(0, self.profiled_threads - self.profiled_entries)
        need(self.arcs_prev <= arc_slots,
             "arc minimality: %d t-1 arcs from %d eligible threads"
             % (self.arcs_prev, arc_slots))
        need(self.arcs_earlier <= arc_slots,
             "arc minimality: %d <t-1 arcs from %d eligible threads"
             % (self.arcs_earlier, arc_slots))
        need(self.arc_len_prev >= 0 and self.arc_len_earlier >= 0,
             "negative accumulated arc length")
        need((self.arcs_prev > 0) or (self.arc_len_prev == 0),
             "t-1 arc length without an arc")
        need((self.arcs_earlier > 0) or (self.arc_len_earlier == 0),
             "<t-1 arc length without an arc")
        need(self.local_arcs <= self.arcs_prev + self.arcs_earlier,
             "local arcs (%d) exceed recorded arcs (%d)"
             % (self.local_arcs, self.arcs_prev + self.arcs_earlier))

        need(self.overflow_threads <= self.profiled_threads,
             "overflow threads (%d) > profiled threads (%d)"
             % (self.overflow_threads, self.profiled_threads))
        need(self.max_load_lines <= self.load_lines_total,
             "max load lines (%d) > total (%d)"
             % (self.max_load_lines, self.load_lines_total))
        need(self.max_store_lines <= self.store_lines_total,
             "max store lines (%d) > total (%d)"
             % (self.max_store_lines, self.store_lines_total))
        return errors

    def merge(self, other: "STLStats") -> None:
        """Accumulate another stats object into this one."""
        self.cycles += other.cycles
        self.entries += other.entries
        self.threads += other.threads
        self.profiled_entries += other.profiled_entries
        self.profiled_threads += other.profiled_threads
        self.arcs_prev += other.arcs_prev
        self.arc_len_prev += other.arc_len_prev
        self.arcs_earlier += other.arcs_earlier
        self.arc_len_earlier += other.arc_len_earlier
        self.local_arcs += other.local_arcs
        self.overflow_threads += other.overflow_threads
        self.load_lines_total += other.load_lines_total
        self.store_lines_total += other.store_lines_total
        self.max_load_lines = max(self.max_load_lines, other.max_load_lines)
        self.max_store_lines = max(self.max_store_lines,
                                   other.max_store_lines)
        self.dynamic_depth = max(self.dynamic_depth, other.dynamic_depth)

    def render(self) -> str:
        """Figure 3-style text table of raw and derived values."""
        rows = [
            ("# cycles", self.cycles),
            ("# threads", self.threads),
            ("# entries", self.entries),
            ("# critical arcs to t-1", self.arcs_prev),
            ("Accum. arc lengths to t-1", self.arc_len_prev),
            ("# critical arcs to <t-1", self.arcs_earlier),
            ("Accum. arc lengths to <t-1", self.arc_len_earlier),
            ("# overflow threads", self.overflow_threads),
            ("Avg. thread size", round(self.avg_thread_size, 2)),
            ("Avg. iterations per entry",
             round(self.avg_iters_per_entry, 2)),
            ("Critical arc freq to t-1", round(self.arc_freq_prev, 3)),
            ("Avg. arc length to t-1", round(self.avg_arc_len_prev, 2)),
            ("Critical arc freq to <t-1",
             round(self.arc_freq_earlier, 3)),
            ("Avg. arc length to <t-1",
             round(self.avg_arc_len_earlier, 2)),
            ("Overflow frequency", round(self.overflow_freq, 4)),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join("%-*s  %s" % (width, name, value)
                         for name, value in rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<STLStats L%d threads=%d size=%.1f arcs(t-1)=%d "
                "ovf=%.2f>" % (self.loop_id, self.threads,
                               self.avg_thread_size, self.arcs_prev,
                               self.overflow_freq))
