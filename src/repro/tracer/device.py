"""The TEST device: an array of comparator banks behind the trace-event
interface (paper Section 5, Figure 2's dark blocks).

The device is a :class:`~repro.runtime.events.TraceListener`: attach it
to the interpreter running an annotated program and it performs the load
dependency analysis and the speculative-state overflow analysis for
every active potential STL, exactly as the hardware would:

* ``sloop`` allocates a comparator bank (outermost loops get precedence
  because they arrive first; when no bank is free, the activation is
  traced *unbanked* — no statistics — matching the hardware's behaviour
  of disabling analysis for deeply nested loops).  A bank whose STL
  consistently overflows the speculative buffers can be freed and handed
  to a deeper loop.
* heap loads/stores consult and refresh the shared timestamp stores of
  Section 5.3; every active bank observes each event.
* ``eoi``/``eloop`` drive the per-thread accumulation.

The device also records the *dynamic* loop nesting (which STL was active
when another was entered, including nesting through calls) — this feeds
Equation 2's nest comparison and Table 6's executed loop depth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import TracerError
from repro.hydra.config import DEFAULT_HYDRA, HydraConfig
from repro.runtime.events import TraceListener
from repro.runtime.heap import LINE_SIZE, line_of
from repro.tracer.bank import ArcSink, ComparatorBank
from repro.tracer.stats import STLStats
from repro.tracer.timestamps import (
    LineTimestampTable,
    LocalTimestampTable,
    StoreTimestampFIFO,
)


class _Activation:
    """One dynamic STL activation on the device's loop stack."""

    __slots__ = ("loop_id", "bank", "frame_id", "allowed_slots",
                 "entry_cycle")

    def __init__(self, loop_id: int, bank: Optional[ComparatorBank],
                 frame_id: int, allowed_slots, entry_cycle: int):
        self.loop_id = loop_id
        self.bank = bank
        self.frame_id = frame_id
        #: local slots this loop reserved timestamps for (None = any)
        self.allowed_slots = allowed_slots
        #: sloop cycle (lightweight accounting for converged loops)
        self.entry_cycle = entry_cycle


class TestDevice(TraceListener):
    """Functional model of the TEST tracer hardware."""

    #: not a unit-test class, despite the paper's naming (pytest hint)
    __test__ = False

    def __init__(self, config: HydraConfig = DEFAULT_HYDRA,
                 arc_sink: Optional[ArcSink] = None,
                 strict: bool = True,
                 convergence_threshold: Optional[int] = None,
                 on_converged=None):
        self.config = config
        self.strict = strict
        self._arc_sink = arc_sink
        #: profiled-thread count after which a loop's statistics are
        #: declared converged and its analysis is disabled (Section 5.2:
        #: "the annotations marking it can be disabled dynamically");
        #: None keeps profiling for the whole run
        self.convergence_threshold = convergence_threshold
        #: callback(loop_id) fired once per loop at convergence — the
        #: runtime uses it to overwrite READSTATS sites with nops
        self.on_converged = on_converged
        #: loops whose statistics converged (lightweight tracking only)
        self.converged: Set[int] = set()
        #: after convergence, one entry in ``sample_every`` is still
        #: fully analyzed so the statistics keep tracking phase changes
        #: (heapify -> extract in a heap sort, say) at a sliver of the
        #: profiling cost
        self.sample_every = 16
        self._entry_counters: Dict[int, int] = {}

        self.heap_ts = StoreTimestampFIFO(config.heap_ts_fifo_entries)
        self.ld_line_ts = LineTimestampTable(config.line_ts_ld_entries)
        self.st_line_ts = LineTimestampTable(config.line_ts_st_entries)
        self.local_ts = LocalTimestampTable(config.local_ts_lines)

        #: persistent per-loop statistics (accumulated across activations)
        self.stats: Dict[int, STLStats] = {}
        #: dynamic nesting: loop -> {parent loop (-1 = top level): count}
        self.dynamic_parents: Dict[int, Dict[int, int]] = {}
        #: loops whose analysis the runtime disabled
        self.disabled: Set[int] = set()
        #: loop id -> frozenset of reserved local slots (sloop n's
        #: reservation, registered out-of-band by the JIT)
        self.loop_locals: Dict[int, frozenset] = {}

        self._stack: List[_Activation] = []
        self._banks_in_use = 0
        #: event counters (diagnostics; the software-profiler model uses
        #: these to cost out a software-only implementation)
        self.n_loads = 0
        self.n_stores = 0
        self.n_local_loads = 0
        self.n_local_stores = 0
        self.n_unbanked_activations = 0
        self.n_bank_steals = 0
        #: executed annotation-marker counts (Figure 6's slowdown
        #: decomposition reads these instead of multicasting the event
        #: stream to a dedicated counting listener)
        self.n_sloop = 0
        self.n_eoi = 0
        self.n_eloop = 0
        self.n_readstats = 0

    # -- bookkeeping ---------------------------------------------------------

    def stats_for(self, loop_id: int) -> STLStats:
        """The persistent stats record for a loop (created on demand)."""
        st = self.stats.get(loop_id)
        if st is None:
            st = STLStats(loop_id)
            self.stats[loop_id] = st
        return st

    def register_loop_locals(self, loop_id: int, slots) -> None:
        """Tell the device which local slots ``sloop n`` reserved for a
        loop; its bank then ignores other frames' and loops' locals."""
        self.loop_locals[loop_id] = frozenset(slots)

    def disable_loop(self, loop_id: int) -> None:
        """Stop allocating banks for ``loop_id`` (the runtime judged its
        statistics converged, Section 5.2)."""
        self.disabled.add(loop_id)

    @property
    def active_loops(self) -> List[int]:
        """Loop ids currently on the activation stack, outermost first."""
        return [act.loop_id for act in self._stack]

    def _try_allocate_bank(self, stats: STLStats) -> Optional[ComparatorBank]:
        if self._banks_in_use < self.config.n_comparator_banks:
            self._banks_in_use += 1
            return ComparatorBank(self.config, stats, self._arc_sink)
        # bank stealing: free a consistently-overflowing outer bank so a
        # deeper loop can be analyzed (Section 5.2)
        for act in self._stack:
            bank = act.bank
            if bank is not None and bank.consistently_overflowing():
                act.bank = None
                self.n_bank_steals += 1
                return ComparatorBank(self.config, stats, self._arc_sink)
        return None

    # -- loop markers ----------------------------------------------------------

    def on_sloop(self, loop_id: int, n_locals: int, cycle: int,
                 frame_id: int = -1) -> None:
        self.n_sloop += 1
        parent = self._stack[-1].loop_id if self._stack else -1
        parents = self.dynamic_parents.setdefault(loop_id, {})
        parents[parent] = parents.get(parent, 0) + 1

        stats = self.stats_for(loop_id)
        depth = len(self._stack) + 1
        if depth > stats.dynamic_depth:
            stats.dynamic_depth = depth

        bank: Optional[ComparatorBank] = None
        if loop_id in self.converged:
            # converged: keep the cheap counters current (cycles,
            # entries, threads) so Equation 2 sees whole-run coverage;
            # re-arm a bank for every sample_every-th entry so arc and
            # overflow frequencies keep tracking phase changes
            count = self._entry_counters.get(loop_id, 0) + 1
            self._entry_counters[loop_id] = count
            if self.sample_every and count % self.sample_every == 0:
                bank = self._try_allocate_bank(stats)
            if bank is not None:
                bank.start_entry(cycle)
            else:
                stats.entries += 1
        elif loop_id not in self.disabled:
            bank = self._try_allocate_bank(stats)
            if bank is None:
                self.n_unbanked_activations += 1
            else:
                bank.start_entry(cycle)
        self._stack.append(_Activation(
            loop_id, bank, frame_id, self.loop_locals.get(loop_id),
            cycle))

    def on_eoi(self, loop_id: int, cycle: int) -> None:
        self.n_eoi += 1
        act = self._top(loop_id, "eoi")
        if act is None:
            return
        if act.bank is not None:
            act.bank.end_iteration(cycle)
        elif loop_id in self.converged:
            self.stats_for(loop_id).threads += 1

    def on_eloop(self, loop_id: int, cycle: int) -> None:
        self.n_eloop += 1
        act = self._top(loop_id, "eloop")
        if act is None:
            return
        if act.bank is not None:
            act.bank.end_entry(cycle)
            self._banks_in_use -= 1
        elif loop_id in self.converged:
            self.stats_for(loop_id).cycles += cycle - act.entry_cycle
        self._stack.pop()
        self._maybe_converge(loop_id)

    def _maybe_converge(self, loop_id: int) -> None:
        threshold = self.convergence_threshold
        if threshold is None or loop_id in self.converged:
            return
        stats = self.stats.get(loop_id)
        if stats is None:
            return
        # converged once enough iterations have been analyzed OR enough
        # whole entries — short-trip loops (a few iterations per entry)
        # stabilize by entry count long before they would by threads
        entry_threshold = max(50, threshold // 20)
        if stats.profiled_threads < threshold \
                and stats.profiled_entries < entry_threshold:
            return
        if any(act.loop_id == loop_id for act in self._stack):
            return  # still active in an outer activation (recursion)
        self.converged.add(loop_id)
        if self.on_converged is not None:
            self.on_converged(loop_id)

    def _top(self, loop_id: int, what: str) -> Optional[_Activation]:
        if not self._stack or self._stack[-1].loop_id != loop_id:
            if self.strict:
                top = self._stack[-1].loop_id if self._stack else None
                raise TracerError(
                    "%s for loop L%d but innermost active loop is %r"
                    % (what, loop_id, top))
            return None
        return self._stack[-1]

    def on_readstats(self, loop_id: int, cycle: int) -> None:
        self.n_readstats += 1

    # -- memory events ---------------------------------------------------------

    def on_load(self, address, cycle, fn="", pc=-1):
        self.n_loads += 1
        store_ts = self.heap_ts.lookup(address)
        line = line_of(address)
        old_line = self.ld_line_ts.lookup(line)
        for act in self._stack:
            bank = act.bank
            if bank is not None:
                bank.observe_load(store_ts, cycle, False, fn, pc)
                bank.observe_line_load(old_line)
        self.ld_line_ts.record(line, cycle)

    def on_store(self, address, cycle, fn="", pc=-1):
        self.n_stores += 1
        line = line_of(address)
        old_line = self.st_line_ts.lookup(line)
        for act in self._stack:
            bank = act.bank
            if bank is not None:
                bank.observe_line_store(old_line)
        self.st_line_ts.record(line, cycle)
        self.heap_ts.record(address, cycle)

    def on_local_load(self, frame_id, slot, cycle, fn="", pc=-1):
        self.n_local_loads += 1
        ts = self.local_ts.lookup(frame_id, slot)
        if ts is None:
            return
        for act in self._stack:
            bank = act.bank
            if bank is None or act.frame_id != frame_id:
                continue
            if act.allowed_slots is not None \
                    and slot not in act.allowed_slots:
                continue
            bank.observe_load(ts, cycle, True, fn, pc)

    def on_local_store(self, frame_id, slot, cycle, fn="", pc=-1):
        self.n_local_stores += 1
        self.local_ts.record(frame_id, slot, cycle)

    def on_mem_batch(self, events):
        """Process one interpreter memory-event batch.

        Inlines the four per-event handlers with the table accessors
        hoisted; the activation stack cannot change mid-batch because
        the interpreter flushes before every loop marker — so the
        banked-activation scan is also hoisted to once per batch
        instead of once per event.  The line tables are touched with a
        single combined lookup+record call, and batches arriving while
        no bank is armed (pre-warmup, converged, or unbanked phases)
        take a slimmer loop that skips every lookup whose only consumer
        is a bank observation.
        """
        heap_record = self.heap_ts.record
        ld_touch = self.ld_line_ts.touch
        st_touch = self.st_line_ts.touch
        local_record = self.local_ts.record
        line_size = LINE_SIZE
        n_loads = n_stores = n_local_loads = n_local_stores = 0
        banked = [act for act in self._stack if act.bank is not None]
        if not banked:
            # timestamp tables must stay current for banks armed later
            # (sampling re-arms them mid-run), but nothing consumes the
            # lookup results now
            for ev in events:
                kind = ev[0]
                if kind == "ld":
                    n_loads += 1
                    ld_touch(ev[1] // line_size, ev[2])
                elif kind == "st":
                    n_stores += 1
                    st_touch(ev[1] // line_size, ev[2])
                    heap_record(ev[1], ev[2])
                elif kind == "lld":
                    n_local_loads += 1
                else:
                    n_local_stores += 1
                    local_record(ev[1], ev[2], ev[3])
        elif len(banked) == 1:
            # the overwhelmingly common shape — one STL sampling at a
            # time — gets the bank's observers hoisted out of the loop
            heap_get = self.heap_ts.get
            local_get = self.local_ts.get
            act0 = banked[0]
            bank0 = act0.bank
            observe_load = bank0.observe_load
            observe_line_load = bank0.observe_line_load
            observe_line_store = bank0.observe_line_store
            frame0 = act0.frame_id
            allowed0 = act0.allowed_slots
            for ev in events:
                kind = ev[0]
                if kind == "ld":
                    n_loads += 1
                    address = ev[1]
                    cycle = ev[2]
                    observe_load(heap_get(address), cycle, False,
                                 ev[3], ev[4])
                    observe_line_load(
                        ld_touch(address // line_size, cycle))
                elif kind == "st":
                    n_stores += 1
                    address = ev[1]
                    cycle = ev[2]
                    observe_line_store(
                        st_touch(address // line_size, cycle))
                    heap_record(address, cycle)
                elif kind == "lld":
                    n_local_loads += 1
                    frame_id = ev[1]
                    slot = ev[2]
                    ts = local_get((frame_id, slot))
                    if ts is None or frame_id != frame0:
                        continue
                    if allowed0 is not None and slot not in allowed0:
                        continue
                    observe_load(ts, ev[3], True, ev[4], ev[5])
                else:
                    n_local_stores += 1
                    local_record(ev[1], ev[2], ev[3])
        else:
            heap_get = self.heap_ts.get
            local_get = self.local_ts.get
            for ev in events:
                kind = ev[0]
                if kind == "ld":
                    n_loads += 1
                    address = ev[1]
                    cycle = ev[2]
                    store_ts = heap_get(address)
                    old_line = ld_touch(address // line_size, cycle)
                    for act in banked:
                        bank = act.bank
                        bank.observe_load(store_ts, cycle, False,
                                          ev[3], ev[4])
                        bank.observe_line_load(old_line)
                elif kind == "st":
                    n_stores += 1
                    address = ev[1]
                    cycle = ev[2]
                    old_line = st_touch(address // line_size, cycle)
                    for act in banked:
                        act.bank.observe_line_store(old_line)
                    heap_record(address, cycle)
                elif kind == "lld":
                    n_local_loads += 1
                    frame_id = ev[1]
                    slot = ev[2]
                    ts = local_get((frame_id, slot))
                    if ts is None:
                        continue
                    for act in banked:
                        if act.frame_id != frame_id:
                            continue
                        if act.allowed_slots is not None \
                                and slot not in act.allowed_slots:
                            continue
                        act.bank.observe_load(ts, ev[3], True,
                                              ev[4], ev[5])
                else:
                    n_local_stores += 1
                    local_record(ev[1], ev[2], ev[3])
        self.n_loads += n_loads
        self.n_stores += n_stores
        self.n_local_loads += n_local_loads
        self.n_local_stores += n_local_stores

    # -- results ------------------------------------------------------------

    def finish(self) -> None:
        """Validate end-of-run invariants (all activations closed)."""
        if self._stack and self.strict:
            raise TracerError(
                "program ended with %d open STL activations: %r"
                % (len(self._stack), self.active_loops))

    def dominant_parent(self, loop_id: int) -> int:
        """The most frequent dynamic parent of ``loop_id`` (-1 = none)."""
        parents = self.dynamic_parents.get(loop_id)
        if not parents:
            return -1
        return max(parents.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def max_dynamic_depth(self) -> int:
        """Deepest executed STL nest (Table 6 column d)."""
        return max((s.dynamic_depth for s in self.stats.values()),
                   default=0)
