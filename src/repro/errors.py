"""Shared exception hierarchy for the TEST/Jrpm reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceError(ReproError):
    """An error attributable to a position in minijava source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = "line %d, col %d: %s" % (line, column, message)
        super().__init__(message)


class LexError(SourceError):
    """The lexer encountered a malformed token."""


class ParseError(SourceError):
    """The parser encountered an unexpected token."""


class SemanticError(SourceError):
    """Semantic analysis rejected the program (types, scopes, arity)."""


class CodegenError(ReproError):
    """Bytecode generation failed (internal invariant violation)."""


class BytecodeError(ReproError):
    """Malformed bytecode detected by the verifier or loader."""


class ExecutionError(ReproError):
    """The interpreter hit a runtime fault (bad index, div by zero...)."""

    def __init__(self, message: str, pc: int = -1, function: str = ""):
        self.pc = pc
        self.function = function
        if function:
            message = "%s (in %s at pc=%d)" % (message, function, pc)
        super().__init__(message)


class HeapError(ExecutionError):
    """Out-of-bounds access or invalid array handle."""


class TracerError(ReproError):
    """The TEST device was driven with an invalid event sequence."""


class SimulationError(ReproError):
    """The TLS timing simulator was given an inconsistent trace."""


class PipelineError(ReproError):
    """The Jrpm pipeline could not complete a stage."""
