"""FourierTest — Fourier coefficient computation (Table 6 row 17).

The paper's most extreme granularity: one loop, 100 threads/entry at
~168k cycles each.  Every iteration numerically integrates one
coefficient, so threads are huge and fully independent.
"""

from repro.workloads.registry import FLOATING, Workload, register

SOURCE = """
// Trapezoid-rule Fourier coefficients of f(x) = (x+1)^x-ish shape.
func main() {
  var ncoeff = 14;
  var npoints = 400;
  var coeffs = array(ncoeff);
  var two_pi = 6.28318530717959;

  // one coefficient per iteration: a very coarse, independent thread
  for (var k = 0; k < ncoeff; k = k + 1) {
    var acc = 0.0;
    var dx = two_pi / float(npoints);
    for (var p = 0; p < npoints; p = p + 1) {
      var x = float(p) * dx;
      var fx = exp(x * 0.2) * sin(x * 1.5) + 1.0;
      acc = acc + fx * cos(float(k) * x) * dx;
    }
    coeffs[k] = acc;
  }

  var checksum = 0.0;
  for (var c = 0; c < ncoeff; c = c + 1) {
    checksum = checksum + coeffs[c] * float(c + 1);
  }
  return int(checksum * 1000.0);
}
"""

WORKLOAD = register(Workload(
    name="FourierTest",
    category=FLOATING,
    description="Fourier coefficients",
    source_text=SOURCE,
    analyzable=True,
))
