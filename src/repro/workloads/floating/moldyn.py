"""moldyn — molecular dynamics (Table 6 row 19).

Java Grande's moldyn: an N-body force loop.  The paper's selected loop
is the finest-grained of all (1026 threads/entry at only 96 cycles):
the inner pair loop, whose force accumulations into the shared arrays
occasionally collide.
"""

from repro.workloads.registry import FLOATING, Workload, register

SOURCE = """
// Lennard-Jones pair forces over an interleaved neighbor list.
func main() {
  var n = 40;
  var px = array(n);
  var py = array(n);
  var fx = array(n);
  var fy = array(n);
  var npairs = n * (n - 1) / 2;
  var pair_a = array(npairs);
  var pair_b = array(npairs);

  var seed = 23;
  for (var i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    px[i] = float(seed % 1000) / 100.0;
    seed = (seed * 1103515245 + 12345) % 2147483648;
    py[i] = float(seed % 1000) / 100.0;
  }

  // neighbor-list construction: enumerate pairs, then interleave with
  // a large stride so consecutive list entries touch distinct
  // particles (standard conflict-reducing ordering)
  var k = 0;
  for (var a = 0; a < n - 1; a = a + 1) {
    for (var b = a + 1; b < n; b = b + 1) {
      var slot = (k * 97) % npairs;
      while (pair_b[slot] != 0) { slot = (slot + 1) % npairs; }
      pair_a[slot] = a;
      pair_b[slot] = b + 1;       // +1 so 0 means empty
      k = k + 1;
    }
  }

  var energy = 0.0;
  for (var step = 0; step < 2; step = step + 1) {
    for (var z = 0; z < n; z = z + 1) {
      fx[z] = 0.0;
      fy[z] = 0.0;
    }
    // the fine-grained selected STL: one pair interaction per thread
    for (var p = 0; p < npairs; p = p + 1) {
      var a2 = pair_a[p];
      var b2 = pair_b[p] - 1;
      var dx = px[a2] - px[b2];
      var dy = py[a2] - py[b2];
      var r2 = dx * dx + dy * dy + 0.01;
      var inv = 1.0 / r2;
      var f = (inv * inv - 0.5 * inv) * 0.001;
      fx[a2] = fx[a2] + f * dx;
      fy[a2] = fy[a2] + f * dy;
      fx[b2] = fx[b2] - f * dx;
      fy[b2] = fy[b2] - f * dy;
    }
    // position update (independent per particle)
    for (var m = 0; m < n; m = m + 1) {
      px[m] = px[m] + fx[m] * 0.1;
      py[m] = py[m] + fy[m] * 0.1;
      energy = energy + fx[m] * fx[m] + fy[m] * fy[m];
    }
  }
  return int(energy * 1000000.0) % 1000003;
}
"""

WORKLOAD = register(Workload(
    name="moldyn",
    category=FLOATING,
    description="Molecular dynamics",
    source_text=SOURCE,
    analyzable=True,
))
