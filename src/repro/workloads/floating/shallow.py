"""shallow — shallow-water simulation (Table 6 row 21).

Stencil sweeps over a 2-D grid; the paper selects 3 row-level loops
(height 1) with ~1400-cycle threads, and flags data-set sensitivity
(grid size determines which nest level fits the buffers).
"""

from repro.workloads.registry import FLOATING, Workload, register

SOURCE = """
// Shallow-water-style stencils: height and velocity updates.
func main() {
  var nx = 26;
  var ny = 26;
  var h = array(nx * ny);
  var u = array(nx * ny);
  var v = array(nx * ny);
  for (var i = 0; i < nx * ny; i = i + 1) {
    var x = i % nx;
    var y = i / nx;
    h[i] = 10.0 + sin(float(x) * 0.4) * cos(float(y) * 0.4);
    u[i] = 0.0;
    v[i] = 0.0;
  }

  for (var step = 0; step < 5; step = step + 1) {
    // velocity update (row loops: the paper's selected granularity)
    for (var y2 = 1; y2 < ny - 1; y2 = y2 + 1) {
      for (var x2 = 1; x2 < nx - 1; x2 = x2 + 1) {
        var idx = y2 * nx + x2;
        u[idx] = u[idx] - 0.1 * (h[idx + 1] - h[idx - 1]);
        v[idx] = v[idx] - 0.1 * (h[idx + nx] - h[idx - nx]);
      }
    }
    // height update from divergence
    for (var y3 = 1; y3 < ny - 1; y3 = y3 + 1) {
      for (var x3 = 1; x3 < nx - 1; x3 = x3 + 1) {
        var idx2 = y3 * nx + x3;
        h[idx2] = h[idx2]
            - 0.1 * (u[idx2 + 1] - u[idx2 - 1])
            - 0.1 * (v[idx2 + nx] - v[idx2 - nx]);
      }
    }
    // light smoothing pass
    for (var y4 = 1; y4 < ny - 1; y4 = y4 + 1) {
      for (var x4 = 1; x4 < nx - 1; x4 = x4 + 1) {
        var idx3 = y4 * nx + x4;
        h[idx3] = 0.96 * h[idx3]
            + 0.01 * (h[idx3 - 1] + h[idx3 + 1]
                      + h[idx3 - nx] + h[idx3 + nx]);
      }
    }
  }

  var total = 0.0;
  for (var k = 0; k < nx * ny; k = k + 1) {
    total = total + h[k];
  }
  return int(total * 100.0);
}
"""

WORKLOAD = register(Workload(
    name="shallow",
    category=FLOATING,
    description="Shallow water sim",
    source_text=SOURCE,
    dataset="26x26",
    analyzable=True,
    data_sensitive=True,
))
