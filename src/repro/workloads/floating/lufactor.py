"""LuFactor — LU factorization with partial pivoting (Table 6 row 18).

The pivot loop is serial; the pivot search, row swap, and elimination
update loops inside it are parallel.  Data-set sensitive: with a larger
matrix the elimination rows overflow the store buffer and selection
moves to the inner update loop.
"""

from repro.workloads.registry import FLOATING, Workload, register

SOURCE = """
// Dense LU with partial pivoting on a 26x26 matrix.
func main() {
  var n = 26;
  var a = array(n * n);
  var piv = array(n);
  var seed = 19;
  for (var i = 0; i < n * n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    a[i] = float(seed % 2000) / 1000.0 - 1.0;
  }
  // diagonal dominance so pivoting stays tame
  for (var d = 0; d < n; d = d + 1) {
    a[d * n + d] = a[d * n + d] + 4.0;
  }

  for (var k = 0; k < n - 1; k = k + 1) {
    // pivot search (reduction over rows)
    var best = k;
    var best_mag = abs(a[k * n + k]);
    for (var r = k + 1; r < n; r = r + 1) {
      var mag = abs(a[r * n + k]);
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    piv[k] = best;
    if (best != k) {
      for (var c = 0; c < n; c = c + 1) {
        var t = a[k * n + c];
        a[k * n + c] = a[best * n + c];
        a[best * n + c] = t;
      }
    }
    // elimination: each row below the pivot is independent
    var pivot = a[k * n + k];
    for (var r2 = k + 1; r2 < n; r2 = r2 + 1) {
      var mult = a[r2 * n + k] / pivot;
      a[r2 * n + k] = mult;
      for (var c2 = k + 1; c2 < n; c2 = c2 + 1) {
        a[r2 * n + c2] = a[r2 * n + c2] - mult * a[k * n + c2];
      }
    }
  }

  var checksum = 0.0;
  for (var d2 = 0; d2 < n; d2 = d2 + 1) {
    checksum = checksum + abs(a[d2 * n + d2]);
  }
  return int(checksum * 1000.0);
}
"""

WORKLOAD = register(Workload(
    name="LuFactor",
    category=FLOATING,
    description="LU factorization",
    source_text=SOURCE,
    dataset="26x26",
    analyzable=True,
    data_sensitive=True,
))
