"""fft — iterative radix-2 FFT (Table 6 row 16).

The stage loop is serial (each stage consumes the previous one's
output) but the butterfly loops inside a stage are independent; the
paper selects 2 loops at height 2 and marks the benchmark data-set
sensitive (selection depends on the transform length).
"""

from repro.workloads.registry import FLOATING, Workload, register

SOURCE = """
// 256-point iterative FFT over synthetic data.
func main() {
  var n = 256;
  var logn = 8;
  var re = array(n);
  var im = array(n);
  for (var i = 0; i < n; i = i + 1) {
    re[i] = sin(float(i) * 0.1) + 0.5 * sin(float(i) * 0.31);
    im[i] = 0.0;
  }

  // bit-reversal permutation
  for (var k = 0; k < n; k = k + 1) {
    var rev = 0;
    var x = k;
    for (var b = 0; b < logn; b = b + 1) {
      rev = rev * 2 + x % 2;
      x = x / 2;
    }
    if (rev > k) {
      var tr = re[k]; re[k] = re[rev]; re[rev] = tr;
      var ti = im[k]; im[k] = im[rev]; im[rev] = ti;
    }
  }

  // stages (serial) of independent butterflies (parallel)
  var half = 1;
  while (half < n) {
    var step = half * 2;
    for (var grp = 0; grp < half; grp = grp + 1) {
      var angle = -3.14159265358979 * float(grp) / float(half);
      var wr = cos(angle);
      var wi = sin(angle);
      for (var top = grp; top < n; top = top + step) {
        var bot = top + half;
        var xr = re[bot] * wr - im[bot] * wi;
        var xi = re[bot] * wi + im[bot] * wr;
        re[bot] = re[top] - xr;
        im[bot] = im[top] - xi;
        re[top] = re[top] + xr;
        im[top] = im[top] + xi;
      }
    }
    half = step;
  }

  var energy = 0.0;
  for (var e = 0; e < n; e = e + 1) {
    energy = energy + re[e] * re[e] + im[e] * im[e];
  }
  return int(energy * 100.0);
}
"""

WORKLOAD = register(Workload(
    name="fft",
    category=FLOATING,
    description="Fast fourier transform",
    source_text=SOURCE,
    dataset="256",
    analyzable=True,
    data_sensitive=True,
))
