"""euler — 2-D fluid dynamics (Table 6 row 15).

Java Grande's Euler solver sweeps a structured grid with several
distinct loop nests per timestep.  The paper selects many (13) fine
STLs (66 threads/entry at ~300 cycles) and flags the benchmark as
data-set sensitive: bigger grids push selection down the nest.
"""

from repro.workloads.registry import FLOATING, Workload, register

SOURCE = """
// Structured-grid Euler-style sweeps: flux, update, damping.
func main() {
  var nx = 30;
  var ny = 9;
  var u = array(nx * ny);
  var flux_x = array(nx * ny);
  var flux_y = array(nx * ny);
  var seed = 11;
  for (var i = 0; i < nx * ny; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    u[i] = 1.0 + float(seed % 1000) / 1000.0;
  }

  for (var step = 0; step < 8; step = step + 1) {
    // x-direction fluxes (each row independent)
    for (var j = 0; j < ny; j = j + 1) {
      for (var i2 = 1; i2 < nx; i2 = i2 + 1) {
        var left = u[j * nx + i2 - 1];
        var right = u[j * nx + i2];
        flux_x[j * nx + i2] = 0.5 * (left + right)
            - 0.1 * (right - left);
      }
    }
    // y-direction fluxes (each column independent)
    for (var i3 = 0; i3 < nx; i3 = i3 + 1) {
      for (var j2 = 1; j2 < ny; j2 = j2 + 1) {
        var lo = u[(j2 - 1) * nx + i3];
        var hi = u[j2 * nx + i3];
        flux_y[j2 * nx + i3] = 0.5 * (lo + hi) - 0.1 * (hi - lo);
      }
    }
    // conservative update (interior cells independent)
    for (var j3 = 1; j3 < ny - 1; j3 = j3 + 1) {
      for (var i4 = 1; i4 < nx - 1; i4 = i4 + 1) {
        var idx = j3 * nx + i4;
        u[idx] = u[idx]
            - 0.05 * (flux_x[idx + 1] - flux_x[idx])
            - 0.05 * (flux_y[idx + nx] - flux_y[idx]);
      }
    }
    // boundary damping (1-D loops)
    for (var b = 0; b < nx; b = b + 1) {
      u[b] = u[b] * 0.99;
      u[(ny - 1) * nx + b] = u[(ny - 1) * nx + b] * 0.99;
    }
  }

  var total = 0.0;
  for (var k = 0; k < nx * ny; k = k + 1) {
    total = total + u[k];
  }
  return int(total * 1000.0);
}
"""

WORKLOAD = register(Workload(
    name="euler",
    category=FLOATING,
    description="Fluid dynamics",
    source_text=SOURCE,
    dataset="30x9",
    analyzable=True,
    data_sensitive=True,
))
