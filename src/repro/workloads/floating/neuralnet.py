"""NeuralNet — backprop network training (Table 6 row 20).

A 35-8-8 multilayer perceptron like jBYTEmark's: layer widths of 8 give
the paper's smallest iteration counts (9 threads/entry) with fine
~600-cycle threads, and selection shifts with layer sizes (data-set
sensitive).
"""

from repro.workloads.registry import FLOATING, Workload, register

SOURCE = """
// 35-8-8 MLP: forward + backward passes over a small sample set.
func main() {
  var n_in = 35;
  var n_hid = 8;
  var n_out = 8;
  var w1 = array(n_in * n_hid);
  var w2 = array(n_hid * n_out);
  var hidden = array(n_hid);
  var output = array(n_out);
  var delta_o = array(n_out);
  var delta_h = array(n_hid);
  var sample = array(n_in);
  var target = array(n_out);

  var seed = 29;
  for (var i = 0; i < n_in * n_hid; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    w1[i] = float(seed % 200) / 1000.0 - 0.1;
  }
  for (var j = 0; j < n_hid * n_out; j = j + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    w2[j] = float(seed % 200) / 1000.0 - 0.1;
  }

  var err_acc = 0.0;
  for (var epoch = 0; epoch < 3; epoch = epoch + 1) {
    for (var s = 0; s < 8; s = s + 1) {
      // build sample s and its one-hot target
      for (var k = 0; k < n_in; k = k + 1) {
        sample[k] = float((s * 7 + k * 3) % 10) / 10.0;
      }
      for (var t = 0; t < n_out; t = t + 1) {
        if (t == s % n_out) { target[t] = 1.0; } else { target[t] = 0.0; }
      }
      // forward: hidden layer (each neuron independent)
      for (var h = 0; h < n_hid; h = h + 1) {
        var acc = 0.0;
        for (var k2 = 0; k2 < n_in; k2 = k2 + 1) {
          acc = acc + sample[k2] * w1[k2 * n_hid + h];
        }
        hidden[h] = 1.0 / (1.0 + exp(0.0 - acc));
      }
      // forward: output layer
      for (var o = 0; o < n_out; o = o + 1) {
        var acc2 = 0.0;
        for (var h2 = 0; h2 < n_hid; h2 = h2 + 1) {
          acc2 = acc2 + hidden[h2] * w2[h2 * n_out + o];
        }
        output[o] = 1.0 / (1.0 + exp(0.0 - acc2));
      }
      // backward: output deltas
      for (var o2 = 0; o2 < n_out; o2 = o2 + 1) {
        var e = target[o2] - output[o2];
        delta_o[o2] = e * output[o2] * (1.0 - output[o2]);
        err_acc = err_acc + e * e;
      }
      // backward: hidden deltas
      for (var h3 = 0; h3 < n_hid; h3 = h3 + 1) {
        var back = 0.0;
        for (var o3 = 0; o3 < n_out; o3 = o3 + 1) {
          back = back + delta_o[o3] * w2[h3 * n_out + o3];
        }
        delta_h[h3] = back * hidden[h3] * (1.0 - hidden[h3]);
      }
      // weight updates (independent per weight)
      for (var h4 = 0; h4 < n_hid; h4 = h4 + 1) {
        for (var o4 = 0; o4 < n_out; o4 = o4 + 1) {
          w2[h4 * n_out + o4] = w2[h4 * n_out + o4]
              + 0.3 * delta_o[o4] * hidden[h4];
        }
      }
      for (var k3 = 0; k3 < n_in; k3 = k3 + 1) {
        for (var h5 = 0; h5 < n_hid; h5 = h5 + 1) {
          w1[k3 * n_hid + h5] = w1[k3 * n_hid + h5]
              + 0.3 * delta_h[h5] * sample[k3];
        }
      }
    }
  }
  return int(err_acc * 10000.0);
}
"""

WORKLOAD = register(Workload(
    name="NeuralNet",
    category=FLOATING,
    description="Neural net",
    source_text=SOURCE,
    dataset="35x8x8",
    analyzable=True,
    data_sensitive=True,
))
