"""Floating-point workloads (Table 6 rows 15-21)."""

from repro.workloads.floating import (  # noqa: F401
    euler,
    fft,
    fouriertest,
    lufactor,
    moldyn,
    neuralnet,
    shallow,
)
