"""Workload registry: the paper's 26 benchmarks (Table 6), rewritten in
minijava, plus the synthesized ``synthetic`` corpus.

The original suites (jBYTEmark, SPECjvm98, Java Grande, and the authors'
multimedia codecs) are Java programs we cannot run; each workload here
is a hand-written minijava kernel matching its paper counterpart's
documented character — loop-nest shape, dependence pattern, granularity
class, and data-set sensitivity (DESIGN.md records the substitution).

Table 6's static columns are carried as metadata:

* ``analyzable`` — column (a): could a traditional parallelizing
  compiler handle it (Fortran-like, affine accesses)?
* ``data_sensitive`` — column (b): does the best decomposition change
  with input size?
* ``dataset`` — the input-size label the paper lists.

Beyond the fixed Table 6 corpus, *family loaders* registered through
:func:`register_family` contribute generated workloads under the
:data:`SYNTHETIC` category (see :mod:`repro.synth`).  Loaders run
lazily on first registry access, so importing the registry stays
cheap; the defaults (:func:`all_workloads`, :func:`workload_names`)
keep returning exactly the Table 6 rows so goldens, benches, and the
conformance oracle are unaffected, while :func:`get_workload` and
``by_category(SYNTHETIC)`` resolve synthetic instances like any other
workload — which is what ``jrpm run``/``fleet``/``conform`` and the
analysis service go through.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.bytecode.program import Program
from repro.lang.codegen import compile_source

#: Table 6 categories.
INTEGER = "integer"
FLOATING = "floating point"
MULTIMEDIA = "multimedia"

#: generated workloads with known-parallelism labels (repro.synth)
SYNTHETIC = "synthetic"


class Workload:
    """One benchmark: source text plus Table 6 metadata."""

    def __init__(self, name: str, category: str, description: str,
                 source_text: str, dataset: str = "",
                 analyzable: bool = False,
                 data_sensitive: bool = False,
                 expected_result: object = None):
        self.name = name
        self.category = category
        self.description = description
        self._source_text = source_text
        self.dataset = dataset
        self.analyzable = analyzable
        self.data_sensitive = data_sensitive
        #: known-correct return value of main(), asserted by tests
        self.expected_result = expected_result

    def source(self) -> str:
        """The minijava source text."""
        return self._source_text

    def compile(self) -> Program:
        """Compile to verified bytecode."""
        return compile_source(self._source_text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Workload %s (%s)>" % (self.name, self.category)


_REGISTRY: Dict[str, Workload] = {}

#: canonical presentation order (the paper's Table 6 row order)
_ORDER: List[str] = []

#: synthetic workloads in family-loader registration order
_SYNTH_ORDER: List[str] = []

#: family name -> loader yielding synthetic Workloads; invoked lazily
_FAMILY_LOADERS: Dict[str, Callable[[], Iterable[Workload]]] = {}

#: family names whose loader has already populated the registry
_LOADED_FAMILIES: set = set()


def register(workload: Workload) -> Workload:
    """Add a workload to the registry (module import time for the
    Table 6 corpus, family-loader time for synthetic instances)."""
    if workload.name in _REGISTRY:
        raise ValueError("duplicate workload %r" % workload.name)
    _REGISTRY[workload.name] = workload
    if workload.category == SYNTHETIC:
        _SYNTH_ORDER.append(workload.name)
    else:
        _ORDER.append(workload.name)
    return workload


def register_family(name: str,
                    loader: Callable[[], Iterable[Workload]]) -> None:
    """Hook a lazy loader of :data:`SYNTHETIC` workloads into the
    registry.

    ``loader()`` is called at most once, on the first registry access
    after registration, and must yield :class:`Workload` objects in the
    ``synthetic`` category (``ValueError`` otherwise).  Registering a
    second loader under the same family name raises ``ValueError`` —
    family names are as unique as workload names.
    """
    if name in _FAMILY_LOADERS:
        raise ValueError("duplicate workload family %r" % name)
    _FAMILY_LOADERS[name] = loader


def reset_synthetic() -> None:
    """Drop every synthetic workload and re-arm the family loaders.

    Test isolation hook: a module that registers extra synthetic
    workloads (or whole families) calls this to restore the registry to
    its default state; the built-in loaders repopulate the default
    corpus on the next access.  The Table 6 corpus is never touched.
    """
    for name in _SYNTH_ORDER:
        _REGISTRY.pop(name, None)
    del _SYNTH_ORDER[:]
    _LOADED_FAMILIES.clear()


def unregister_family(name: str) -> None:
    """Remove one family loader (and its workloads) entirely.

    Complements :func:`reset_synthetic` for tests that temporarily
    register a throwaway family: resetting alone would re-run the
    loader and bring the family back.
    """
    _FAMILY_LOADERS.pop(name, None)
    reset_synthetic()


def _ensure_loaded() -> None:
    # importing the subpackages populates the registry, in Table 6
    # order: integer, floating point, multimedia.  The synth package
    # hooks its default family loaders via register_family on import.
    from repro.workloads import integer  # noqa: F401
    from repro.workloads import floating  # noqa: F401
    from repro.workloads import multimedia  # noqa: F401
    import repro.synth  # noqa: F401

    for family in list(_FAMILY_LOADERS):
        if family in _LOADED_FAMILIES:
            continue
        # mark first: a loader that itself touches the registry (e.g.
        # name-collision checks through get_workload) must not recurse
        _LOADED_FAMILIES.add(family)
        for workload in _FAMILY_LOADERS[family]():
            if workload.category != SYNTHETIC:
                raise ValueError(
                    "family loader %r produced a non-synthetic "
                    "workload %r (category %r)"
                    % (family, workload.name, workload.category))
            register(workload)


def get_workload(name: str) -> Workload:
    """Look up one workload by name (KeyError if unknown)."""
    _ensure_loaded()
    return _REGISTRY[name]


def workload_names(include_synthetic: bool = False) -> List[str]:
    """All names, in Table 6 order (synthetic appended on request)."""
    _ensure_loaded()
    names = list(_ORDER)
    if include_synthetic:
        names.extend(_SYNTH_ORDER)
    return names


def all_workloads(include_synthetic: bool = False) -> List[Workload]:
    """All workloads, in Table 6 order (synthetic appended on
    request).  The default excludes the synthetic corpus so goldens,
    Table 6 benches, and the conformance oracle keep operating on
    exactly the paper's 26 rows."""
    _ensure_loaded()
    return [_REGISTRY[n] for n in workload_names(include_synthetic)]


def by_category(category: str) -> List[Workload]:
    """Workloads of one category (Table 6's three, or ``synthetic``).

    Synthetic workloads come back in family-loader registration order,
    which is deterministic run to run.
    """
    _ensure_loaded()
    if category == SYNTHETIC:
        return [_REGISTRY[n] for n in _SYNTH_ORDER]
    return [w for w in all_workloads() if w.category == category]
