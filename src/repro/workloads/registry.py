"""Workload registry: the paper's 26 benchmarks (Table 6), rewritten in
minijava.

The original suites (jBYTEmark, SPECjvm98, Java Grande, and the authors'
multimedia codecs) are Java programs we cannot run; each workload here
is a hand-written minijava kernel matching its paper counterpart's
documented character — loop-nest shape, dependence pattern, granularity
class, and data-set sensitivity (DESIGN.md records the substitution).

Table 6's static columns are carried as metadata:

* ``analyzable`` — column (a): could a traditional parallelizing
  compiler handle it (Fortran-like, affine accesses)?
* ``data_sensitive`` — column (b): does the best decomposition change
  with input size?
* ``dataset`` — the input-size label the paper lists.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bytecode.program import Program
from repro.lang.codegen import compile_source

#: Table 6 categories.
INTEGER = "integer"
FLOATING = "floating point"
MULTIMEDIA = "multimedia"


class Workload:
    """One benchmark: source text plus Table 6 metadata."""

    def __init__(self, name: str, category: str, description: str,
                 source_text: str, dataset: str = "",
                 analyzable: bool = False,
                 data_sensitive: bool = False,
                 expected_result: object = None):
        self.name = name
        self.category = category
        self.description = description
        self._source_text = source_text
        self.dataset = dataset
        self.analyzable = analyzable
        self.data_sensitive = data_sensitive
        #: known-correct return value of main(), asserted by tests
        self.expected_result = expected_result

    def source(self) -> str:
        """The minijava source text."""
        return self._source_text

    def compile(self) -> Program:
        """Compile to verified bytecode."""
        return compile_source(self._source_text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Workload %s (%s)>" % (self.name, self.category)


_REGISTRY: Dict[str, Workload] = {}

#: canonical presentation order (the paper's Table 6 row order)
_ORDER: List[str] = []


def register(workload: Workload) -> Workload:
    """Add a workload to the registry (module import time)."""
    if workload.name in _REGISTRY:
        raise ValueError("duplicate workload %r" % workload.name)
    _REGISTRY[workload.name] = workload
    _ORDER.append(workload.name)
    return workload


def _ensure_loaded() -> None:
    # importing the subpackages populates the registry, in Table 6
    # order: integer, floating point, multimedia
    from repro.workloads import integer  # noqa: F401
    from repro.workloads import floating  # noqa: F401
    from repro.workloads import multimedia  # noqa: F401


def get_workload(name: str) -> Workload:
    """Look up one workload by name (KeyError if unknown)."""
    _ensure_loaded()
    return _REGISTRY[name]


def workload_names() -> List[str]:
    """All names, in Table 6 order."""
    _ensure_loaded()
    return list(_ORDER)


def all_workloads() -> List[Workload]:
    """All workloads, in Table 6 order."""
    _ensure_loaded()
    return [_REGISTRY[n] for n in _ORDER]


def by_category(category: str) -> List[Workload]:
    """Workloads of one Table 6 category."""
    _ensure_loaded()
    return [w for w in all_workloads() if w.category == category]
