"""mp3 — audio decoder (Table 6 row 26).

The paper's mp3 row: many loops (98), many selected STLs (17) but also
a significant serial remainder from the bitstream/Huffman stage.  The
kernel mirrors that split: serial bit decoding, then parallel
dequantization, a 32-point synthesis transform, and windowing per
granule.
"""

from repro.workloads.registry import MULTIMEDIA, Workload, register

SOURCE = """
// Bit decode (serial) + dequant + subband synthesis per granule.
func main() {
  var ngranules = 6;
  var nsub = 32;
  var spectrum = array(nsub);
  var synth = array(nsub);
  var window = array(nsub * 4);
  var pcm = array(ngranules * nsub);
  var bitstream = array(ngranules * nsub);

  var seed = 61;
  for (var i = 0; i < ngranules * nsub; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    bitstream[i] = (seed >> 7) % 64;
  }
  for (var wv = 0; wv < nsub * 4; wv = wv + 1) {
    window[wv] = sin(float(wv) * 0.05) * 0.8;
  }

  var checksum = 0;
  for (var g = 0; g < ngranules; g = g + 1) {
    // serial bitstream decode: value depends on running bit position
    var bitpos = 0;
    for (var s = 0; s < nsub; s = s + 1) {
      var raw = bitstream[g * nsub + s];
      var nbits = 2 + raw % 5;
      bitpos = bitpos + nbits;
      spectrum[s] = (raw * (bitpos % 7 + 1)) % 64 - 32;
    }
    // dequantization (independent per line)
    for (var s2 = 0; s2 < nsub; s2 = s2 + 1) {
      var v = float(spectrum[s2]);
      synth[s2] = v * abs(v) * 0.01;
    }
    // 32-point synthesis transform (each output independent)
    for (var k = 0; k < nsub; k = k + 1) {
      var acc = 0.0;
      for (var s3 = 0; s3 < nsub; s3 = s3 + 1) {
        acc = acc + synth[s3]
            * cos(float((2 * k + 1) * s3) * 0.049);
      }
      var widx = (k * 3) % (nsub * 4);
      pcm[g * nsub + k] = acc * window[widx];
    }
  }

  var energy = 0.0;
  for (var e = 0; e < ngranules * nsub; e = e + 1) {
    energy = energy + pcm[e] * pcm[e];
  }
  return int(energy * 100.0) % 1000003;
}
"""

WORKLOAD = register(Workload(
    name="mp3",
    category=MULTIMEDIA,
    description="mp3 decoder",
    source_text=SOURCE,
))
