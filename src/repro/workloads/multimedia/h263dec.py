"""h263dec — video decoder (Table 6 row 24).

Macroblock-structured decoding: motion-compensated prediction copies,
residual addition with clamping, and a deblocking smoothing pass.
"""

from repro.workloads.registry import MULTIMEDIA, Workload, register

SOURCE = """
// Motion compensation + residual add + deblock over macroblocks.
func main() {
  var w = 48;
  var h = 32;
  var ref = array(w * h);
  var cur = array(w * h);
  var mb = 16;
  var n_mb_x = w / mb;
  var n_mb_y = h / mb;
  var n_mbs = n_mb_x * n_mb_y;
  var mv_x = array(n_mbs);
  var mv_y = array(n_mbs);

  var seed = 53;
  for (var i = 0; i < w * h; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    ref[i] = (seed >> 10) % 256;
  }
  for (var m = 0; m < n_mbs; m = m + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    mv_x[m] = (seed >> 6) % 5 - 2;
    mv_y[m] = (seed >> 11) % 5 - 2;
  }

  for (var frame = 0; frame < 2; frame = frame + 1) {
    // macroblock loop: the main STL (independent blocks)
    for (var m2 = 0; m2 < n_mbs; m2 = m2 + 1) {
      var bx = (m2 % n_mb_x) * mb;
      var by = (m2 / n_mb_x) * mb;
      for (var y = 0; y < mb; y = y + 1) {
        for (var x = 0; x < mb; x = x + 1) {
          var sx = bx + x + mv_x[m2];
          var sy = by + y + mv_y[m2];
          if (sx < 0) { sx = 0; }
          if (sx >= w) { sx = w - 1; }
          if (sy < 0) { sy = 0; }
          if (sy >= h) { sy = h - 1; }
          var pred = ref[sy * w + sx];
          var resid = ((bx + x) * 7 + (by + y) * 13 + frame * 3) % 17 - 8;
          var px = pred + resid;
          if (px < 0) { px = 0; }
          if (px > 255) { px = 255; }
          cur[(by + y) * w + bx + x] = px;
        }
      }
    }
    // horizontal deblock pass (independent rows)
    for (var dy = 0; dy < h; dy = dy + 1) {
      for (var dx = 1; dx < w - 1; dx = dx + 1) {
        var idx = dy * w + dx;
        cur[idx] = (cur[idx - 1] + 2 * cur[idx] + cur[idx + 1]) / 4;
      }
    }
    // the decoded frame becomes the next reference (copy loop)
    for (var c = 0; c < w * h; c = c + 1) {
      ref[c] = cur[c];
    }
  }

  var checksum = 0;
  for (var k = 0; k < w * h; k = k + 1) {
    checksum = (checksum + ref[k] * (k % 31 + 1)) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="h263dec",
    category=MULTIMEDIA,
    description="Video decoder",
    source_text=SOURCE,
))
