"""decJpeg — JPEG-style image decoder (Table 6 row 22).

Block-structured work: dequantization, separable 8x8 inverse DCT (row
pass then column pass), level shift/clamp, all per block — the paper's
most STL-rich benchmark (21 selected loops, small 124-cycle threads).
"""

from repro.workloads.registry import MULTIMEDIA, Workload, register

SOURCE = """
// Dequant + integer IDCT + clamp over a stream of 8x8 blocks.
func main() {
  var nblocks = 12;
  var coeff = array(nblocks * 64);
  var quant = array(64);
  var block = array(64);
  var tmp = array(64);
  var pixels = array(nblocks * 64);

  var seed = 37;
  for (var q = 0; q < 64; q = q + 1) {
    quant[q] = 4 + (q * 3) % 24;
  }
  for (var i = 0; i < nblocks * 64; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    // mostly-zero high frequencies, like real JPEG data
    if (i % 64 < 12) {
      coeff[i] = (seed >> 8) % 64 - 32;
    } else {
      coeff[i] = 0;
    }
  }

  // the block loop: each iteration decodes one 8x8 block
  for (var b = 0; b < nblocks; b = b + 1) {
    // dequantize
    for (var c = 0; c < 64; c = c + 1) {
      block[c] = coeff[b * 64 + c] * quant[c];
    }
    // row pass of a butterfly-style integer transform
    for (var r = 0; r < 8; r = r + 1) {
      for (var x = 0; x < 8; x = x + 1) {
        var acc = 0;
        for (var u = 0; u < 8; u = u + 1) {
          // integer cosine table via a quadratic approximation
          var cu = 64 - ((2 * x + 1) * u * (2 * x + 1) * u / 41) % 128;
          acc = acc + block[r * 8 + u] * cu;
        }
        tmp[r * 8 + x] = acc / 64;
      }
    }
    // column pass
    for (var col = 0; col < 8; col = col + 1) {
      for (var y = 0; y < 8; y = y + 1) {
        var acc2 = 0;
        for (var u2 = 0; u2 < 8; u2 = u2 + 1) {
          var cu2 = 64 - ((2 * y + 1) * u2 * (2 * y + 1) * u2 / 41) % 128;
          acc2 = acc2 + tmp[u2 * 8 + col] * cu2;
        }
        var px = acc2 / 64 + 128;
        if (px < 0) { px = 0; }
        if (px > 255) { px = 255; }
        pixels[b * 64 + y * 8 + col] = px;
      }
    }
  }

  var checksum = 0;
  for (var k = 0; k < nblocks * 64; k = k + 1) {
    checksum = (checksum + pixels[k] * (k % 29 + 1)) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="decJpeg",
    category=MULTIMEDIA,
    description="Image decoder",
    source_text=SOURCE,
))
