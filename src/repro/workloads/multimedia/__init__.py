"""Multimedia workloads (Table 6 rows 22-26)."""

from repro.workloads.multimedia import decjpeg  # noqa: F401
from repro.workloads.multimedia import encjpeg  # noqa: F401
from repro.workloads.multimedia import h263dec  # noqa: F401
from repro.workloads.multimedia import mpegvideo  # noqa: F401
from repro.workloads.multimedia import mp3  # noqa: F401
