"""encJpeg — JPEG-style image encoder (Table 6 row 23).

Forward transform, quantization, zig-zag reordering and a run-length
pass per 8x8 block.
"""

from repro.workloads.registry import MULTIMEDIA, Workload, register

SOURCE = """
// Forward DCT-ish transform + quant + zigzag + RLE per block.
func main() {
  var nblocks = 10;
  var image = array(nblocks * 64);
  var quant = array(64);
  var zigzag = array(64);
  var block = array(64);
  var tmp = array(64);
  var out = array(nblocks * 64);

  var seed = 43;
  for (var i = 0; i < nblocks * 64; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    image[i] = (seed >> 9) % 256;
  }
  for (var q = 0; q < 64; q = q + 1) {
    quant[q] = 8 + (q * 5) % 40;
  }
  // zig-zag order approximated by diagonal sort index
  for (var z = 0; z < 64; z = z + 1) {
    var zr = z / 8;
    var zc = z % 8;
    zigzag[z] = ((zr + zc) * 8 + zr) % 64;
  }

  var out_syms = 0;
  var checksum = 0;
  for (var b = 0; b < nblocks; b = b + 1) {
    // level shift + row transform
    for (var r = 0; r < 8; r = r + 1) {
      for (var x = 0; x < 8; x = x + 1) {
        var acc = 0;
        for (var u = 0; u < 8; u = u + 1) {
          var cu = 64 - ((2 * u + 1) * x * (2 * u + 1) * x / 41) % 128;
          acc = acc + (image[b * 64 + r * 8 + u] - 128) * cu;
        }
        tmp[r * 8 + x] = acc / 64;
      }
    }
    // column transform + quantization
    for (var col = 0; col < 8; col = col + 1) {
      for (var y = 0; y < 8; y = y + 1) {
        var acc2 = 0;
        for (var u2 = 0; u2 < 8; u2 = u2 + 1) {
          var cu2 = 64 - ((2 * u2 + 1) * y * (2 * u2 + 1) * y / 41) % 128;
          acc2 = acc2 + tmp[u2 * 8 + col] * cu2;
        }
        block[y * 8 + col] = acc2 / (64 * quant[y * 8 + col]);
      }
    }
    // zig-zag + run-length coding (serial within the block)
    var run = 0;
    for (var z2 = 0; z2 < 64; z2 = z2 + 1) {
      var v = block[zigzag[z2]];
      if (v == 0) {
        run = run + 1;
      } else {
        out[b * 64 + out_syms % 64] = run * 256 + (v & 255);
        checksum = (checksum + run * 31 + v) % 1000003;
        out_syms = out_syms + 1;
        run = 0;
      }
    }
  }
  return checksum * 100 + out_syms % 100;
}
"""

WORKLOAD = register(Workload(
    name="encJpeg",
    category=MULTIMEDIA,
    description="Image compression",
    source_text=SOURCE,
))
