"""mpegVideo — MPEG-style video decoder (Table 6 row 25).

Per-block dequantization and inverse transform plus motion-compensated
prediction, at a smaller block size than JPEG (the paper reports 23
threads/entry at ~700 cycles: fewer, chunkier block loops).
"""

from repro.workloads.registry import MULTIMEDIA, Workload, register

SOURCE = """
// Dequant + 4x4 inverse transform + MC prediction per block.
func main() {
  var w = 32;
  var h = 32;
  var ref = array(w * h);
  var cur = array(w * h);
  var bs = 4;
  var nbx = w / bs;
  var nby = h / bs;
  var nblocks = nbx * nby;
  var coeff = array(nblocks * 16);
  var block = array(16);
  var tmp = array(16);

  var seed = 59;
  for (var i = 0; i < w * h; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    ref[i] = (seed >> 10) % 256;
  }
  for (var c = 0; c < nblocks * 16; c = c + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (c % 16 < 6) {
      coeff[c] = (seed >> 8) % 32 - 16;
    } else {
      coeff[c] = 0;
    }
  }

  for (var frame = 0; frame < 2; frame = frame + 1) {
    for (var b = 0; b < nblocks; b = b + 1) {
      var bx = (b % nbx) * bs;
      var by = (b / nbx) * bs;
      // dequant
      for (var q = 0; q < 16; q = q + 1) {
        block[q] = coeff[b * 16 + q] * (6 + q % 10);
      }
      // 4x4 inverse transform: rows then columns (H.264-style adds)
      for (var r = 0; r < 4; r = r + 1) {
        var s0 = block[r * 4] + block[r * 4 + 2];
        var s1 = block[r * 4] - block[r * 4 + 2];
        var s2 = block[r * 4 + 1] / 2 - block[r * 4 + 3];
        var s3 = block[r * 4 + 1] + block[r * 4 + 3] / 2;
        tmp[r * 4] = s0 + s3;
        tmp[r * 4 + 1] = s1 + s2;
        tmp[r * 4 + 2] = s1 - s2;
        tmp[r * 4 + 3] = s0 - s3;
      }
      for (var col = 0; col < 4; col = col + 1) {
        var t0 = tmp[col] + tmp[8 + col];
        var t1 = tmp[col] - tmp[8 + col];
        var t2 = tmp[4 + col] / 2 - tmp[12 + col];
        var t3 = tmp[4 + col] + tmp[12 + col] / 2;
        block[col] = (t0 + t3) / 64;
        block[4 + col] = (t1 + t2) / 64;
        block[8 + col] = (t1 - t2) / 64;
        block[12 + col] = (t0 - t3) / 64;
      }
      // motion-compensated reconstruction (mv derived from block id)
      var mvx = b % 3 - 1;
      var mvy = (b / 3) % 3 - 1;
      for (var y = 0; y < bs; y = y + 1) {
        for (var x = 0; x < bs; x = x + 1) {
          var sx = bx + x + mvx;
          var sy = by + y + mvy;
          if (sx < 0) { sx = 0; }
          if (sx >= w) { sx = w - 1; }
          if (sy < 0) { sy = 0; }
          if (sy >= h) { sy = h - 1; }
          var px = ref[sy * w + sx] + block[y * 4 + x];
          if (px < 0) { px = 0; }
          if (px > 255) { px = 255; }
          cur[(by + y) * w + bx + x] = px;
        }
      }
    }
    for (var cp = 0; cp < w * h; cp = cp + 1) {
      ref[cp] = cur[cp];
    }
  }

  var checksum = 0;
  for (var k = 0; k < w * h; k = k + 1) {
    checksum = (checksum + ref[k] * (k % 23 + 1)) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="mpegVideo",
    category=MULTIMEDIA,
    description="Video decoder",
    source_text=SOURCE,
))
