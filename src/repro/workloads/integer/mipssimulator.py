"""MipsSimulator — a CPU interpreter interpreting a small program
(Table 6 row 11).

The paper's coarsest integer STL: one giant fetch-decode-execute loop
(51931 threads/entry at 1313 cycles).  The ``pc`` update happens at the
*top* of each iteration, so the critical arc is long relative to the
thread and speculation wins despite the carried program counter;
register-file accesses create genuine, occasional RAW violations.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Interpreter for a toy RISC: op, rd, ra, rb / imm encoded per word.
func main() {
  var mem_size = 128;
  var code_size = 64;
  var code = array(code_size);
  var regs = array(16);
  var mem = array(mem_size);

  // guest program: a loop hashing memory into registers.
  // encoding: op*1000000 + rd*10000 + ra*100 + rb   (rb doubles as imm)
  // ops: 0=addi 1=add 2=mul 3=load 4=store 5=xor 6=bne(back -7) 7=halt
  code[0] = 0 * 1000000 + 1 * 10000 + 0 * 100 + 0;    // r1 = r0 + 0
  code[1] = 0 * 1000000 + 2 * 10000 + 0 * 100 + 40;   // r2 = 40 (limit)
  code[2] = 0 * 1000000 + 3 * 10000 + 0 * 100 + 1;    // r3 = 1
  // loop body (pc 3..9)
  code[3] = 3 * 1000000 + 4 * 10000 + 1 * 100 + 0;    // r4 = mem[r1]
  code[4] = 2 * 1000000 + 4 * 10000 + 4 * 100 + 3;    // r4 = r4 * r3
  code[5] = 0 * 1000000 + 4 * 10000 + 4 * 100 + 7;    // r4 = r4 + 7
  code[6] = 5 * 1000000 + 5 * 10000 + 5 * 100 + 4;    // r5 = r5 ^ r4
  code[7] = 4 * 1000000 + 4 * 10000 + 1 * 100 + 0;    // mem[r1] = r4
  code[8] = 0 * 1000000 + 1 * 10000 + 1 * 100 + 1;    // r1 = r1 + 1
  code[9] = 6 * 1000000 + 0 * 10000 + 1 * 100 + 2;    // bne r1,r2 -> pc 3
  code[10] = 7 * 1000000;                              // halt

  for (var m = 0; m < mem_size; m = m + 1) {
    mem[m] = (m * 2654435761) % 65536;
  }

  var checksum = 0;
  for (var run = 0; run < 3; run = run + 1) {
    for (var r = 0; r < 16; r = r + 1) { regs[r] = 0; }
    regs[3] = run + 1;
    var pc = 0;
    var steps = 0;
    var running = 1;
    while (running == 1 && steps < 400) {
      var inst = code[pc];
      pc = pc + 1;                  // next pc decided at iteration top
      steps = steps + 1;
      var op = inst / 1000000;
      var rd = (inst / 10000) % 100;
      var ra = (inst / 100) % 100;
      var rb = inst % 100;
      if (op == 0) {
        regs[rd] = regs[ra] + rb;
      } else if (op == 1) {
        regs[rd] = regs[ra] + regs[rb];
      } else if (op == 2) {
        regs[rd] = (regs[ra] * regs[rb]) % 1000003;
      } else if (op == 3) {
        regs[rd] = mem[regs[ra] % 128];
      } else if (op == 4) {
        mem[regs[ra] % 128] = regs[rd];
      } else if (op == 5) {
        regs[rd] = regs[ra] ^ regs[rb];
      } else if (op == 6) {
        if (regs[ra] != regs[rb]) { pc = pc - 7; }
      } else {
        running = 0;
      }
    }
    checksum = (checksum + regs[5] + steps) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="MipsSimulator",
    category=INTEGER,
    description="CPU simulator",
    source_text=SOURCE,
))
