"""Integer workloads (Table 6 rows 1-14)."""

from repro.workloads.integer import (  # noqa: F401
    assignment,
    bitops,
    compress,
    db,
    deltablue,
    emfloatpnt,
    huffman,
    idea,
    jess,
    jlex,
    mipssimulator,
    montecarlo,
    numheapsort,
    raytrace,
)
