"""monteCarlo — Monte-Carlo option pricing in the style of Java Grande
(Table 6 row 12).

Per-sample seeds are derived independently (parallel), sample paths are
evaluated independently (the main parallel STL), and the results reduce
into a sum (a compiler-transformable reduction).
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Independent sample paths with per-sample derived seeds.
func main() {
  var nsamples = 120;
  var path_len = 12;
  var seeds = array(nsamples);
  var results = array(nsamples);

  // derive independent seeds (parallel: each from the index alone)
  for (var i = 0; i < nsamples; i = i + 1) {
    var h = i * 2654435761 % 2147483648;
    h = (h ^ (h >> 13)) * 1103515245 % 2147483648;
    seeds[i] = (h ^ (h >> 7)) % 2147483648;
  }

  // evaluate each sample path (the selected STL: independent threads)
  for (var s = 0; s < nsamples; s = s + 1) {
    var x = 1000.0;
    var seed = seeds[s];
    for (var t = 0; t < path_len; t = t + 1) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      var u = float(seed % 10000) / 10000.0;
      x = x * (1.0 + (u - 0.5) * 0.08);
    }
    var payoff = x - 1000.0;
    if (payoff < 0.0) { payoff = 0.0; }
    results[s] = int(payoff * 100.0);
  }

  // reduction over the results
  var total = 0;
  for (var r = 0; r < nsamples; r = r + 1) {
    total = total + results[r];
  }
  return total;
}
"""

WORKLOAD = register(Workload(
    name="monteCarlo",
    category=INTEGER,
    description="Monte carlo sim",
    source_text=SOURCE,
))
