"""jLex — lexical-analyzer generator (Table 6 row 10).

NFA-to-DFA subset construction: a serial worklist over DFA states with
parallel per-symbol transition computation inside, plus a table
compaction sweep.  Like the paper's jLex, a good chunk of execution
stays serial.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Subset construction: NFA states are bits of an int (24-state NFA).
func main() {
  var nnfa = 20;
  var nsym = 6;
  // NFA transition: trans[state*nsym+sym] = bitset of successors
  var trans = array(nnfa * nsym);
  var eps = array(nnfa);
  var seed = 77;
  for (var t = 0; t < nnfa * nsym; t = t + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    // sparse transitions: ~2 successors per (state, symbol)
    trans[t] = (1 << ((seed >> 5) % nnfa)) | (1 << ((seed >> 13) % nnfa));
    if ((seed >> 20) % 4 != 0) { trans[t] = 0; }
  }
  for (var s = 0; s < nnfa; s = s + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if ((seed >> 9) % 3 == 0) {
      eps[s] = 1 << ((seed >> 4) % nnfa);
    } else {
      eps[s] = 0;
    }
  }

  var max_dfa = 64;
  var dfa_set = array(max_dfa);          // bitset of NFA states
  var dfa_trans = array(max_dfa * nsym);
  dfa_set[0] = 1;                         // start state closure seed
  var ndfa = 1;
  var work = 0;

  while (work < ndfa && ndfa < max_dfa - nsym) {
    var current = dfa_set[work];
    // per-symbol successor computation (the parallel inner loops)
    for (var sym = 0; sym < nsym; sym = sym + 1) {
      var next = 0;
      for (var st = 0; st < nnfa; st = st + 1) {
        if (((current >> st) & 1) == 1) {
          next = next | trans[st * nsym + sym];
        }
      }
      // epsilon closure (fixed small number of passes)
      for (var pass = 0; pass < 2; pass = pass + 1) {
        var closed = next;
        for (var st2 = 0; st2 < nnfa; st2 = st2 + 1) {
          if (((next >> st2) & 1) == 1) {
            closed = closed | eps[st2];
          }
        }
        next = closed;
      }
      // find-or-add the successor DFA state (serial)
      var found = -1;
      for (var d = 0; d < ndfa; d = d + 1) {
        if (dfa_set[d] == next) { found = d; }
      }
      if (found < 0) {
        dfa_set[ndfa] = next;
        found = ndfa;
        ndfa = ndfa + 1;
      }
      dfa_trans[work * nsym + sym] = found;
    }
    work = work + 1;
  }

  // table compaction sweep (parallel row scan)
  var checksum = 0;
  for (var row = 0; row < work; row = row + 1) {
    var sig = 0;
    for (var sym2 = 0; sym2 < nsym; sym2 = sym2 + 1) {
      sig = (sig * 31 + dfa_trans[row * nsym + sym2]) % 1000003;
    }
    checksum = (checksum + sig) % 1000003;
  }
  return checksum * 100 + ndfa % 100;
}
"""

WORKLOAD = register(Workload(
    name="jLex",
    category=INTEGER,
    description="Lexical analyzer gen",
    source_text=SOURCE,
))
