"""Assignment — jBYTEmark resource allocation (Table 6 row 1).

Row/column reduction sweeps over a cost matrix plus zero-cover scans:
many modest loops at several nest levels, with min-search inner loops
that carry a scalar recurrence.  Data-set sensitive: with bigger
matrices the row loops outgrow the speculative buffers and selection
moves inward (the paper's column b).
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Cost-matrix reduction kernel in the style of jBYTEmark Assignment.
func lcg(seed) {
  return (seed * 1103515245 + 12345) % 2147483648;
}

func main() {
  var n = 20;
  var cost = array(n * n);
  var seed = 7;
  for (var i = 0; i < n * n; i = i + 1) {
    seed = lcg(seed);
    cost[i] = (seed >> 8) % 1000;
  }
  var total = 0;
  for (var rep = 0; rep < 6; rep = rep + 1) {
    // row reduction: subtract each row's minimum
    for (var r = 0; r < n; r = r + 1) {
      var m = 1000000;
      for (var c = 0; c < n; c = c + 1) {
        if (cost[r * n + c] < m) { m = cost[r * n + c]; }
      }
      for (var c2 = 0; c2 < n; c2 = c2 + 1) {
        cost[r * n + c2] = cost[r * n + c2] - m;
      }
      total = total + m;
    }
    // column reduction: subtract each column's minimum
    for (var c3 = 0; c3 < n; c3 = c3 + 1) {
      var m2 = 1000000;
      for (var r2 = 0; r2 < n; r2 = r2 + 1) {
        if (cost[r2 * n + c3] < m2) { m2 = cost[r2 * n + c3]; }
      }
      for (var r3 = 0; r3 < n; r3 = r3 + 1) {
        cost[r3 * n + c3] = cost[r3 * n + c3] - m2;
      }
      total = total + m2;
    }
    // cover scan: count assignable zeros
    var zeros = 0;
    for (var r4 = 0; r4 < n; r4 = r4 + 1) {
      for (var c4 = 0; c4 < n; c4 = c4 + 1) {
        if (cost[r4 * n + c4] == 0) { zeros = zeros + 1; }
      }
    }
    total = total + zeros;
    // perturb so later repetitions keep reducing
    for (var k = 0; k < n; k = k + 1) {
      seed = lcg(seed);
      var idx = k * n + seed % n;
      cost[idx] = cost[idx] + (seed >> 4) % 17;
    }
  }
  return total;
}
"""

WORKLOAD = register(Workload(
    name="Assignment",
    category=INTEGER,
    description="Resource allocation",
    source_text=SOURCE,
    dataset="20x20",
    analyzable=False,
    data_sensitive=True,
))
