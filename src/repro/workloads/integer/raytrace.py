"""raytrace — a small ray tracer (Table 6 row 14).

One selected loop at height 1 (the pixel loop): every iteration traces
one ray against a handful of spheres with floating-point intersection
math — independent, mid-sized threads.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Ray-sphere tracing over a small image.
func main() {
  var width = 22;
  var height = 22;
  var nspheres = 4;
  var sx = array(nspheres);
  var sy = array(nspheres);
  var sz = array(nspheres);
  var sr = array(nspheres);
  var image = array(width * height);

  sx[0] = 0.0;  sy[0] = 0.0;  sz[0] = 6.0;  sr[0] = 2.0;
  sx[1] = 2.5;  sy[1] = 1.0;  sz[1] = 8.0;  sr[1] = 1.5;
  sx[2] = -2.0; sy[2] = -1.5; sz[2] = 7.0;  sr[2] = 1.0;
  sx[3] = 1.0;  sy[3] = -2.0; sz[3] = 5.0;  sr[3] = 0.8;

  // the pixel loop: each iteration traces one primary ray
  for (var p = 0; p < width * height; p = p + 1) {
    var px = p % width;
    var py = p / width;
    // normalized ray direction
    var dx = (float(px) / float(width)) - 0.5;
    var dy = (float(py) / float(height)) - 0.5;
    var dz = 1.0;
    var norm = sqrt(dx * dx + dy * dy + dz * dz);
    dx = dx / norm;
    dy = dy / norm;
    dz = dz / norm;

    var best_t = 1000.0;
    var best_s = -1;
    for (var s = 0; s < nspheres; s = s + 1) {
      // |o + t d - c|^2 = r^2 with origin o = (0,0,0)
      var ocx = 0.0 - sx[s];
      var ocy = 0.0 - sy[s];
      var ocz = 0.0 - sz[s];
      var b = 2.0 * (dx * ocx + dy * ocy + dz * ocz);
      var c = ocx * ocx + ocy * ocy + ocz * ocz - sr[s] * sr[s];
      var disc = b * b - 4.0 * c;
      if (disc > 0.0) {
        var t = (0.0 - b - sqrt(disc)) / 2.0;
        if (t > 0.0 && t < best_t) {
          best_t = t;
          best_s = s;
        }
      }
    }
    if (best_s >= 0) {
      // simple diffuse shade from the hit distance
      var shade = 255.0 / (1.0 + best_t * 0.3);
      image[p] = int(shade) + best_s;
    } else {
      image[p] = 16;   // background
    }
  }

  var checksum = 0;
  for (var k = 0; k < width * height; k = k + 1) {
    checksum = (checksum + image[k] * (k % 17 + 1)) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="raytrace",
    category=INTEGER,
    description="Raytracer",
    source_text=SOURCE,
))
