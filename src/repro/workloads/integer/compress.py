"""compress — SPECjvm98-style LZW compression (Table 6 row 3).

A single dominant loop over the input bytes with hash-probe inner loops
and a carried ``prefix`` code; the paper's selected decomposition is
coarse (546-cycle threads) and covers nearly the whole run.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// LZW-style compressor: hash-table dictionary, linear probing.
func main() {
  var input_len = 420;
  var input = array(input_len);
  var seed = 31;
  for (var i = 0; i < input_len; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    // skewed byte distribution so the dictionary gets hits
    input[i] = (seed >> 9) % 23;
  }

  var hsize = 512;
  var hkey = array(hsize);
  var hcode = array(hsize);
  var out_codes = 0;
  var checksum = 0;

  for (var pass = 0; pass < 2; pass = pass + 1) {
    // reset dictionary
    for (var h = 0; h < hsize; h = h + 1) {
      hkey[h] = -1;
      hcode[h] = 0;
    }
    var next_code = 256;
    var prefix = input[0];
    for (var p = 1; p < input_len; p = p + 1) {
      var byte = input[p];
      var key = prefix * 256 + byte;
      var slot = (key * 31) % hsize;
      var found = -1;
      // linear probe
      var probes = 0;
      while (probes < hsize) {
        if (hkey[slot] == key) {
          found = hcode[slot];
          probes = hsize;          // hit: stop probing
        } else if (hkey[slot] == -1) {
          probes = hsize + 1;      // empty: stop, not found
        } else {
          slot = (slot + 1) % hsize;
          probes = probes + 1;
        }
      }
      if (found >= 0) {
        prefix = found;
      } else {
        // emit prefix, insert new entry
        out_codes = out_codes + 1;
        checksum = (checksum + prefix * 7 + 13) % 1000003;
        if (next_code < 4096) {
          hkey[slot] = key;
          hcode[slot] = next_code;
          next_code = next_code + 1;
        }
        prefix = byte;
      }
    }
    checksum = (checksum + prefix) % 1000003;
  }
  return checksum * 10000 + out_codes;
}
"""

WORKLOAD = register(Workload(
    name="compress",
    category=INTEGER,
    description="Compression",
    source_text=SOURCE,
))
