"""db — SPECjvm98-style in-memory database (Table 6 row 4).

Linear-scan lookups and additions over a record table, punctuated by
shell-sort passes.  The paper notes db has significant serial sections
(the sorts) limiting total speedup, and is data-set sensitive.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Record table: parallel scans + serial shell sorts.
func lcg(seed) {
  return (seed * 1103515245 + 12345) % 2147483648;
}

func shell_sort(keys, vals, n) {
  var gap = n / 2;
  while (gap > 0) {
    for (var i = gap; i < n; i = i + 1) {
      var k = keys[i];
      var v = vals[i];
      var j = i;
      while (j >= gap && keys[j - gap] > k) {
        keys[j] = keys[j - gap];
        vals[j] = vals[j - gap];
        j = j - gap;
      }
      keys[j] = k;
      vals[j] = v;
    }
    gap = gap / 2;
  }
}

func main() {
  var cap = 260;
  var keys = array(cap);
  var vals = array(cap);
  var count = 180;
  var seed = 5;
  for (var i = 0; i < count; i = i + 1) {
    seed = lcg(seed);
    keys[i] = (seed >> 7) % 5000;
    vals[i] = i;
  }
  var hits = 0;
  var checksum = 0;
  for (var op = 0; op < 110; op = op + 1) {
    seed = lcg(seed);
    var probe = (seed >> 7) % 5000;
    if (op % 11 == 10) {
      // add a record (serial table mutation)
      if (count < cap) {
        keys[count] = probe;
        vals[count] = op;
        count = count + 1;
      }
    } else if (op % 17 == 16) {
      shell_sort(keys, vals, count);
      checksum = checksum + keys[0] + keys[count - 1];
    } else {
      // linear scan lookup (the parallel part)
      var found = -1;
      for (var r = 0; r < count; r = r + 1) {
        if (keys[r] == probe) { found = r; }
      }
      if (found >= 0) {
        hits = hits + 1;
        checksum = checksum + vals[found];
      }
    }
  }
  return checksum * 1000 + hits;
}
"""

WORKLOAD = register(Workload(
    name="db",
    category=INTEGER,
    description="Database",
    source_text=SOURCE,
    dataset="180 recs",
    data_sensitive=True,
))
