"""IDEA — block-cipher encryption (Table 6 row 8).

The paper's cleanest case: 2 loops total, one selected, coarse
independent threads (each iteration encrypts one block through 8
rounds of multiply-mod-65537 arithmetic).
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// IDEA-style cipher: mul mod 65537 rounds over independent blocks.
func mulmod(a, b) {
  // IDEA's multiplication modulo 2^16+1 with 0 meaning 2^16
  if (a == 0) { a = 65536; }
  if (b == 0) { b = 65536; }
  var p = (a * b) % 65537;
  return p % 65536;
}

func main() {
  var nblocks = 56;
  var data = array(nblocks * 4);
  var keys = array(52);
  var seed = 21;
  for (var i = 0; i < nblocks * 4; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    data[i] = (seed >> 9) % 65536;
  }
  for (var k = 0; k < 52; k = k + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    keys[k] = (seed >> 9) % 65536;
  }

  // the selected STL: one block per thread, fully independent
  for (var blk = 0; blk < nblocks; blk = blk + 1) {
    var x0 = data[blk * 4];
    var x1 = data[blk * 4 + 1];
    var x2 = data[blk * 4 + 2];
    var x3 = data[blk * 4 + 3];
    for (var round = 0; round < 8; round = round + 1) {
      var kb = round * 6;
      x0 = mulmod(x0, keys[kb]);
      x1 = (x1 + keys[kb + 1]) % 65536;
      x2 = (x2 + keys[kb + 2]) % 65536;
      x3 = mulmod(x3, keys[kb + 3]);
      var t0 = x0 ^ x2;
      var t1 = x1 ^ x3;
      t0 = mulmod(t0, keys[kb + 4]);
      t1 = (t1 + t0) % 65536;
      t1 = mulmod(t1, keys[kb + 5]);
      t0 = (t0 + t1) % 65536;
      x0 = x0 ^ t1;
      x2 = x2 ^ t1;
      x1 = x1 ^ t0;
      x3 = x3 ^ t0;
      var swap = x1;
      x1 = x2;
      x2 = swap;
    }
    data[blk * 4] = mulmod(x0, keys[48]);
    data[blk * 4 + 1] = (x2 + keys[49]) % 65536;
    data[blk * 4 + 2] = (x1 + keys[50]) % 65536;
    data[blk * 4 + 3] = mulmod(x3, keys[51]);
  }

  var checksum = 0;
  for (var j = 0; j < nblocks * 4; j = j + 1) {
    checksum = (checksum + data[j] * (j + 1)) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="IDEA",
    category=INTEGER,
    description="Encryption",
    source_text=SOURCE,
    analyzable=True,
))
