"""jess — expert-system shell (Table 6 row 9).

Deep nesting (the paper counts 134 loops, depth 11, average selected
height 5.3) and a large serial remainder: rule matching scans are
parallel-ish, but agenda maintenance and fact insertion serialize.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Forward-chaining rule engine: match, resolve, fire.
func main() {
  var max_facts = 400;
  var fact_a = array(max_facts);
  var fact_b = array(max_facts);
  var nrules = 16;
  var rule_pat_a = array(nrules);
  var rule_pat_b = array(nrules);
  var rule_out = array(nrules);
  var agenda = array(64);

  var seed = 41;
  var nfacts = 90;
  for (var f = 0; f < nfacts; f = f + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    fact_a[f] = (seed >> 6) % 12;
    fact_b[f] = (seed >> 11) % 12;
  }
  for (var r = 0; r < nrules; r = r + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    rule_pat_a[r] = (seed >> 6) % 12;
    rule_pat_b[r] = (seed >> 11) % 12;
    rule_out[r] = (seed >> 4) % 12;
  }

  var fired = 0;
  var cycle = 0;
  while (cycle < 6 && nfacts < max_facts - 2) {
    // match phase: each rule scans the fact base (nested loops)
    var agenda_len = 0;
    for (var r2 = 0; r2 < nrules; r2 = r2 + 1) {
      var matches = 0;
      for (var f2 = 0; f2 < nfacts; f2 = f2 + 1) {
        if (fact_a[f2] == rule_pat_a[r2]) {
          // join: find a second fact sharing the b-attribute
          for (var f3 = 0; f3 < nfacts; f3 = f3 + 1) {
            if (fact_b[f3] == rule_pat_b[r2] && f3 != f2) {
              matches = matches + 1;
              f3 = nfacts;   // first join wins
            }
          }
        }
      }
      if (matches > 0 && agenda_len < 64) {
        agenda[agenda_len] = r2;
        agenda_len = agenda_len + 1;
      }
    }
    // conflict resolution + firing (serial agenda walk)
    for (var a = 0; a < agenda_len; a = a + 1) {
      var rule = agenda[a];
      if (nfacts < max_facts) {
        fact_a[nfacts] = rule_out[rule];
        fact_b[nfacts] = (rule_out[rule] + a) % 12;
        nfacts = nfacts + 1;
        fired = fired + 1;
      }
    }
    cycle = cycle + 1;
  }
  return fired * 1000 + nfacts;
}
"""

WORKLOAD = register(Workload(
    name="jess",
    category=INTEGER,
    description="Expert system",
    source_text=SOURCE,
))
