"""EmFloatPnt — jBYTEmark software floating-point emulation (Table 6
row 6).

One selected loop with very coarse threads (the paper reports ~20k
cycles each): every iteration performs emulated FP multiply and add on
sign/exponent/mantissa triples, with data-dependent normalization and
long-division inner loops.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Emulated floating point on (sign, exponent, 24-bit mantissa) triples.
func emul_mul(am, ae, bm, be, out_m_e) {
  // 24x24 -> 48-bit multiply via 16-bit halves, then normalize
  var alo = am % 4096;
  var ahi = am / 4096;
  var blo = bm % 4096;
  var bhi = bm / 4096;
  var hi = ahi * bhi;
  var mid = ahi * blo + alo * bhi;
  var lo = alo * blo;
  var prod_hi = hi + mid / 4096;
  var prod_lo = (mid % 4096) * 4096 + lo;
  var e = ae + be;
  // normalize: shift until the top bit of the 24-bit window is set
  var m = prod_hi;
  var guard = prod_lo;
  var shifts = 0;
  while (m < 8388608 && shifts < 24) {
    m = m * 2;
    if (guard >= 8388608 * 2) { m = m + 1; }
    guard = (guard * 2) % 16777216;
    shifts = shifts + 1;
    e = e - 1;
  }
  while (m >= 16777216) {
    m = m / 2;
    e = e + 1;
  }
  out_m_e[0] = m;
  out_m_e[1] = e;
}

func emul_add(am, ae, bm, be, out_m_e) {
  // align exponents with a shift loop, add, renormalize
  var m1 = am; var e1 = ae; var m2 = bm; var e2 = be;
  while (e1 > e2) { m2 = m2 / 2; e2 = e2 + 1; }
  while (e2 > e1) { m1 = m1 / 2; e1 = e1 + 1; }
  var m = m1 + m2;
  var e = e1;
  while (m >= 16777216) { m = m / 2; e = e + 1; }
  while (m < 8388608 && m > 0 && e > -64) { m = m * 2; e = e - 1; }
  out_m_e[0] = m;
  out_m_e[1] = e;
}

func main() {
  var n = 60;
  var mant = array(n);
  var expo = array(n);
  var seed = 3;
  for (var i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    mant[i] = 8388608 + (seed >> 5) % 8388608;
    expo[i] = (seed >> 3) % 32 - 16;
  }
  var tmp = array(2);
  var checksum = 0;
  // the coarse STL: each iteration is a long chain of emulated-FP
  // operations (one jBYTEmark-style computation per thread)
  for (var k = 0; k < n; k = k + 1) {
    var pm = mant[k];
    var pe = expo[k];
    for (var op = 0; op < 6; op = op + 1) {
      var idx = (k * 7 + op * 13 + 3) % n;
      emul_mul(pm, pe, mant[idx], expo[idx], tmp);
      pm = tmp[0]; pe = tmp[1];
      emul_add(pm, pe, mant[(idx * 5 + 1) % n],
               expo[(idx * 5 + 1) % n], tmp);
      pm = tmp[0]; pe = tmp[1];
      emul_mul(pm, pe, 12582912, -1, tmp);
      pm = tmp[0]; pe = tmp[1];
    }
    checksum = (checksum + pm + pe * 31) % 1000003;
  }
  return checksum;
}
"""

WORKLOAD = register(Workload(
    name="EmFloatPnt",
    category=INTEGER,
    description="FP emulation",
    source_text=SOURCE,
))
