"""Huffman — compression via tree coding (Table 6 row 7; also the
paper's worked example in Figure 3 and Table 3).

The decode phase is the paper's running example: an outer per-symbol
loop (the good STL) around an inner bit-chasing tree walk whose
``in_p`` dependence makes it a poor one.  Table 3's comparison — outer
loop beats inner loop beats serial — is regenerated from this workload
by ``benchmarks/bench_table3_nest_selection.py``.
"""

from repro.workloads.registry import INTEGER, Workload, register

SOURCE = """
// Huffman decode over a fixed tree (paper Figure 3's loop nest).
func main() {
  var nnodes = 32;
  var tree_left = array(nnodes);
  var tree_right = array(nnodes);
  var tree_char = array(nnodes);
  var nbits = 6000;
  var bits = array(nbits);
  var out = array(4096);

  // complete tree with 15 internal nodes and 16 leaves (depth ~4)
  for (var n = 0; n < nnodes; n = n + 1) {
    if (n < 15) {
      tree_left[n] = 2 * n + 1;
      tree_right[n] = 2 * n + 2;
    } else {
      tree_left[n] = -1;
      tree_right[n] = -1;
    }
    tree_char[n] = (n * 37) % 61;
  }
  var seed = 12345;
  for (var b = 0; b < nbits; b = b + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    bits[b] = (seed >> 16) & 1;
  }

  // the decode nest: outer loop = one decoded symbol per iteration
  var in_p = 0;
  var out_p = 0;
  while (in_p < nbits - 8) {
    var node = 0;
    while (tree_left[node] != -1) {
      if (bits[in_p] == 0) {
        node = tree_left[node];
      } else {
        node = tree_right[node];
      }
      in_p = in_p + 1;
    }
    out[out_p] = tree_char[node];
    out_p = out_p + 1;
  }

  var checksum = 0;
  for (var k = 0; k < out_p; k = k + 1) {
    checksum = (checksum + out[k] * 31 + k) % 1000003;
  }
  return checksum * 10 + out_p % 10;
}
"""

WORKLOAD = register(Workload(
    name="Huffman",
    category=INTEGER,
    description="Compression",
    source_text=SOURCE,
))
